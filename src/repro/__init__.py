"""repro — reproduction of *Servet: A Benchmark Suite for Autotuning on
Multicore Clusters* (González-Domínguez et al., IPDPS 2010).

The package has three strata (see DESIGN.md):

- **Substrate** (:mod:`repro.topology`, :mod:`repro.memsim`,
  :mod:`repro.netsim`, :mod:`repro.simmpi`) — the simulated multicore
  cluster that replaces the paper's physical testbeds.
- **Servet core** (:mod:`repro.core`) — the paper's benchmark
  algorithms, written against the :mod:`repro.backends` measurement
  interface only.
- **Autotuning** (:mod:`repro.autotune`) — the Section V consumers of a
  :class:`ServetReport`.
- **Tuning service** (:mod:`repro.service`) — the install-once,
  consult-forever layer: fingerprint-keyed report registry, concurrent
  cached query serving, staleness-driven incremental re-measurement.
- **Observability** (:mod:`repro.obs`) — structured tracing, a metrics
  registry, and probe-level provenance for every detected parameter.

Quickstart::

    from repro import SimulatedBackend, ServetSuite, dunnington

    backend = SimulatedBackend(dunnington(), seed=42)
    report = ServetSuite(backend).run()
    print(report.summary())
    report.save("servet_report.json")
"""

from .backends import Backend, NativeBackend, SimulatedBackend
from .core import ServetReport, ServetSuite
from .autotune import Advisor
from .obs import MetricsRegistry, ParameterProvenance, Tracer, explain
from .planner import (
    MeasurementPlan,
    MessageProbe,
    PlanExecutor,
    PlannerStats,
    StreamProbe,
    TopologyClassifier,
    TraversalProbe,
)
from .resilience import (
    FaultInjectingBackend,
    FaultPlan,
    HardenedBackend,
    ResiliencePolicy,
    RetryPolicy,
    SamplingPolicy,
    SuiteCheckpoint,
)
from .service import (
    MachineFingerprint,
    ReportRegistry,
    TuningService,
    assess_staleness,
    fingerprint_of,
    incremental_refresh,
    machine_fingerprint,
    run_harness,
)
from .topology import (
    Cluster,
    Machine,
    athlon_3200,
    build_machine,
    builder_names,
    dempsey,
    dunnington,
    finis_terrae,
    finis_terrae_node,
    generic_smp,
)

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "NativeBackend",
    "SimulatedBackend",
    "ServetReport",
    "ServetSuite",
    "Advisor",
    "MetricsRegistry",
    "ParameterProvenance",
    "Tracer",
    "explain",
    "MeasurementPlan",
    "MessageProbe",
    "PlanExecutor",
    "PlannerStats",
    "StreamProbe",
    "TopologyClassifier",
    "TraversalProbe",
    "FaultInjectingBackend",
    "FaultPlan",
    "HardenedBackend",
    "ResiliencePolicy",
    "RetryPolicy",
    "SamplingPolicy",
    "SuiteCheckpoint",
    "MachineFingerprint",
    "ReportRegistry",
    "TuningService",
    "assess_staleness",
    "fingerprint_of",
    "incremental_refresh",
    "machine_fingerprint",
    "run_harness",
    "Cluster",
    "Machine",
    "athlon_3200",
    "build_machine",
    "builder_names",
    "dempsey",
    "dunnington",
    "finis_terrae",
    "finis_terrae_node",
    "generic_smp",
    "__version__",
]
