"""Counters, gauges, and histograms with a thread-safe registry.

The suite, the measurement planner, and the tuning service all count
things — probes issued, cache hits, retries, query latencies.  Before
this module each component kept ad-hoc integer attributes; now they
share one :class:`MetricsRegistry` so a run can be exported as a single
metrics document (``servet run --metrics m.json``) whose numbers are
*the same objects* the components use internally — there is no second
bookkeeping path to drift out of sync.

Design constraints:

- **No dependencies** beyond the standard library.
- **Thread safety** — the planner's worker pool and the tuning
  service's client threads update metrics concurrently; every mutation
  takes the instrument's lock.
- **Determinism** — export order is sorted by metric name and label,
  so two identical runs produce byte-identical JSON at noise=0 (wall
  clock values excluded by callers that need that).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Iterable, Sequence

from ..errors import ConfigurationError
from ..ioutils import atomic_write_text

#: Samples kept per histogram for the percentile estimates (newest
#: wins).  Matches the window the tuning service has always used.
DEFAULT_HISTOGRAM_WINDOW: int = 8192

#: Percentiles included in histogram summaries.
SUMMARY_PERCENTILES: tuple[float, ...] = (0.50, 0.90, 0.99)


def percentile(samples: Iterable[float], fraction: float) -> float:
    """Empirical percentile: the sorted sample at rank ``fraction``.

    ``fraction`` is in ``[0, 1]``; the index is ``int(fraction * n)``
    clamped to the last sample (the convention the tuning service has
    always reported, kept so historical latency numbers stay
    comparable).  Returns 0.0 for an empty sample set.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("percentile fraction must be in [0, 1]")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotone (well, resettable-for-merges) accumulating count."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only move forward; use a gauge")
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Overwrite the count (checkpoint-merge support only)."""
        with self._lock:
            self._value = value

    def export(self) -> float:
        value = self.value
        return int(value) if value == int(value) else value


class Gauge:
    """A value that goes up and down (occupancy, last duration)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    def export(self) -> float:
        return self.value


class Histogram:
    """Windowed sample distribution with percentile summaries.

    Keeps the newest :data:`DEFAULT_HISTOGRAM_WINDOW` observations for
    the percentile estimates while ``count``/``total`` accumulate over
    *all* observations ever made.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        window: int = DEFAULT_HISTOGRAM_WINDOW,
    ):
        if window < 1:
            raise ConfigurationError("histogram window must be >= 1")
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._total += value

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch under one lock acquisition (hot-path helper)."""
        with self._lock:
            self._samples.extend(values)
            self._count += len(values)
            self._total += sum(values)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def samples(self) -> list[float]:
        with self._lock:
            return list(self._samples)

    def percentile(self, fraction: float) -> float:
        return percentile(self.samples(), fraction)

    def export(self) -> dict:
        with self._lock:
            samples = list(self._samples)
            count, total = self._count, self._total
        summary = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
        }
        for frac in SUMMARY_PERCENTILES:
            summary[f"p{int(frac * 100)}"] = percentile(samples, frac)
        return summary


class MetricsRegistry:
    """Get-or-create home for every instrument of one run/service.

    Instruments are keyed by ``(name, sorted labels)``; asking twice
    returns the same object, so independent components (suite, planner,
    backend hook) can share counters without passing them around.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get(self, factory, name: str, labels: dict[str, str], **kwargs):
        key = (factory.kind, name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(name, _label_key(labels), **kwargs)
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, window: int = DEFAULT_HISTOGRAM_WINDOW, **labels: str
    ) -> Histogram:
        return self._get(Histogram, name, labels, window=window)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        with self._lock:
            items = list(self._instruments.items())
        return [inst for _, inst in sorted(items, key=lambda kv: kv[0])]

    # -- export -------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready snapshot: ``{counters, gauges, histograms}``.

        Keys are ``name{label="value",...}`` strings sorted
        lexicographically, so identical runs export identical documents.
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for inst in self.instruments():
            key = inst.name + _label_suffix(inst.labels)
            out[inst.kind + "s"][key] = inst.export()
        return out

    def render_text(self) -> str:
        """Flat ``name{labels} value`` lines (exposition-style dump)."""
        lines: list[str] = []
        for inst in self.instruments():
            key = inst.name + _label_suffix(inst.labels)
            if isinstance(inst, Histogram):
                for field, value in inst.export().items():
                    lines.append(f"{key}:{field} {value}")
            else:
                lines.append(f"{key} {inst.export()}")
        return "\n".join(lines) + ("\n" if lines else "")

    def save_json(self, path) -> None:
        """Write the snapshot atomically as indented JSON."""
        atomic_write_text(path, json.dumps(self.as_dict(), indent=2, sort_keys=True))

    def value(self, kind: str, name: str, /, **labels: str) -> float:
        """Convenience lookup for tests and assertions (0 when absent).

        ``kind`` and ``name`` are positional-only so that labels named
        ``kind`` or ``name`` (both common) never collide with them.
        """
        key = (kind, name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
        if inst is None:
            return 0.0
        exported = inst.export()
        return exported if not isinstance(exported, dict) else exported["count"]
