"""Probe-level provenance: which measurements justified each parameter.

Servet's whole value proposition is measuring hardware parameters
instead of trusting documentation — so when a detected parameter looks
wrong, the first question is *which probes produced that decision*.
A :class:`ParameterProvenance` answers it: for every detected
parameter (a cache size, a sharing relation, an overhead level, a
communication layer) it records the deterministic probe IDs
(:func:`repro.planner.plan.probe_id`) and the measured values the
detection algorithm actually consumed, plus the method and decision
threshold involved.

Provenance is embedded in :class:`~repro.core.report.ServetReport`
under the ``provenance`` key and queried with ``servet explain
<parameter>``.  It is deliberately *excluded* from
``measurement_dict()``: it describes how values were obtained, not the
values themselves, so symmetry-pruned and incremental runs stay
byte-comparable on measurements while carrying different cost
metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass
class ParameterProvenance:
    """The evidence trail behind one detected parameter."""

    #: Dotted parameter path, e.g. ``cache.L2.size`` or ``comm.layer1.latency``.
    parameter: str
    #: The detected value (JSON-serializable).
    value: object
    #: Detection method, e.g. ``l1-peak``, ``ratio-threshold``.
    method: str
    #: Probe IDs whose measurements fed the decision.
    probes: list[str] = field(default_factory=list)
    #: Probe ID (or named quantity) -> the measured scalar consumed.
    measurements: dict[str, float] = field(default_factory=dict)
    #: Suite phase that produced the parameter (filled by the suite).
    phase: str = ""
    #: Free-form decision context (thresholds, window, references).
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "parameter": self.parameter,
            "value": self.value,
            "method": self.method,
            "probes": list(self.probes),
            "measurements": {k: float(v) for k, v in self.measurements.items()},
            "phase": self.phase,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ParameterProvenance":
        try:
            return cls(
                parameter=str(data["parameter"]),
                value=data["value"],
                method=str(data["method"]),
                probes=[str(p) for p in data.get("probes", [])],
                measurements={
                    str(k): float(v)
                    for k, v in data.get("measurements", {}).items()
                },
                phase=str(data.get("phase", "")),
                note=str(data.get("note", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed provenance record: {exc}") from exc


def record_provenance(report, records, phase: str) -> None:
    """Attach phase-tagged provenance records to a report (in place)."""
    for record in records:
        record.phase = phase
        report.provenance[record.parameter] = record.to_dict()


def explain(report, parameter: str | None = None) -> str:
    """Human-readable provenance lookup (the ``servet explain`` body).

    With no ``parameter``, lists every parameter that carries
    provenance.  A parameter may be named exactly or by unambiguous
    prefix (``cache.L2`` matches ``cache.L2.size`` and
    ``cache.L2.sharing``; both are printed).
    """
    available = sorted(report.provenance)
    if not available:
        return (
            "report carries no provenance (produced by a pre-observability "
            "version of the suite)"
        )
    if parameter is None:
        lines = [f"parameters with provenance ({len(available)}):"]
        lines.extend(f"  {name}" for name in available)
        return "\n".join(lines)
    matches = (
        [parameter]
        if parameter in report.provenance
        else [name for name in available if name.startswith(parameter)]
    )
    if not matches:
        raise ReproError(
            f"no provenance for parameter {parameter!r}; available: "
            + ", ".join(available)
        )
    blocks = []
    for name in matches:
        record = ParameterProvenance.from_dict(report.provenance[name])
        lines = [f"{record.parameter} = {record.value}"]
        if record.phase:
            lines.append(f"  phase:  {record.phase}")
        lines.append(f"  method: {record.method}")
        if record.note:
            lines.append(f"  note:   {record.note}")
        if record.probes:
            lines.append(f"  probes ({len(record.probes)}):")
            for probe in record.probes[:20]:
                suffix = ""
                if probe in record.measurements:
                    suffix = f" -> {record.measurements[probe]:.6g}"
                lines.append(f"    {probe}{suffix}")
            if len(record.probes) > 20:
                lines.append(f"    ... and {len(record.probes) - 20} more")
        extras = {
            k: v for k, v in record.measurements.items() if k not in record.probes
        }
        if extras:
            lines.append("  derived quantities:")
            for key, value in sorted(extras.items()):
                lines.append(f"    {key} = {value:.6g}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
