"""Lightweight structured tracing: spans, a collector, JSONL export.

A :class:`Span` is one timed unit of work — a suite phase, a planner
probe, a backend call, a service query — with a name, a parent, wall
and virtual timestamps, and free-form attributes.  The
:class:`Tracer` hands out spans as context managers, tracks the
current span per thread (so nesting is implicit in straight-line code)
and collects finished spans thread-safely; ``save`` writes one JSON
object per line, the format ``servet trace summarize`` and the CI
artifact consume.

Two design points worth naming:

- **Virtual time.**  Simulated backends account measurement cost on a
  virtual clock (:attr:`repro.backends.base.Backend.virtual_time`).
  A tracer built with a ``virtual_clock`` callable samples it at span
  start/end, so a trace of a simulated run shows where the *modeled*
  seconds went, not just the simulator's wall overhead.  The clock is
  reset between phases by the suite, so virtual durations are clamped
  at zero rather than reported negative across a reset.
- **Worker pools.**  ``contextvars`` do not propagate into
  ``ThreadPoolExecutor`` workers, so the implicit current-span parent
  would be lost exactly where nesting matters most (the planner's
  pooled probes).  Span creation therefore accepts an explicit
  ``parent_id``; the planner captures its current span before
  submitting and passes it through.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable

from ..errors import ReproError
from ..ioutils import atomic_write_text

_current_span: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass
class Span:
    """One finished (or in-flight) unit of traced work."""

    span_id: str
    name: str
    parent_id: str | None
    start_wall: float
    attributes: dict = field(default_factory=dict)
    end_wall: float | None = None
    start_virtual: float | None = None
    end_virtual: float | None = None
    status: str = "ok"

    @property
    def wall_duration(self) -> float:
        if self.end_wall is None:
            return 0.0
        return max(0.0, self.end_wall - self.start_wall)

    @property
    def virtual_duration(self) -> float:
        if self.start_virtual is None or self.end_virtual is None:
            return 0.0
        # The suite resets the backend's virtual clock between phases;
        # a span straddling a reset clamps to zero instead of going
        # negative.
        return max(0.0, self.end_virtual - self.start_virtual)

    def set(self, **attributes) -> None:
        """Attach attributes to an open span (JSON scalars please)."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        data = {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "wall_duration": self.wall_duration,
            "virtual_duration": self.virtual_duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }
        if self.start_virtual is not None:
            data["start_virtual"] = self.start_virtual
            data["end_virtual"] = self.end_virtual
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        try:
            span = cls(
                span_id=str(data["span_id"]),
                name=str(data["name"]),
                parent_id=(
                    None if data.get("parent_id") is None else str(data["parent_id"])
                ),
                start_wall=float(data["start_wall"]),
                attributes=dict(data.get("attributes", {})),
                end_wall=(
                    None if data.get("end_wall") is None else float(data["end_wall"])
                ),
                status=str(data.get("status", "ok")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed span record: {exc}") from exc
        if data.get("start_virtual") is not None:
            span.start_virtual = float(data["start_virtual"])
            span.end_virtual = float(data.get("end_virtual") or data["start_virtual"])
        elif data.get("virtual_duration"):
            span.start_virtual = 0.0
            span.end_virtual = float(data["virtual_duration"])
        return span


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Span:
        self._token = _current_span.set(self.span.span_id)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _current_span.reset(self._token)
        if exc_type is not None:
            self.span.status = "error"
            self.span.set(error=f"{exc_type.__name__}: {exc}")
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Create spans and collect them, thread-safely, in finish order.

    Parameters
    ----------
    clock:
        Wall-clock source (injectable for deterministic tests).
    virtual_clock:
        Optional monotone-within-a-phase virtual-time source, usually
        ``lambda: backend.virtual_time``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        virtual_clock: Callable[[], float] | None = None,
    ) -> None:
        self._clock = clock
        self._virtual_clock = virtual_clock
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 0

    # -- span lifecycle -----------------------------------------------------

    def span(
        self, name: str, parent_id: str | None = None, **attributes
    ) -> _SpanContext:
        """Open a span as a context manager.

        ``parent_id`` overrides the implicit current span — required
        when the span is created on a worker thread that did not
        inherit the submitting thread's context.
        """
        with self._lock:
            self._next_id += 1
            span_id = f"s{self._next_id}"
        span = Span(
            span_id=span_id,
            name=name,
            parent_id=parent_id if parent_id is not None else self.current_span_id,
            start_wall=self._clock(),
            attributes=dict(attributes),
        )
        if self._virtual_clock is not None:
            span.start_virtual = float(self._virtual_clock())
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end_wall = self._clock()
        if self._virtual_clock is not None:
            span.end_virtual = float(self._virtual_clock())
        with self._lock:
            self._spans.append(span)

    @property
    def current_span_id(self) -> str | None:
        """The innermost open span of *this* thread (None outside any)."""
        return _current_span.get()

    # -- access & export ----------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans, in finish order."""
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in self.spans()
        )

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON Lines, atomically."""
        atomic_write_text(path, self.to_jsonl())


def load_jsonl(path: str | Path) -> list[Span]:
    """Read a trace written by :meth:`Tracer.save`."""
    spans: list[Span] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ReproError(f"cannot read trace {path}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
        spans.append(Span.from_dict(data))
    return spans


def summarize(spans: Iterable[Span]) -> str:
    """Per-phase time/probe breakdown of a trace (CLI ``trace summarize``).

    Groups spans by the suite phase they ran under (the ``phase``
    attribute propagated by the suite's instrumentation) and reports
    span counts, probe counts by kind, and wall/virtual totals.
    """
    spans = list(spans)
    by_id = {span.span_id: span for span in spans}

    def phase_of(span: Span) -> str:
        node: Span | None = span
        while node is not None:
            if "phase" in node.attributes:
                return str(node.attributes["phase"])
            node = by_id.get(node.parent_id) if node.parent_id else None
        return "(no phase)"

    phases: dict[str, dict] = {}
    order: list[str] = []
    for span in spans:
        phase = phase_of(span)
        if phase not in phases:
            phases[phase] = {
                "spans": 0,
                "probes": {},
                "backend_calls": 0,
                "wall": 0.0,
                "virtual": 0.0,
            }
            order.append(phase)
        bucket = phases[phase]
        bucket["spans"] += 1
        if span.name == "probe":
            kind = str(span.attributes.get("kind", "?"))
            bucket["probes"][kind] = bucket["probes"].get(kind, 0) + 1
        if span.name.startswith("backend."):
            bucket["backend_calls"] += 1
        if span.name == "phase":
            bucket["wall"] += span.wall_duration
            virtual = span.attributes.get("virtual_seconds")
            bucket["virtual"] += (
                float(virtual) if virtual is not None else span.virtual_duration
            )

    lines = [f"trace: {len(spans)} span(s), {len(order)} phase group(s)"]
    for phase in order:
        bucket = phases[phase]
        probes = ", ".join(
            f"{kind}={count}" for kind, count in sorted(bucket["probes"].items())
        )
        lines.append(
            f"  {phase}: {bucket['spans']} span(s), "
            f"{bucket['backend_calls']} backend call(s)"
            + (f", probes [{probes}]" if probes else "")
            + (
                f", virtual {bucket['virtual']:.3f} s"
                if bucket["virtual"]
                else ""
            )
            + (f", wall {bucket['wall']:.3f} s" if bucket["wall"] else "")
        )
    return "\n".join(lines)
