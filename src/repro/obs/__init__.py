"""Observability: structured tracing, metrics, and probe provenance.

Three small, dependency-free pillars (DESIGN.md §6):

- :mod:`repro.obs.trace` — spans with wall *and* virtual time, a
  thread-safe collector, JSONL export, and a per-phase summarizer.
- :mod:`repro.obs.metrics` — counters/gauges/histograms in a shared
  registry; the planner's probe accounting and the tuning service's
  cache counters are views over these instruments.
- :mod:`repro.obs.provenance` — per-parameter evidence trails (probe
  IDs + measurements) embedded in every report and queryable via
  ``servet explain``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from .provenance import ParameterProvenance, explain, record_provenance
from .trace import Span, Tracer, load_jsonl, summarize

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ParameterProvenance",
    "Span",
    "Tracer",
    "explain",
    "load_jsonl",
    "percentile",
    "record_provenance",
    "summarize",
]
