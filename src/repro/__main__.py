"""``python -m repro`` runs the Servet CLI."""

import sys

from .cli import main

sys.exit(main())
