"""Command-line interface: ``servet`` (or ``python -m repro``).

Subcommands:

- ``servet machines`` — list the built-in machine models.
- ``servet run --machine dunnington -o report.json`` — run the full
  suite on a simulated machine and store the report (the paper's
  install-time step).  With ``--registry`` the report is also published
  into the fingerprint-keyed report registry.
- ``servet report report.json`` — pretty-print a stored report
  (``--registry`` + a fingerprint spec or ``latest`` instead of a path).
- ``servet advise report.json --matmul-elem 8`` — sample autotuning
  answers derived from a report (registry specs work here too).
- ``servet serve`` — drive the in-process tuning service with the
  deterministic concurrent-client harness and print cache metrics.
- ``servet serve --listen HOST:PORT`` — run the batching,
  hot-reloading tuning daemon until SIGTERM or a client ``drain``.
- ``servet query SPEC KIND`` — answer one tuning query from a stored
  report (``--remote HOST:PORT`` asks a running daemon instead).
- ``servet registry list|gc`` — inspect / garbage-collect the registry.
- ``servet fleet generate|survey|status|resume`` — fault-tolerant
  characterization of a whole fleet: dedup machines by hardware class,
  survive worker crashes via leases and bounded retries, checkpoint
  and resume, and report per-machine health.
- ``servet zoo generate|recover|sweep`` — seeded machines from families
  the paper never measured (exclusive/victim caches, sectored lines,
  odd associativity, sub-NUMA cells, big.LITTLE cores, multi-NIC and
  oversubscribed interconnects), plus the blind-recovery harness that
  scores every detected parameter against frozen ground truth.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from pathlib import Path
from collections.abc import Sequence

from .autotune import Advisor
from .backends import SimulatedBackend
from .core import ServetReport, ServetSuite
from .errors import ReproError, ServicedError
from .fleet import (
    FleetConfig,
    FleetCoordinator,
    FleetFaultPlan,
    FleetReport,
    FleetSpec,
    ShardedFleetStore,
    generate_fleet,
)
from .resilience import (
    FaultInjectingBackend,
    FaultPlan,
    HardenedBackend,
    ResiliencePolicy,
    RetryPolicy,
    SamplingPolicy,
)
from .netsim import default_comm_config
from .obs import MetricsRegistry, Tracer, explain, load_jsonl, summarize
from .planner import PRUNE_MODES
from .service import (
    ReportRegistry,
    TuningService,
    fingerprint_of,
    incremental_refresh,
    query_from_spec,
    run_harness,
)
from .serviced import ServicedClient, TuningDaemon
from .zoo import (
    generate_machine,
    generate_zoo,
    recover_all,
    recover_machine,
)
from .zoo import family_names as zoo_family_names
from .topology import (
    Cluster,
    build_machine,
    builder_names,
    finis_terrae,
    load_cluster,
    save_cluster,
)


#: Default registry root: ``$SERVET_REGISTRY`` or ``~/.servet/registry``.
DEFAULT_REGISTRY = os.environ.get(
    "SERVET_REGISTRY", str(Path.home() / ".servet" / "registry")
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="servet",
        description="Servet benchmark suite (simulated-substrate reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list built-in machine models")

    run = sub.add_parser("run", help="run the full suite on a machine model")
    run.add_argument(
        "--machine",
        default="dunnington",
        help=f"one of: {', '.join(builder_names())}",
    )
    run.add_argument(
        "--preset",
        dest="machine",
        default=argparse.SUPPRESS,
        metavar="NAME",
        help="alias for --machine",
    )
    run.add_argument(
        "--machine-file",
        default=None,
        help="JSON cluster description (see 'servet export-machine'); "
        "overrides --machine",
    )
    run.add_argument(
        "--nodes",
        type=int,
        default=1,
        help="number of cluster nodes (finis_terrae only; default 1)",
    )
    run.add_argument("--seed", type=int, default=42, help="measurement RNG seed")
    run.add_argument(
        "--noise", type=float, default=0.01, help="relative measurement noise"
    )
    run.add_argument(
        "-o", "--output", default=None, help="write the JSON report here"
    )
    run.add_argument(
        "--lenient",
        action="store_true",
        help="degrade gracefully on phase failures (record them in the "
        "report) instead of aborting the run",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="serialize partial suite state here after every phase",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint instead of re-measuring finished "
        "phases",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="harden measurements: retry each up to N times with "
        "exponential backoff (charged to virtual time)",
    )
    run.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="K",
        help="harden measurements: combine K repeated samples with a "
        "median (outlier rejection)",
    )
    run.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="inject deterministic faults from a JSON fault plan "
        "(resilience drill; see repro.resilience.FaultPlan)",
    )
    run.add_argument(
        "--prune",
        choices=list(PRUNE_MODES),
        default="off",
        help="symmetry-prune pairwise measurements: measure one "
        "representative per topology-equivalence class ('topology'), "
        "additionally spot-check each class ('verify'), or measure "
        "every pair ('off', the default)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N independent measurements concurrently on "
        "wall-clock-bound backends (simulated backends always run "
        "serially to stay deterministic)",
    )
    run.add_argument(
        "--probe-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon and re-dispatch any pooled probe that produces no "
        "result within this many wall seconds (requires --jobs > 1; "
        "keeps one hung measurement from stalling the plan)",
    )

    run.add_argument(
        "--no-sim-cache",
        action="store_true",
        help="bypass the simulated backend's traversal outcome cache "
        "(every probe re-simulates; results are identical, only "
        "slower — recorded in the checkpoint fingerprint so cached "
        "and uncached runs never resume into each other)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write structured spans (suite phases, planner probes, "
        "backend calls) as JSON Lines; inspect with 'servet trace "
        "summarize'",
    )
    run.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the run's metrics registry (probe counters, cache "
        "hit/miss, per-phase durations) as JSON",
    )
    run.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="also publish the report into this fingerprint-keyed "
        "registry (see 'servet registry')",
    )

    rep = sub.add_parser("report", help="pretty-print a stored report")
    rep.add_argument(
        "path",
        help="JSON report produced by 'servet run' (with --registry: a "
        "fingerprint digest/prefix or 'latest')",
    )
    rep.add_argument(
        "--registry",
        nargs="?",
        const=DEFAULT_REGISTRY,
        default=None,
        metavar="DIR",
        help="read from this report registry instead of a file path "
        f"(default {DEFAULT_REGISTRY})",
    )

    adv = sub.add_parser(
        "advise",
        help="sample autotuning answers for a report; the special path "
        "'co-schedule' ranks workload placements instead",
    )
    adv.add_argument(
        "path",
        help="JSON report produced by 'servet run' (with --registry: a "
        "fingerprint digest/prefix or 'latest'), or the literal "
        "'co-schedule' to rank workload placements (then give the "
        "report via --report or --registry)",
    )
    adv.add_argument(
        "--matmul-elem", type=int, default=8, help="matrix element size in bytes"
    )
    adv.add_argument(
        "--registry",
        nargs="?",
        const=DEFAULT_REGISTRY,
        default=None,
        metavar="DIR",
        help="read from this report registry instead of a file path "
        f"(default {DEFAULT_REGISTRY})",
    )
    adv.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="report file for 'advise co-schedule'",
    )
    adv.add_argument(
        "--workloads",
        default=None,
        metavar="SPEC[;SPEC...]",
        help="';'-separated workload specs to place, e.g. "
        "'streaming;zipf:s=1.3' (co-schedule)",
    )
    adv.add_argument(
        "--seed", type=int, default=0, help="workload stream seed (co-schedule)"
    )
    adv.add_argument(
        "--cache-level",
        type=int,
        default=None,
        help="shared cache level to model (default: outermost shared)",
    )
    adv.add_argument(
        "--instances",
        type=int,
        default=None,
        help="shared-cache instances available (default: all detected)",
    )
    adv.add_argument(
        "--top", type=int, default=3, help="ranked placements to show"
    )
    adv.add_argument(
        "--json",
        action="store_true",
        help="print the full advice as JSON (co-schedule)",
    )

    srv = sub.add_parser(
        "serve",
        help="serve tuning queries: with --listen, run the network daemon; "
        "otherwise drive the in-process service with the deterministic "
        "concurrent-client harness",
    )
    srv.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="run as a network daemon on this address (port 0 picks a "
        "free port; SIGTERM or a client 'drain' request shuts down "
        "gracefully)",
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=4,
        help="daemon worker threads (with --listen; default 4)",
    )
    srv.add_argument(
        "--batch-max",
        type=int,
        default=64,
        help="max requests a worker batches per loop (with --listen; "
        "default 64)",
    )
    srv.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between registry hot-reload probes (with --listen; "
        "default 0.5)",
    )
    srv.add_argument(
        "--report", default=None, metavar="PATH", help="serve this report file"
    )
    srv.add_argument(
        "--registry",
        default=DEFAULT_REGISTRY,
        metavar="DIR",
        help="serve from this registry when --report is not given",
    )
    srv.add_argument(
        "--fingerprint",
        default="latest",
        help="registry spec to serve: digest, unique prefix, or 'latest'",
    )
    srv.add_argument("--clients", type=int, default=8, help="concurrent clients")
    srv.add_argument(
        "--queries", type=int, default=500, help="queries per client"
    )
    srv.add_argument("--seed", type=int, default=1234, help="harness RNG seed")
    srv.add_argument(
        "--capacity", type=int, default=4096, help="answer-cache capacity"
    )
    srv.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="answer-cache TTL in seconds (default: no expiry)",
    )
    srv.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write per-query spans as JSON Lines",
    )
    srv.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the service metrics registry as JSON",
    )

    qry = sub.add_parser("query", help="answer one tuning query from a report")
    qry.add_argument(
        "path",
        help="report file (with --registry: digest/prefix or 'latest')",
    )
    qry.add_argument(
        "kind",
        choices=[
            "tile",
            "matmul-tile",
            "streaming-cores",
            "aggregate",
            "bcast",
            "latency",
            "co-schedule",
        ],
        help="which question to ask",
    )
    qry.add_argument(
        "--registry",
        nargs="?",
        const=DEFAULT_REGISTRY,
        default=None,
        metavar="DIR",
        help="read from this report registry instead of a file path",
    )
    qry.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT",
        help="ask a running 'servet serve --listen' daemon instead of "
        "loading a report (the positional path is ignored; pass '-')",
    )
    qry.add_argument("--level", type=int, default=1, help="cache level (tiling)")
    qry.add_argument(
        "--arrays", type=int, default=1, help="arrays sharing the tile (tiling)"
    )
    qry.add_argument(
        "--elem", type=int, default=8, help="element size in bytes (tiling)"
    )
    qry.add_argument(
        "--group", type=int, default=0, help="overhead group (streaming-cores)"
    )
    qry.add_argument(
        "--pair",
        default=None,
        metavar="A,B",
        help="core pair (aggregate/latency), e.g. 0,12",
    )
    qry.add_argument(
        "--messages", type=int, default=16, help="message count (aggregate)"
    )
    qry.add_argument(
        "--size", type=int, default=4096, help="message size in bytes"
    )
    qry.add_argument(
        "--placement",
        default=None,
        metavar="C0,C1,...",
        help="rank-to-core placement (bcast)",
    )
    qry.add_argument("--root", type=int, default=0, help="broadcast root rank")
    qry.add_argument(
        "--workloads",
        default=None,
        metavar="SPEC[;SPEC...]",
        help="';'-separated workload specs (co-schedule)",
    )
    qry.add_argument(
        "--seed", type=int, default=0, help="workload stream seed (co-schedule)"
    )
    qry.add_argument(
        "--cache-level",
        type=int,
        default=None,
        help="shared cache level to model (co-schedule; default: "
        "outermost shared)",
    )
    qry.add_argument(
        "--instances",
        type=int,
        default=None,
        help="shared-cache instances available (co-schedule)",
    )
    qry.add_argument(
        "--top", type=int, default=3, help="ranked placements (co-schedule)"
    )

    wkl = sub.add_parser(
        "workload", help="inspect the synthetic workload generators"
    )
    wkl_sub = wkl.add_subparsers(dest="workload_command", required=True)
    wkl_sub.add_parser("list", help="list workload generators and defaults")
    wprof = wkl_sub.add_parser(
        "profile", help="profile one workload's reuse-distance histogram"
    )
    wprof.add_argument(
        "spec", help="workload spec, e.g. 'zipf:lines=8192,s=1.3'"
    )
    wprof.add_argument("--seed", type=int, default=0, help="stream seed")
    wprof.add_argument(
        "--capacity",
        default=None,
        metavar="LINES[,LINES...]",
        help="also print solo miss ratios at these capacities (in lines)",
    )
    wprof.add_argument(
        "--json",
        action="store_true",
        help="print the full serialized profile as JSON",
    )

    reg = sub.add_parser("registry", help="inspect the report registry")
    reg_sub = reg.add_subparsers(dest="registry_command", required=True)
    reg_list = reg_sub.add_parser("list", help="list stored report versions")
    reg_list.add_argument(
        "--registry", default=DEFAULT_REGISTRY, metavar="DIR", help="registry root"
    )
    reg_gc = reg_sub.add_parser("gc", help="drop old report versions")
    reg_gc.add_argument(
        "--registry", default=DEFAULT_REGISTRY, metavar="DIR", help="registry root"
    )
    reg_gc.add_argument(
        "--keep", type=int, default=1, help="versions to keep per fingerprint"
    )
    reg_refresh = reg_sub.add_parser(
        "refresh",
        help="incrementally re-measure a stored report against a (changed) "
        "machine model",
    )
    reg_refresh.add_argument(
        "--registry", default=DEFAULT_REGISTRY, metavar="DIR", help="registry root"
    )
    reg_refresh.add_argument(
        "--base", default="latest", help="stored report to refresh from"
    )
    reg_refresh.add_argument(
        "--machine", default="dunnington", help=f"one of: {', '.join(builder_names())}"
    )
    reg_refresh.add_argument(
        "--machine-file",
        default=None,
        help="JSON cluster description; overrides --machine",
    )
    reg_refresh.add_argument(
        "--nodes", type=int, default=1, help="cluster nodes (finis_terrae only)"
    )
    reg_refresh.add_argument("--seed", type=int, default=42, help="RNG seed")
    reg_refresh.add_argument(
        "--noise", type=float, default=0.01, help="relative measurement noise"
    )
    reg_refresh.add_argument(
        "--prune", choices=list(PRUNE_MODES), default="off", help="prune mode"
    )

    fleet = sub.add_parser(
        "fleet",
        help="survey a whole fleet of machines fault-tolerantly",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fgen = fleet_sub.add_parser(
        "generate",
        help="write a reproducible heterogeneous fleet spec (JSON)",
    )
    fgen.add_argument("-o", "--output", required=True, help="output JSON path")
    fgen.add_argument(
        "--machines", type=int, default=200, help="fleet size (default 200)"
    )
    fgen.add_argument(
        "--classes",
        type=int,
        default=40,
        help="distinct hardware classes (default 40)",
    )
    fgen.add_argument("--seed", type=int, default=0, help="fleet RNG seed")
    fgen.add_argument(
        "--noise", type=float, default=0.0, help="measurement noise (default 0)"
    )
    fgen.add_argument("--name", default="fleet", help="fleet name")

    def _add_survey_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="fleet spec JSON (see 'fleet generate')")
        p.add_argument(
            "--store",
            required=True,
            metavar="DIR",
            help="sharded report store root (class reports + fleet_report.json)",
        )
        p.add_argument(
            "--shards", type=int, default=16, help="store shard count (default 16)"
        )
        p.add_argument(
            "--workers", type=int, default=8, help="worker count (default 8)"
        )
        p.add_argument(
            "--checkpoint",
            default=None,
            metavar="PATH",
            help="fleet checkpoint path (rewritten after every finished class)",
        )
        p.add_argument(
            "--fault-plan",
            default=None,
            metavar="PATH",
            help="inject deterministic fleet faults (crashes, stragglers, "
            "flaky machines) from a JSON FleetFaultPlan",
        )
        p.add_argument(
            "--lease",
            type=float,
            default=None,
            metavar="SECONDS",
            help="job lease duration (logical seconds)",
        )
        p.add_argument(
            "--max-attempts",
            type=int,
            default=None,
            metavar="N",
            help="reassignments before a class is marked failed",
        )
        p.add_argument(
            "-o", "--output", default=None, help="also write the fleet report here"
        )
        p.add_argument(
            "--metrics",
            default=None,
            metavar="FILE",
            help="write the survey's metrics registry as JSON",
        )

    fsurvey = fleet_sub.add_parser(
        "survey", help="characterize every machine of a fleet"
    )
    _add_survey_options(fsurvey)

    fresume = fleet_sub.add_parser(
        "resume",
        help="resume an interrupted survey from its fleet checkpoint",
    )
    _add_survey_options(fresume)

    fstatus = fleet_sub.add_parser(
        "status", help="pretty-print a fleet report"
    )
    fstatus.add_argument(
        "path",
        help="fleet report JSON, or a store directory containing "
        "fleet_report.json",
    )

    zoo = sub.add_parser(
        "zoo",
        help="generate off-paper machines and verify blind recovery "
        "against their frozen ground truth",
    )
    zoo_sub = zoo.add_subparsers(dest="zoo_command", required=True)

    zgen = zoo_sub.add_parser(
        "generate",
        help="write one generated machine (cluster + comm + ground truth)",
    )
    zgen.add_argument(
        "--family",
        required=True,
        help=f"one of: {', '.join(zoo_family_names())}",
    )
    zgen.add_argument("--seed", type=int, default=0, help="machine seed")
    zgen.add_argument(
        "-o",
        "--output",
        default=None,
        help="write machine JSON here (default: print the ground truth)",
    )

    zrec = zoo_sub.add_parser(
        "recover",
        help="run the blind suite on one generated machine and score it",
    )
    zrec.add_argument(
        "--family",
        required=True,
        help=f"one of: {', '.join(zoo_family_names())}",
    )
    zrec.add_argument("--seed", type=int, default=0, help="machine seed")
    zrec.add_argument(
        "--noise", type=float, default=0.0, help="backend noise (default 0)"
    )
    zrec.add_argument(
        "--json", action="store_true", help="print the full verdict JSON"
    )

    zsweep = zoo_sub.add_parser(
        "sweep",
        help="recover many machines per family; any WRONG fails the run",
    )
    zsweep.add_argument(
        "--families",
        default=None,
        help="comma-separated family list (default: all)",
    )
    zsweep.add_argument(
        "--seeds", type=int, default=25, help="machines per family (default 25)"
    )
    zsweep.add_argument(
        "--noise", type=float, default=0.0, help="backend noise (default 0)"
    )
    zsweep.add_argument(
        "-o", "--output", default=None, help="write the sweep report JSON here"
    )

    val = sub.add_parser(
        "validate",
        help="compare a report against a built-in machine's ground truth "
        "(repository CI helper)",
    )
    val.add_argument("path", help="JSON report produced by 'servet run'")
    val.add_argument(
        "--machine",
        required=True,
        help=f"one of: {', '.join(builder_names())}",
    )

    xpl = sub.add_parser(
        "explain",
        help="show which probes justified a detected parameter "
        "(provenance lookup)",
    )
    xpl.add_argument(
        "path",
        help="report file (with --registry: digest/prefix or 'latest')",
    )
    xpl.add_argument(
        "parameter",
        nargs="?",
        default=None,
        help="dotted parameter path (e.g. cache.L2.size) or a prefix; "
        "omit to list every parameter with provenance",
    )
    xpl.add_argument(
        "--registry",
        nargs="?",
        const=DEFAULT_REGISTRY,
        default=None,
        metavar="DIR",
        help="read from this report registry instead of a file path",
    )

    trc = sub.add_parser(
        "trace", help="inspect traces written by 'servet run --trace'"
    )
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    trc_sum = trc_sub.add_parser(
        "summarize", help="per-phase time and probe breakdown of a trace"
    )
    trc_sum.add_argument("path", help="JSON Lines trace file")

    exp = sub.add_parser(
        "export-machine",
        help="write a built-in machine's JSON description (a template for "
        "describing your own system)",
    )
    exp.add_argument("machine", help=f"one of: {', '.join(builder_names())}")
    exp.add_argument("-o", "--output", required=True, help="output JSON path")
    exp.add_argument(
        "--nodes", type=int, default=1, help="number of cluster nodes"
    )
    return parser


def _cmd_machines() -> int:
    for name in builder_names():
        machine = build_machine(name)
        print(machine.summary())
        print()
    return 0


def _build_system(args: argparse.Namespace):
    """The (system, comm_config) a machine-selecting command names."""
    comm_config = None
    if args.machine_file is not None:
        system, comm_config = load_cluster(args.machine_file)
    elif args.machine == "finis_terrae" and args.nodes > 1:
        system = finis_terrae(args.nodes)
    else:
        if args.nodes > 1:
            print(
                f"note: --nodes ignored for {args.machine} (single-node model)",
                file=sys.stderr,
            )
        system = build_machine(args.machine)
    return system, comm_config


def _load_report_arg(path_or_spec: str, registry: str | None) -> ServetReport:
    """A report named either by file path or by registry spec."""
    if registry is not None:
        return ReportRegistry(registry).get(path_or_spec)
    return ServetReport.load(path_or_spec)


def _cmd_run(args: argparse.Namespace) -> int:
    system, comm_config = _build_system(args)
    backend = SimulatedBackend(
        system,
        comm_config=comm_config,
        seed=args.seed,
        noise=args.noise,
        sim_cache=not args.no_sim_cache,
    )
    if args.fault_plan is not None:
        backend = FaultInjectingBackend(backend, FaultPlan.load(args.fault_plan))
    if args.retries is not None or args.samples is not None:
        default = ResiliencePolicy.default()
        policy = ResiliencePolicy(
            retry=(
                RetryPolicy(max_attempts=args.retries)
                if args.retries is not None
                else default.retry
            ),
            sampling=(
                SamplingPolicy(samples=args.samples)
                if args.samples is not None
                else default.sampling
            ),
        )
        backend = HardenedBackend(backend, policy)
    if args.resume and args.checkpoint is None:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    suite = ServetSuite(
        backend,
        jobs=args.jobs,
        prune=args.prune,
        probe_timeout=args.probe_timeout,
        sim_cache=not args.no_sim_cache,
    )
    report = suite.run(
        strict=not args.lenient,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    print(report.summary())
    if args.trace:
        suite.tracer.save(args.trace)
        print(
            f"trace written to {args.trace} "
            f"({len(suite.tracer.spans())} spans)"
        )
    if args.metrics:
        suite.metrics.save_json(args.metrics)
        print(f"metrics written to {args.metrics}")
    if report.degraded:
        print(
            "\nWARNING: degraded run — phases "
            + ", ".join(
                f"{p}={s}"
                for p, s in report.phase_status.items()
                if s != "ok"
            ),
            file=sys.stderr,
        )
    if args.output:
        report.save(args.output)
        print(f"\nreport written to {args.output}")
    if args.registry:
        fingerprint = fingerprint_of(backend, options={"prune": args.prune})
        entry = ReportRegistry(args.registry).put(fingerprint, report)
        print(
            f"report registered as {entry.short} v{entry.version} "
            f"in {args.registry}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(_load_report_arg(args.path, args.registry).summary())
    return 0


def _split_workloads(spec: str | None) -> list[str]:
    if not spec:
        raise ReproError(
            "co-schedule needs --workloads 'SPEC;SPEC;...' "
            "(see 'servet workload list')"
        )
    workloads = [w.strip() for w in spec.split(";") if w.strip()]
    if not workloads:
        raise ReproError("--workloads named no workloads")
    return workloads


def _cmd_advise_coschedule(args: argparse.Namespace) -> int:
    if args.report is not None:
        report = ServetReport.load(args.report)
    elif args.registry is not None:
        report = _load_report_arg("latest", args.registry)
    else:
        raise ReproError(
            "'advise co-schedule' needs the report via --report PATH "
            "or --registry [DIR]"
        )
    advice = Advisor(report).co_schedule(
        _split_workloads(args.workloads),
        seed=args.seed,
        level=args.cache_level,
        instances=args.instances,
        top=args.top,
    )
    if args.json:
        print(json.dumps(advice.to_dict(), indent=2, sort_keys=True))
        return 0
    prov = advice.provenance
    print(
        f"Co-scheduling advice for {advice.system} "
        f"(L{advice.level}, {prov['instances']} instance(s) of "
        f"{prov['group_size']} core(s), "
        f"{prov['cache_size'] // 1024} KB each):"
    )
    for rank, option in enumerate(advice.options, start=1):
        blocks = " | ".join(
            "+".join(advice.names[i].split(":")[0] for i in block)
            for block in option.blocks
        )
        print(
            f"  #{rank}: {blocks}  "
            f"(worst slowdown {option.worst_slowdown:.3f}, "
            f"mean {option.mean_slowdown:.3f})"
        )
    best = advice.best
    for block, prediction in zip(best.blocks, best.predictions):
        for i, w in zip(block, prediction.workloads):
            print(
                f"    best: {advice.names[i]} -> "
                f"miss {w.solo_miss_ratio:.4f} solo / "
                f"{w.corun_miss_ratio:.4f} co-run, "
                f"slowdown {w.slowdown:.3f}"
            )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    if args.path == "co-schedule":
        return _cmd_advise_coschedule(args)
    report = _load_report_arg(args.path, args.registry)
    advisor = Advisor(report)
    print(f"Autotuning advice for {report.system}:")
    plan = advisor.matmul_tiles(elem_size=args.matmul_elem)
    for level, side in sorted(plan.sides.items()):
        print(f"  matmul tile for L{level}: {side} x {side}")
    if report.memory_levels:
        k = advisor.max_useful_streaming_cores()
        group = report.memory_levels[0].groups[0] if report.memory_levels[0].groups else []
        print(
            f"  streaming cores worth using in group {group}: {k}"
        )
    for layer in report.comm_layers:
        advice = None
        if layer.pairs:
            a, b = layer.pairs[0]
            advice = advisor.should_aggregate(a, b, 16, 4096)
        if advice is not None:
            verb = "aggregate" if advice.aggregate else "send separately"
            print(
                f"  layer {layer.index}: 16 x 4KB messages -> {verb} "
                f"(speedup {advice.speedup:.2f}x)"
            )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    report = ServetReport.load(args.path)
    machine = build_machine(args.machine)
    failures: list[str] = []

    if report.cache_sizes != list(machine.cache_sizes):
        failures.append(
            f"cache sizes: detected {report.cache_sizes}, "
            f"truth {list(machine.cache_sizes)}"
        )
    for cache in report.caches:
        try:
            truth_pairs = set(machine.shared_level_pairs(cache.level))
        except ReproError:
            truth_pairs = set()
        got_pairs = set(cache.shared_pairs)
        if got_pairs != truth_pairs:
            failures.append(
                f"L{cache.level} sharing: detected {len(got_pairs)} pairs, "
                f"truth {len(truth_pairs)}"
            )
    if report.comm_layers:
        # Layer count check only makes sense for single-node reports of
        # this machine; cluster reports carry an inter-node layer too.
        pass

    if failures:
        print(f"VALIDATION FAILED for {report.system} vs {machine.name}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"validation OK: {report.system} report matches {machine.name} "
        f"ground truth ({len(report.caches)} cache levels, "
        f"{len(report.comm_layers)} comm layers)"
    )
    return 0


def _parse_hostport(spec: str) -> tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ServicedError(
            f"address {spec!r} is not HOST:PORT (e.g. 127.0.0.1:7777)"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise ServicedError(f"address {spec!r} has a non-numeric port") from exc


def _cmd_serve_daemon(args: argparse.Namespace) -> int:
    host, port = _parse_hostport(args.listen)
    if args.report is not None:
        daemon = TuningDaemon(
            report=ServetReport.load(args.report),
            host=host,
            port=port,
            workers=args.workers,
            batch_max=args.batch_max,
            capacity=args.capacity,
            ttl=args.ttl,
        )
        source = args.report
    else:
        daemon = TuningDaemon(
            registry=ReportRegistry(args.registry),
            spec=args.fingerprint,
            host=host,
            port=port,
            workers=args.workers,
            batch_max=args.batch_max,
            poll_interval=args.poll_interval,
            capacity=args.capacity,
            ttl=args.ttl,
        )
        source = f"{args.registry} [{args.fingerprint}]"
    daemon.start()
    # The parseable "listening" line is the contract the smoke test (and
    # any process supervisor) reads the bound port from.
    print(f"tuning daemon for {daemon.report.system} ({source})")
    print(f"listening on {daemon.host}:{daemon.port}", flush=True)

    def _on_signal(signum, frame):
        daemon.drain(wait=False)

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    daemon.wait()
    stats = daemon.stats()
    service = stats["service"]
    print(
        f"drained: served {service['queries']} queries "
        f"(hit rate {100 * service['hit_rate']:.1f}%) "
        f"at report version v{stats['version']}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.listen is not None:
        return _cmd_serve_daemon(args)
    if args.report is not None:
        report = ServetReport.load(args.report)
        source = args.report
    else:
        report = ReportRegistry(args.registry).get(args.fingerprint)
        source = f"{args.registry} [{args.fingerprint}]"
    tracer = Tracer() if args.trace else None
    registry = MetricsRegistry() if args.metrics else None
    service = TuningService(
        report,
        capacity=args.capacity,
        ttl=args.ttl,
        metrics=registry,
        tracer=tracer,
    )
    print(f"tuning service for {report.system} ({source})")
    result = run_harness(
        service,
        clients=args.clients,
        queries_per_client=args.queries,
        seed=args.seed,
    )
    metrics = result.metrics
    print(
        f"harness: {result.queries} queries from {result.clients} clients "
        f"in {result.wall_seconds * 1e3:.1f} ms "
        f"({result.queries_per_second:,.0f} q/s)"
    )
    print(
        f"cache: {metrics['hits']} hits / {metrics['misses']} misses "
        f"(hit rate {100 * metrics['hit_rate']:.1f}%), "
        f"{metrics['cache_entries']} entries, "
        f"{metrics['evictions']} evictions"
    )
    print(
        "latency: p50 {:.1f} us, p90 {:.1f} us, p99 {:.1f} us".format(
            metrics["latency_p50"] * 1e6,
            metrics["latency_p90"] * 1e6,
            metrics["latency_p99"] * 1e6,
        )
    )
    if args.trace:
        tracer.save(args.trace)
        print(f"trace written to {args.trace} ({len(tracer.spans())} spans)")
    if args.metrics:
        registry.save_json(args.metrics)
        print(f"metrics written to {args.metrics}")
    if result.mismatches:
        print(
            f"ERROR: {result.mismatches} answers diverged from the "
            "uncached reference",
            file=sys.stderr,
        )
        return 1
    print("all answers match the uncached reference")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    params: dict = {
        "level": args.level,
        "n_arrays": args.arrays,
        "elem_size": args.elem,
        "group_index": args.group,
        "n_messages": args.messages,
        "message_size": args.size,
        "nbytes": args.size,
        "root": args.root,
    }
    if args.pair is not None:
        core_a, core_b = (int(c) for c in args.pair.split(","))
        params["core_a"], params["core_b"] = core_a, core_b
    if args.placement is not None:
        params["placement"] = [int(c) for c in args.placement.split(",")]
    if args.kind == "co-schedule":
        params["workloads"] = _split_workloads(args.workloads)
        params["seed"] = args.seed
        params["level"] = args.cache_level
        params["instances"] = args.instances
        params["top"] = args.top
    if args.remote is not None:
        host, port = _parse_hostport(args.remote)
        with ServicedClient(host, port) as client:
            result = client.query(query_from_spec(args.kind, None, **params))
    else:
        report = _load_report_arg(args.path, args.registry)
        service = TuningService(report)
        result = service.query(query_from_spec(args.kind, report, **params))
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from .workload import GENERATORS, parse_workload, profile_workload

    if args.workload_command == "list":
        print("workload generators (name: defaults):")
        for name in sorted(GENERATORS):
            defaults, _ = GENERATORS[name]
            rendered = ",".join(f"{k}={v}" for k, v in defaults.items())
            print(f"  {name}: {rendered}")
        return 0
    if args.workload_command == "profile":
        workload = parse_workload(args.spec)
        profile = profile_workload(workload, seed=args.seed)
        if args.json:
            print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
            return 0
        print(f"reuse profile of {profile.name} (seed {profile.seed}):")
        print(
            f"  accesses {profile.accesses}, distinct lines "
            f"{profile.distinct_lines}, cold miss ratio "
            f"{profile.cold / profile.accesses:.4f}"
        )
        print(f"  histogram rows: {len(profile.bins)}")
        for point, share in profile.cdf()[:: max(1, len(profile.bins) // 8)]:
            print(f"    P[distance <= {point:10.1f}] = {share:.4f}")
        if args.capacity:
            for token in args.capacity.split(","):
                capacity = int(token)
                print(
                    f"  solo miss ratio @ {capacity} lines: "
                    f"{profile.miss_ratio(capacity):.4f}"
                )
        return 0
    raise AssertionError("unreachable")


def _cmd_registry(args: argparse.Namespace) -> int:
    registry = ReportRegistry(args.registry)
    if args.registry_command == "list":
        entries = registry.entries()
        quarantined = registry.quarantined_counts()
        if not entries and not quarantined:
            print(f"registry {args.registry} is empty")
            return 0
        print(f"registry {args.registry}:")
        for entry in entries:
            flag = ""
            if entry.digest in quarantined:
                flag = f"  [{quarantined[entry.digest]} quarantined]"
            print(
                f"  {entry.short} v{entry.version}  {entry.system} "
                f"({entry.n_cores} cores, schema v{entry.schema_version})"
                f"{flag}"
            )
        listed = {entry.digest for entry in entries}
        for digest, count in sorted(quarantined.items()):
            if digest not in listed:
                print(
                    f"  {digest[:12]}  no intact versions "
                    f"[{count} quarantined]"
                )
        total = sum(quarantined.values())
        if total:
            print(
                f"  ({total} quarantined file(s) across "
                f"{len(quarantined)} fingerprint(s); "
                "'servet registry gc' sweeps them)"
            )
        return 0
    if args.registry_command == "gc":
        removed = registry.gc(keep=args.keep)
        print(f"removed {len(removed)} file(s), keeping {args.keep} per fingerprint")
        return 0
    if args.registry_command == "refresh":
        system, comm_config = _build_system(args)
        backend = SimulatedBackend(
            system, comm_config=comm_config, seed=args.seed, noise=args.noise
        )
        result = incremental_refresh(
            registry, backend, base=args.base, options={"prune": args.prune}
        )
        print(result.staleness.summary())
        print(f"refresh mode: {result.mode}")
        if result.entry is not None:
            print(
                f"stored as {result.entry.short} v{result.entry.version} "
                f"(probes issued: {result.report.planner.get('issued', 0)})"
            )
        return 0
    raise AssertionError("unreachable")


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "generate":
        spec = generate_fleet(
            n_machines=args.machines,
            n_classes=args.classes,
            seed=args.seed,
            name=args.name,
            noise=args.noise,
        )
        spec.save(args.output)
        print(
            f"fleet spec written to {args.output}: "
            f"{len(spec.machines)} machine(s) in {len(spec.classes())} "
            f"hardware class(es)"
        )
        return 0
    if args.fleet_command == "status":
        path = Path(args.path)
        if path.is_dir():
            path = path / "fleet_report.json"
        print(FleetReport.load(path).summary())
        return 0
    if args.fleet_command in ("survey", "resume"):
        resume = args.fleet_command == "resume"
        if resume and args.checkpoint is None:
            print("error: fleet resume requires --checkpoint", file=sys.stderr)
            return 2
        spec = FleetSpec.load(args.spec)
        overrides = {}
        if args.workers is not None:
            overrides["workers"] = args.workers
        if args.lease is not None:
            overrides["lease_seconds"] = args.lease
        if args.max_attempts is not None:
            overrides["max_attempts"] = args.max_attempts
        config = FleetConfig(**overrides)
        fault_plan = (
            FleetFaultPlan.load(args.fault_plan)
            if args.fault_plan is not None
            else None
        )
        coordinator = FleetCoordinator(
            spec,
            store=ShardedFleetStore(args.store, shards=args.shards),
            config=config,
            fault_plan=fault_plan,
            checkpoint=args.checkpoint,
        )
        report = coordinator.survey(resume=resume)
        print(report.summary())
        if args.metrics:
            coordinator.metrics.save_json(args.metrics)
            print(f"metrics written to {args.metrics}")
        if args.output:
            report.save(args.output)
            print(f"fleet report written to {args.output}")
        print(f"class reports stored in {args.store}")
        if not report.complete:
            return 3  # drained before finishing; resume to continue
        if report.counts.get("failed"):
            return 1
        return 0
    raise AssertionError("unreachable")


def _cmd_zoo(args: argparse.Namespace) -> int:
    if args.zoo_command == "generate":
        gm = generate_machine(args.family, args.seed)
        if args.output:
            save_cluster(gm.cluster, args.output, comm=gm.comm)
            print(f"machine description written to {args.output}")
        print(json.dumps(gm.truth.to_dict(), indent=2))
        return 0
    if args.zoo_command == "recover":
        gm = generate_machine(args.family, args.seed)
        result = recover_machine(gm, noise=args.noise)
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            counts = result.counts()
            print(
                f"{result.machine_name}: "
                + ", ".join(f"{k}={v}" for k, v in counts.items())
            )
            for v in result.verdicts:
                detail = f" ({v.reason})" if v.reason else ""
                print(f"  {v.verdict:12s} {v.parameter}{detail}")
        return 0 if result.ok else 1
    if args.zoo_command == "sweep":
        families = (
            [f.strip() for f in args.families.split(",") if f.strip()]
            if args.families
            else None
        )
        machines = generate_zoo(families=families, seeds=args.seeds)
        report = recover_all(machines, noise=args.noise)
        print(report.summary())
        if args.output:
            Path(args.output).write_text(
                json.dumps(report.to_dict(), indent=2) + "\n"
            )
            print(f"sweep report written to {args.output}")
        return 0 if report.ok else 1
    raise AssertionError("unreachable")


def _cmd_explain(args: argparse.Namespace) -> int:
    report = _load_report_arg(args.path, args.registry)
    print(explain(report, args.parameter))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summarize":
        print(summarize(load_jsonl(args.path)))
        return 0
    raise AssertionError("unreachable")


def _cmd_export_machine(args: argparse.Namespace) -> int:
    if args.machine == "finis_terrae" and args.nodes > 1:
        cluster = finis_terrae(args.nodes)
    else:
        machine = build_machine(args.machine)
        cluster = Cluster(machine.name, machine, n_nodes=1)
    save_cluster(cluster, args.output, comm=default_comm_config(cluster))
    print(f"machine description written to {args.output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "machines":
            return _cmd_machines()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "advise":
            return _cmd_advise(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "workload":
            return _cmd_workload(args)
        if args.command == "registry":
            return _cmd_registry(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "zoo":
            return _cmd_zoo(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "export-machine":
            return _cmd_export_machine(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
