"""Command-line interface: ``servet`` (or ``python -m repro``).

Subcommands:

- ``servet machines`` — list the built-in machine models.
- ``servet run --machine dunnington -o report.json`` — run the full
  suite on a simulated machine and store the report (the paper's
  install-time step).
- ``servet report report.json`` — pretty-print a stored report.
- ``servet advise report.json --matmul-elem 8`` — sample autotuning
  answers derived from a report.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .autotune import Advisor
from .backends import SimulatedBackend
from .core import ServetReport, ServetSuite
from .errors import ReproError
from .resilience import (
    FaultInjectingBackend,
    FaultPlan,
    HardenedBackend,
    ResiliencePolicy,
    RetryPolicy,
    SamplingPolicy,
)
from .netsim import default_comm_config
from .planner import PRUNE_MODES
from .topology import (
    Cluster,
    build_machine,
    builder_names,
    finis_terrae,
    load_cluster,
    save_cluster,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="servet",
        description="Servet benchmark suite (simulated-substrate reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list built-in machine models")

    run = sub.add_parser("run", help="run the full suite on a machine model")
    run.add_argument(
        "--machine",
        default="dunnington",
        help=f"one of: {', '.join(builder_names())}",
    )
    run.add_argument(
        "--machine-file",
        default=None,
        help="JSON cluster description (see 'servet export-machine'); "
        "overrides --machine",
    )
    run.add_argument(
        "--nodes",
        type=int,
        default=1,
        help="number of cluster nodes (finis_terrae only; default 1)",
    )
    run.add_argument("--seed", type=int, default=42, help="measurement RNG seed")
    run.add_argument(
        "--noise", type=float, default=0.01, help="relative measurement noise"
    )
    run.add_argument(
        "-o", "--output", default=None, help="write the JSON report here"
    )
    run.add_argument(
        "--lenient",
        action="store_true",
        help="degrade gracefully on phase failures (record them in the "
        "report) instead of aborting the run",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="serialize partial suite state here after every phase",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint instead of re-measuring finished "
        "phases",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="harden measurements: retry each up to N times with "
        "exponential backoff (charged to virtual time)",
    )
    run.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="K",
        help="harden measurements: combine K repeated samples with a "
        "median (outlier rejection)",
    )
    run.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="inject deterministic faults from a JSON fault plan "
        "(resilience drill; see repro.resilience.FaultPlan)",
    )
    run.add_argument(
        "--prune",
        choices=list(PRUNE_MODES),
        default="off",
        help="symmetry-prune pairwise measurements: measure one "
        "representative per topology-equivalence class ('topology'), "
        "additionally spot-check each class ('verify'), or measure "
        "every pair ('off', the default)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N independent measurements concurrently on "
        "wall-clock-bound backends (simulated backends always run "
        "serially to stay deterministic)",
    )

    rep = sub.add_parser("report", help="pretty-print a stored report")
    rep.add_argument("path", help="JSON report produced by 'servet run'")

    adv = sub.add_parser("advise", help="sample autotuning answers for a report")
    adv.add_argument("path", help="JSON report produced by 'servet run'")
    adv.add_argument(
        "--matmul-elem", type=int, default=8, help="matrix element size in bytes"
    )

    val = sub.add_parser(
        "validate",
        help="compare a report against a built-in machine's ground truth "
        "(repository CI helper)",
    )
    val.add_argument("path", help="JSON report produced by 'servet run'")
    val.add_argument(
        "--machine",
        required=True,
        help=f"one of: {', '.join(builder_names())}",
    )

    exp = sub.add_parser(
        "export-machine",
        help="write a built-in machine's JSON description (a template for "
        "describing your own system)",
    )
    exp.add_argument("machine", help=f"one of: {', '.join(builder_names())}")
    exp.add_argument("-o", "--output", required=True, help="output JSON path")
    exp.add_argument(
        "--nodes", type=int, default=1, help="number of cluster nodes"
    )
    return parser


def _cmd_machines() -> int:
    for name in builder_names():
        machine = build_machine(name)
        print(machine.summary())
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    comm_config = None
    if args.machine_file is not None:
        system, comm_config = load_cluster(args.machine_file)
    elif args.machine == "finis_terrae" and args.nodes > 1:
        system = finis_terrae(args.nodes)
    else:
        if args.nodes > 1:
            print(
                f"note: --nodes ignored for {args.machine} (single-node model)",
                file=sys.stderr,
            )
        system = build_machine(args.machine)
    backend = SimulatedBackend(
        system, comm_config=comm_config, seed=args.seed, noise=args.noise
    )
    if args.fault_plan is not None:
        backend = FaultInjectingBackend(backend, FaultPlan.load(args.fault_plan))
    if args.retries is not None or args.samples is not None:
        default = ResiliencePolicy.default()
        policy = ResiliencePolicy(
            retry=(
                RetryPolicy(max_attempts=args.retries)
                if args.retries is not None
                else default.retry
            ),
            sampling=(
                SamplingPolicy(samples=args.samples)
                if args.samples is not None
                else default.sampling
            ),
        )
        backend = HardenedBackend(backend, policy)
    if args.resume and args.checkpoint is None:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    report = ServetSuite(backend, jobs=args.jobs, prune=args.prune).run(
        strict=not args.lenient,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    print(report.summary())
    if report.degraded:
        print(
            "\nWARNING: degraded run — phases "
            + ", ".join(
                f"{p}={s}"
                for p, s in report.phase_status.items()
                if s != "ok"
            ),
            file=sys.stderr,
        )
    if args.output:
        report.save(args.output)
        print(f"\nreport written to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(ServetReport.load(args.path).summary())
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    advisor = Advisor.from_file(args.path)
    report = advisor.report
    print(f"Autotuning advice for {report.system}:")
    plan = advisor.matmul_tiles(elem_size=args.matmul_elem)
    for level, side in sorted(plan.sides.items()):
        print(f"  matmul tile for L{level}: {side} x {side}")
    if report.memory_levels:
        k = advisor.max_useful_streaming_cores()
        group = report.memory_levels[0].groups[0] if report.memory_levels[0].groups else []
        print(
            f"  streaming cores worth using in group {group}: {k}"
        )
    for layer in report.comm_layers:
        advice = None
        if layer.pairs:
            a, b = layer.pairs[0]
            advice = advisor.should_aggregate(a, b, 16, 4096)
        if advice is not None:
            verb = "aggregate" if advice.aggregate else "send separately"
            print(
                f"  layer {layer.index}: 16 x 4KB messages -> {verb} "
                f"(speedup {advice.speedup:.2f}x)"
            )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    report = ServetReport.load(args.path)
    machine = build_machine(args.machine)
    failures: list[str] = []

    if report.cache_sizes != list(machine.cache_sizes):
        failures.append(
            f"cache sizes: detected {report.cache_sizes}, "
            f"truth {list(machine.cache_sizes)}"
        )
    for cache in report.caches:
        try:
            truth_pairs = set(machine.shared_level_pairs(cache.level))
        except ReproError:
            truth_pairs = set()
        got_pairs = set(cache.shared_pairs)
        if got_pairs != truth_pairs:
            failures.append(
                f"L{cache.level} sharing: detected {len(got_pairs)} pairs, "
                f"truth {len(truth_pairs)}"
            )
    if report.comm_layers:
        # Layer count check only makes sense for single-node reports of
        # this machine; cluster reports carry an inter-node layer too.
        pass

    if failures:
        print(f"VALIDATION FAILED for {report.system} vs {machine.name}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"validation OK: {report.system} report matches {machine.name} "
        f"ground truth ({len(report.caches)} cache levels, "
        f"{len(report.comm_layers)} comm layers)"
    )
    return 0


def _cmd_export_machine(args: argparse.Namespace) -> int:
    if args.machine == "finis_terrae" and args.nodes > 1:
        cluster = finis_terrae(args.nodes)
    else:
        machine = build_machine(args.machine)
        cluster = Cluster(machine.name, machine, n_nodes=1)
    save_cluster(cluster, args.output, comm=default_comm_config(cluster))
    print(f"machine description written to {args.output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "machines":
            return _cmd_machines()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "advise":
            return _cmd_advise(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "export-machine":
            return _cmd_export_machine(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
