"""Virtual-to-physical page placement policies.

Physically indexed caches (L2/L3) derive their set index from the
*physical* address, so the OS page-placement policy decides which cache
sets a contiguous virtual array can use.  Servet's probabilistic cache
size algorithm exists precisely because Linux places pages (from the
cache's perspective) randomly; this module implements that policy plus
the two alternatives the paper discusses:

- :class:`RandomPaging` — uniformly random distinct physical pages
  (Linux-like; produces the binomial conflict statistics of Fig. 3).
- :class:`ColoredPaging` — physical page color equals virtual page
  color (Solaris-style page coloring; makes physically indexed caches
  behave like virtually indexed ones, the "single array size peak" case
  of Fig. 4).
- :class:`ContiguousPaging` — physically contiguous allocation (the
  superpage trick of Yotov et al. that the paper criticizes as
  non-portable).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..units import is_power_of_two


class PagePolicy(abc.ABC):
    """Strategy mapping virtual page numbers to physical page numbers."""

    #: Total number of physical pages available for placement.
    def __init__(self, physical_pages: int = 1 << 20) -> None:
        if physical_pages <= 0:
            raise ConfigurationError("physical_pages must be positive")
        self.physical_pages = physical_pages

    @abc.abstractmethod
    def place(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        """Physical page numbers for virtual pages ``0..n_pages-1``.

        The result must contain ``n_pages`` *distinct* physical pages
        (an OS never double-maps a private anonymous region).
        """

    def _check(self, n_pages: int) -> None:
        if n_pages <= 0:
            raise SimulationError("an allocation needs at least one page")
        if n_pages > self.physical_pages:
            raise SimulationError(
                f"cannot place {n_pages} pages in a machine with "
                f"{self.physical_pages} physical pages"
            )


class RandomPaging(PagePolicy):
    """Uniformly random distinct physical pages (no page coloring)."""

    def place(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n_pages)
        # Floyd-like sampling via choice without replacement; for the
        # page counts used here (<= a few thousand out of ~1M) this is
        # both uniform and fast.
        return rng.choice(self.physical_pages, size=n_pages, replace=False)


class ColoredPaging(PagePolicy):
    """Page coloring: physical color == virtual color.

    ``n_colors`` is the number of page colors the OS maintains (in
    reality derived from the largest cache).  Within a color, page
    frames are chosen randomly; across colors, the virtual color is
    preserved, which keeps a contiguous virtual array conflict-free in a
    physically indexed cache of at most ``n_colors`` page sets per way.
    """

    def __init__(self, n_colors: int, physical_pages: int = 1 << 20) -> None:
        super().__init__(physical_pages)
        if n_colors <= 0 or physical_pages % n_colors != 0:
            raise ConfigurationError(
                f"n_colors={n_colors} must be positive and divide physical_pages"
            )
        self.n_colors = n_colors

    def place(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n_pages)
        frames_per_color = self.physical_pages // self.n_colors
        vpages = np.arange(n_pages)
        colors = vpages % self.n_colors
        # Choose a distinct random frame index (within the color) per page.
        needed = int(np.ceil(n_pages / self.n_colors))
        if needed > frames_per_color:
            raise SimulationError("not enough frames of each color")
        out = np.empty(n_pages, dtype=np.int64)
        for color in np.unique(colors):
            mask = colors == color
            frames = rng.choice(frames_per_color, size=int(mask.sum()), replace=False)
            out[mask] = frames * self.n_colors + color
        return out


class ContiguousPaging(PagePolicy):
    """Physically contiguous placement starting at a random base frame."""

    def place(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n_pages)
        base = int(rng.integers(0, self.physical_pages - n_pages + 1))
        return base + np.arange(n_pages)


class AddressSpace:
    """One process's view of memory: page size + placement for an array.

    Translates virtual byte addresses of a single contiguous allocation
    (based at virtual address 0) to physical line numbers.
    """

    def __init__(
        self,
        page_size: int,
        policy: PagePolicy,
        array_bytes: int,
        rng: np.random.Generator,
    ) -> None:
        if not is_power_of_two(page_size):
            raise ConfigurationError(f"page size {page_size} not a power of two")
        if array_bytes <= 0:
            raise ConfigurationError("array_bytes must be positive")
        self.page_size = page_size
        self.array_bytes = array_bytes
        n_pages = -(-array_bytes // page_size)  # ceil
        self.page_table = np.asarray(policy.place(n_pages, rng), dtype=np.int64)
        if len(np.unique(self.page_table)) != n_pages:
            raise SimulationError("page policy produced duplicate physical pages")

    @property
    def n_pages(self) -> int:
        """Number of pages backing the allocation."""
        return len(self.page_table)

    def physical_lines(self, vaddrs: np.ndarray, line_size: int) -> np.ndarray:
        """Physical line numbers for virtual byte addresses ``vaddrs``."""
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        if vaddrs.size and (vaddrs.min() < 0 or vaddrs.max() >= self.array_bytes):
            raise SimulationError("virtual address outside the allocation")
        vpage = vaddrs // self.page_size
        offset = vaddrs % self.page_size
        lines_per_page = self.page_size // line_size
        return self.page_table[vpage] * lines_per_page + offset // line_size

    def virtual_lines(self, vaddrs: np.ndarray, line_size: int) -> np.ndarray:
        """Virtual line numbers (used by virtually indexed caches)."""
        return np.asarray(vaddrs, dtype=np.int64) // line_size
