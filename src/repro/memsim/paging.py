"""Virtual-to-physical page placement policies.

Physically indexed caches (L2/L3) derive their set index from the
*physical* address, so the OS page-placement policy decides which cache
sets a contiguous virtual array can use.  Servet's probabilistic cache
size algorithm exists precisely because Linux places pages (from the
cache's perspective) randomly; this module implements that policy plus
the two alternatives the paper discusses:

- :class:`RandomPaging` — uniformly random distinct physical pages
  (Linux-like; produces the binomial conflict statistics of Fig. 3).
- :class:`ColoredPaging` — physical page color equals virtual page
  color (Solaris-style page coloring; makes physically indexed caches
  behave like virtually indexed ones, the "single array size peak" case
  of Fig. 4).
- :class:`ContiguousPaging` — physically contiguous allocation (the
  superpage trick of Yotov et al. that the paper criticizes as
  non-portable).
"""

from __future__ import annotations

import abc
import threading
from collections import OrderedDict

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..units import is_power_of_two


class PagePolicy(abc.ABC):
    """Strategy mapping virtual page numbers to physical page numbers."""

    #: True when :meth:`place` is guaranteed (by construction, not by
    #: luck) to return distinct physical pages.  The built-in policies
    #: all qualify, so :class:`AddressSpace` skips its duplicate-frame
    #: check for them; user-supplied policies default to False and stay
    #: checked.
    guarantees_distinct_frames: bool = False

    #: Total number of physical pages available for placement.
    def __init__(self, physical_pages: int = 1 << 20) -> None:
        if physical_pages <= 0:
            raise ConfigurationError("physical_pages must be positive")
        self.physical_pages = physical_pages

    @abc.abstractmethod
    def place(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        """Physical page numbers for virtual pages ``0..n_pages-1``.

        The result must contain ``n_pages`` *distinct* physical pages
        (an OS never double-maps a private anonymous region).
        """

    def cache_token(self) -> tuple | None:
        """Hashable value identity for placement caching, or None.

        Two policies with equal tokens must produce identical
        placements from identical RNG streams.  ``None`` (the default
        for user-defined policies) opts out of both the page-table
        cache and the traversal outcome cache — a custom policy may be
        stateful, so memoizing its output would be unsound.
        """
        return None

    def _check(self, n_pages: int) -> None:
        if n_pages <= 0:
            raise SimulationError("an allocation needs at least one page")
        if n_pages > self.physical_pages:
            raise SimulationError(
                f"cannot place {n_pages} pages in a machine with "
                f"{self.physical_pages} physical pages"
            )


class RandomPaging(PagePolicy):
    """Uniformly random distinct physical pages (no page coloring)."""

    guarantees_distinct_frames = True

    def place(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n_pages)
        # Floyd-like sampling via choice without replacement; for the
        # page counts used here (<= a few thousand out of ~1M) this is
        # both uniform and fast.
        return rng.choice(self.physical_pages, size=n_pages, replace=False)

    def cache_token(self) -> tuple:
        return ("random", self.physical_pages)


class ColoredPaging(PagePolicy):
    """Page coloring: physical color == virtual color.

    ``n_colors`` is the number of page colors the OS maintains (in
    reality derived from the largest cache).  Within a color, page
    frames are chosen randomly; across colors, the virtual color is
    preserved, which keeps a contiguous virtual array conflict-free in a
    physically indexed cache of at most ``n_colors`` page sets per way.
    """

    guarantees_distinct_frames = True

    def __init__(self, n_colors: int, physical_pages: int = 1 << 20) -> None:
        super().__init__(physical_pages)
        if n_colors <= 0 or physical_pages % n_colors != 0:
            raise ConfigurationError(
                f"n_colors={n_colors} must be positive and divide physical_pages"
            )
        self.n_colors = n_colors

    def cache_token(self) -> tuple:
        return ("colored", self.n_colors, self.physical_pages)

    def place(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n_pages)
        frames_per_color = self.physical_pages // self.n_colors
        vpages = np.arange(n_pages)
        colors = vpages % self.n_colors
        # Choose a distinct random frame index (within the color) per page.
        needed = int(np.ceil(n_pages / self.n_colors))
        if needed > frames_per_color:
            raise SimulationError("not enough frames of each color")
        out = np.empty(n_pages, dtype=np.int64)
        for color in np.unique(colors):
            mask = colors == color
            frames = rng.choice(frames_per_color, size=int(mask.sum()), replace=False)
            out[mask] = frames * self.n_colors + color
        return out


class ContiguousPaging(PagePolicy):
    """Physically contiguous placement starting at a random base frame."""

    guarantees_distinct_frames = True

    def place(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n_pages)
        base = int(rng.integers(0, self.physical_pages - n_pages + 1))
        return base + np.arange(n_pages)

    def cache_token(self) -> tuple:
        return ("contiguous", self.physical_pages)


def _has_duplicates(frames: np.ndarray) -> bool:
    """O(n) duplicate test for small non-negative frame vectors.

    ``np.unique`` sorts (and was the single most expensive operation of
    the whole simulator, profiled); a bincount over the frame values
    present answers the same question in one linear pass.  Falls back
    to a set for frame spaces too large to bincount densely.
    """
    if frames.size < 2:
        return False
    lo = int(frames.min())
    hi = int(frames.max())
    if hi - lo + 1 <= max(4 * frames.size, 4096):
        return bool(np.bincount(frames - lo).max() > 1)
    return len(set(frames.tolist())) != frames.size


class AddressSpace:
    """One process's view of memory: page size + placement for an array.

    Translates virtual byte addresses of a single contiguous allocation
    (based at virtual address 0) to physical line numbers.

    ``validate`` controls the duplicate-frame check on the policy's
    placement.  The built-in policies cannot produce duplicates by
    construction (:attr:`PagePolicy.guarantees_distinct_frames`), so
    the check defaults to running only for user-supplied policies;
    pass ``validate=True`` to force it (debugging a policy).
    """

    def __init__(
        self,
        page_size: int,
        policy: PagePolicy,
        array_bytes: int,
        rng: np.random.Generator,
        validate: bool | None = None,
    ) -> None:
        if not is_power_of_two(page_size):
            raise ConfigurationError(f"page size {page_size} not a power of two")
        if array_bytes <= 0:
            raise ConfigurationError("array_bytes must be positive")
        self.page_size = page_size
        self.array_bytes = array_bytes
        n_pages = -(-array_bytes // page_size)  # ceil
        self.page_table = np.asarray(policy.place(n_pages, rng), dtype=np.int64)
        if validate is None:
            validate = not policy.guarantees_distinct_frames
        if validate and _has_duplicates(self.page_table):
            raise SimulationError("page policy produced duplicate physical pages")

    #: Bound on distinct shared page tables kept alive process-wide.
    SHARED_MAX_ENTRIES = 8192

    _shared: OrderedDict[tuple, "AddressSpace"] = OrderedDict()
    _shared_lock = threading.Lock()

    @classmethod
    def shared(
        cls,
        page_size: int,
        policy: PagePolicy,
        array_bytes: int,
        rng: np.random.Generator,
    ) -> "AddressSpace":
        """A process-wide shared space for ``(policy, array_bytes, stream)``.

        The placement a policy draws is a pure function of its
        :meth:`~PagePolicy.cache_token` and the identity of the stream
        ``rng`` — so two calls with equal tokens and equal stream
        identities would build byte-identical page tables.  This
        constructor answers such repeats from a bounded LRU instead of
        re-drawing.  On a hit the ``rng`` is *not* consumed; callers
        must therefore pass a dedicated child generator they would
        discard anyway (as :meth:`TraversalEngine.run` does).  Policies
        whose token is ``None`` and generators without an inspectable
        seed sequence fall back to a fresh private construction.

        Shared instances have a read-only ``page_table``.
        """
        from .outcome import stream_identity

        token = policy.cache_token()
        identity = stream_identity(rng) if token is not None else None
        if identity is None:
            return cls(page_size, policy, array_bytes, rng)
        key = (token, page_size, array_bytes, identity)
        with cls._shared_lock:
            space = cls._shared.get(key)
            if space is not None:
                cls._shared.move_to_end(key)
                return space
        space = cls(page_size, policy, array_bytes, rng)
        space.page_table.setflags(write=False)
        with cls._shared_lock:
            cls._shared[key] = space
            cls._shared.move_to_end(key)
            while len(cls._shared) > cls.SHARED_MAX_ENTRIES:
                cls._shared.popitem(last=False)
        return space

    @classmethod
    def clear_shared(cls) -> None:
        """Drop the shared page-table cache (tests and benches)."""
        with cls._shared_lock:
            cls._shared.clear()

    @property
    def n_pages(self) -> int:
        """Number of pages backing the allocation."""
        return len(self.page_table)

    def physical_lines(self, vaddrs: np.ndarray, line_size: int) -> np.ndarray:
        """Physical line numbers for virtual byte addresses ``vaddrs``."""
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        if vaddrs.size and (vaddrs.min() < 0 or vaddrs.max() >= self.array_bytes):
            raise SimulationError("virtual address outside the allocation")
        vpage = vaddrs // self.page_size
        offset = vaddrs % self.page_size
        lines_per_page = self.page_size // line_size
        return self.page_table[vpage] * lines_per_page + offset // line_size

    def virtual_lines(self, vaddrs: np.ndarray, line_size: int) -> np.ndarray:
        """Virtual line numbers (used by virtually indexed caches)."""
        return np.asarray(vaddrs, dtype=np.int64) // line_size
