"""Analytic cache-cost model of blocked matrix multiplication.

Used to *validate* the tiling advice derived from a Servet report: for
a given machine (ground truth) and tile side ``b``, estimate the cache
lines fetched by a blocked ``n x n`` matmul.  Two effects shape the
curve over ``b``:

- **traffic**: each of the ``(n/b)^3`` block interactions streams two
  ``b x b`` blocks, so bigger tiles amortize refetches
  (``~ 2 n^3 / b`` elements touched);
- **conflicts/capacity**: the three resident blocks must survive in the
  target cache between reuses; under random page placement their pages
  collide in page colors exactly as in the Fig. 3 binomial model, so
  the *effective* reuse probability of a cached block line is
  ``1 - P(B(NP-1, p) >= K)`` with ``NP`` the pages of the working set.

The result is the classic U-shape: tiny tiles waste bandwidth, tiles
near the cache capacity thrash, and the sweet spot sits around half
the capacity — which is precisely what the advisor's
``fill_fraction = 0.5`` rule targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..topology.cache import CacheLevel, Indexing
from ..topology.machine import Machine


@dataclass
class MatmulCostEstimate:
    """Estimated cost of one blocked matmul configuration."""

    n: int
    tile: int
    #: Cache lines fetched from beyond the target level (the quantity
    #: tiling minimizes).
    lines_fetched: float
    #: Expected steady-state conflict-miss rate of the tile working set.
    working_set_miss_rate: float


def blocked_matmul_cost(
    machine: Machine,
    n: int,
    tile: int,
    level: int = 2,
    elem_size: int = 8,
) -> MatmulCostEstimate:
    """Estimate beyond-``level`` line fetches of a blocked n x n matmul.

    ``tile`` is the square block side.  The model counts the element
    traffic of the blocking analysis and inflates the reuse-dependent
    part by the working set's conflict-miss probability in the target
    cache (binomial page-color model for physically indexed caches,
    pure capacity rule for virtually indexed ones).
    """
    if n <= 0 or tile <= 0:
        raise ConfigurationError("n and tile must be positive")
    if elem_size <= 0:
        raise ConfigurationError("elem_size must be positive")
    tile = min(tile, n)
    cache: CacheLevel = machine.level(level)
    spec = cache.spec
    line_elems = max(spec.line_size // elem_size, 1)

    # Working set: three b x b blocks.
    ws_bytes = 3 * tile * tile * elem_size
    if ws_bytes > spec.size:
        # Pure capacity overflow: no reuse survives.
        miss_rate = 1.0
    elif spec.indexing is Indexing.VIRTUAL:
        miss_rate = 0.0
    else:
        # Imported here: repro.core depends on repro.memsim at package
        # level, so the reverse edge must stay function-local.
        from ..core.probabilistic import predicted_miss_rate

        n_pages = max(ws_bytes // machine.page_size, 1)
        colors = spec.page_colors(machine.page_size)
        miss_rate = float(
            predicted_miss_rate(
                np.array([n_pages], dtype=np.float64), spec.ways, 1.0 / colors
            )[0]
        )

    blocks = (n + tile - 1) // tile
    # Per block interaction (b^3 multiply-adds): the A and B blocks are
    # loaded once (2 b^2 compulsory elements) and then *reused* b-1
    # more times each; a reuse only hits if the line survived in the
    # working set, so each of the ~2 b^2 (b-1) reuse touches refetches
    # its line with the conflict/capacity miss probability.  The C
    # block is resident across the k loop and contributes like one
    # more reused block.
    compulsory_elems = 2.0 * blocks**3 * tile * tile
    reuse_touches = blocks**3 * (2.0 * tile * tile * (tile - 1) + tile * tile)
    refetched = compulsory_elems + reuse_touches * miss_rate
    # Within a block, consecutive elements share lines.
    lines = refetched / line_elems
    return MatmulCostEstimate(
        n=n,
        tile=tile,
        lines_fetched=lines,
        working_set_miss_rate=miss_rate,
    )


def tile_sweep(
    machine: Machine,
    n: int,
    tiles: list[int],
    level: int = 2,
    elem_size: int = 8,
) -> list[MatmulCostEstimate]:
    """Cost estimates over a list of candidate tile sides."""
    return [
        blocked_matmul_cost(machine, n, tile, level=level, elem_size=elem_size)
        for tile in tiles
    ]


def best_tile(
    machine: Machine,
    n: int,
    tiles: list[int],
    level: int = 2,
    elem_size: int = 8,
) -> int:
    """Tile side minimizing the estimated line fetches (oracle answer)."""
    sweep = tile_sweep(machine, n, tiles, level=level, elem_size=elem_size)
    return min(sweep, key=lambda e: e.lines_fetched).tile
