"""Max-min fair bandwidth allocation over a domain tree.

Concurrent memory accesses share buses, cell controllers and the node
memory system.  The substrate models each as a capacity constraint in a
tree (:class:`repro.topology.machine.BandwidthDomain`) and splits
bandwidth by *progressive filling* (max-min fairness): every active
core's rate grows uniformly until a constraint saturates; cores behind a
saturated constraint freeze; the rest keep growing.

This reproduces the Finis Terrae structure of Fig. 9: a bus-sharing pair
saturates the bus first (big drop), a same-cell pair saturates the cell
controller (a ~25 % drop), and a cross-cell pair shares nothing and
keeps the isolated-core bandwidth.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..errors import ConfigurationError
from ..topology.machine import BandwidthDomain

_EPS = 1e-9


def allocate_bandwidth(
    root: BandwidthDomain,
    demands: Mapping[int, float],
) -> dict[int, float]:
    """Max-min fair allocation of ``demands`` under the domain tree.

    Parameters
    ----------
    root:
        Root of the bandwidth-domain tree.
    demands:
        Per-core demanded bandwidth (bytes/s); cores absent from the
        mapping are inactive.

    Returns
    -------
    dict mapping each demanding core to its allocated bandwidth.  The
    allocation satisfies every domain capacity and is max-min fair:
    no core's rate can grow without shrinking an equal-or-slower core.
    """
    for core, demand in demands.items():
        if demand <= 0:
            raise ConfigurationError(f"core {core}: demand must be positive")
        if core not in root.cores:
            raise ConfigurationError(f"core {core} not covered by domain tree")

    domains = list(root.walk())
    members: list[list[int]] = [
        [c for c in demands if c in d.cores] for d in domains
    ]
    alloc = {core: 0.0 for core in demands}
    frozen: set[int] = set()

    while len(frozen) < len(alloc):
        # Largest uniform increment every unfrozen core can take before
        # some constraint (domain capacity or its own demand) binds.
        best = float("inf")
        for d, mem in zip(domains, members):
            unfrozen = [c for c in mem if c not in frozen]
            if not unfrozen:
                continue
            slack = d.capacity - sum(alloc[c] for c in mem)
            best = min(best, slack / len(unfrozen))
        for core in alloc:
            if core not in frozen:
                best = min(best, demands[core] - alloc[core])
        if best == float("inf"):
            break
        best = max(best, 0.0)
        for core in alloc:
            if core not in frozen:
                alloc[core] += best
        # Freeze cores behind any now-saturated constraint.
        for d, mem in zip(domains, members):
            slack = d.capacity - sum(alloc[c] for c in mem)
            if slack <= _EPS * max(d.capacity, 1.0):
                frozen.update(c for c in mem if c not in frozen)
        for core in alloc:
            if core not in frozen and demands[core] - alloc[core] <= _EPS * demands[core]:
                frozen.add(core)
    return alloc


def effective_bandwidth_curve(
    root: BandwidthDomain,
    cores: Sequence[int],
    demand: float,
) -> list[float]:
    """Per-core bandwidth of ``cores[0]`` as group members activate.

    Entry ``k`` (0-based) is the bandwidth core ``cores[0]`` achieves
    when cores ``cores[0..k]`` access memory concurrently — the curves
    of Fig. 9(b).
    """
    if not cores:
        raise ConfigurationError("need at least one core")
    curve: list[float] = []
    for k in range(1, len(cores) + 1):
        alloc = allocate_bandwidth(root, {c: demand for c in cores[:k]})
        curve.append(alloc[cores[0]])
    return curve
