"""Memory-hierarchy simulator.

The substrate that replaces real hardware (see DESIGN.md §2): explicit
set-associative caches with LRU replacement, virtual/physical set
indexing under configurable page-placement policies, a stride-prefetcher
model, an analytic steady-state traversal engine for mcalibrator-style
workloads (single-core and concurrent), and a max-min fair bandwidth
allocator over the machine's bandwidth-domain tree.
"""

from .cache import SetAssociativeCache, MultiLevelSimulator, TraceAccess
from .outcome import (
    GLOBAL_COMM_CACHE,
    GLOBAL_OUTCOME_CACHE,
    TraversalOutcomeCache,
    clear_global_cache,
    stream_identity,
)
from .paging import (
    PagePolicy,
    RandomPaging,
    ColoredPaging,
    ContiguousPaging,
    AddressSpace,
)
from .prefetch import PrefetchModel
from .tlb import TLBSpec
from .traversal import (
    Traversal,
    TraversalEngine,
    TraversalResult,
    strided_addresses,
)
from .bandwidth import allocate_bandwidth, effective_bandwidth_curve
from .matmul import (
    MatmulCostEstimate,
    best_tile,
    blocked_matmul_cost,
    tile_sweep,
)
from .stream import stream_copy_bandwidth

__all__ = [
    "GLOBAL_COMM_CACHE",
    "GLOBAL_OUTCOME_CACHE",
    "TraversalOutcomeCache",
    "clear_global_cache",
    "stream_identity",
    "SetAssociativeCache",
    "MultiLevelSimulator",
    "TraceAccess",
    "PagePolicy",
    "RandomPaging",
    "ColoredPaging",
    "ContiguousPaging",
    "AddressSpace",
    "PrefetchModel",
    "TLBSpec",
    "Traversal",
    "TraversalEngine",
    "TraversalResult",
    "strided_addresses",
    "allocate_bandwidth",
    "MatmulCostEstimate",
    "best_tile",
    "blocked_matmul_cost",
    "tile_sweep",
    "effective_bandwidth_curve",
    "stream_copy_bandwidth",
]
