"""STREAM-style copy bandwidth measurement on the simulated machine.

Servet's memory-overhead benchmark (Fig. 6) measures the bandwidth of
copying one array into another, with both arrays too large for any
cache, on one isolated core and then on pairs/groups of concurrent
cores.  On the substrate that is exactly the max-min fair allocation of
each core's streaming demand through the bandwidth-domain tree, with a
sanity check that the arrays really exceed the largest cache.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import MeasurementError
from ..topology.machine import Machine
from .bandwidth import allocate_bandwidth


def stream_copy_bandwidth(
    machine: Machine,
    cores: Sequence[int],
    array_bytes: int | None = None,
) -> dict[int, float]:
    """Copy bandwidth (bytes/s) per core with ``cores`` running concurrently.

    ``array_bytes`` defaults to four times the largest cache, matching
    STREAM's rule that the working set must defeat every cache level.
    Passing a cache-fitting size raises :class:`MeasurementError` — a
    benchmark bug the real suite would silently mismeasure.
    """
    if not cores:
        raise MeasurementError("need at least one active core")
    if len(set(cores)) != len(cores):
        raise MeasurementError("duplicate cores in concurrent stream run")
    largest_cache = machine.levels[-1].spec.size
    if array_bytes is None:
        array_bytes = 4 * largest_cache
    # Copy reads one array and writes another: 2x array_bytes of traffic.
    if 2 * array_bytes <= 2 * largest_cache:
        raise MeasurementError(
            f"stream arrays of {array_bytes} bytes fit in the "
            f"{largest_cache}-byte last-level cache; bandwidth would be bogus"
        )
    for core in cores:
        if not (0 <= core < machine.n_cores):
            raise MeasurementError(f"core {core} out of range for {machine.name}")
    demands = {core: machine.core_stream_bw for core in cores}
    return allocate_bandwidth(machine.bandwidth_root, demands)
