"""TLB model (extension).

The cache-measurement methodology Servet builds on (Saavedra & Smith,
the paper's ref. [15]) measures the TLB alongside the caches.  The
paper itself leaves the TLB alone — its 1 KB stride touches four lines
per page, so TLB pressure only appears for arrays far beyond the caches
— but the substrate supports it as an extension: machines may carry a
:class:`TLBSpec`, the traversal engine charges page-walk penalties, and
:mod:`repro.core.tlb` detects the entry count the same way mcalibrator
detects cache sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import is_power_of_two


@dataclass(frozen=True)
class TLBSpec:
    """A translation lookaside buffer.

    Parameters
    ----------
    entries:
        Total number of page translations held.
    ways:
        Associativity; defaults to fully associative (``ways == entries``),
        the common design for small TLBs.
    walk_cycles:
        Penalty of a page-table walk on a TLB miss.
    """

    entries: int
    ways: int | None = None
    walk_cycles: float = 30.0

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("TLB needs a positive entry count")
        ways = self.entries if self.ways is None else self.ways
        if ways <= 0 or self.entries % ways != 0:
            raise ConfigurationError(
                f"TLB ways {ways} must divide entries {self.entries}"
            )
        if not is_power_of_two(self.entries // ways):
            raise ConfigurationError("TLB set count must be a power of two")
        if self.walk_cycles < 0:
            raise ConfigurationError("walk_cycles must be non-negative")

    @property
    def effective_ways(self) -> int:
        """Associativity with the fully-associative default resolved."""
        return self.entries if self.ways is None else self.ways

    @property
    def num_sets(self) -> int:
        """Number of TLB sets."""
        return self.entries // self.effective_ways
