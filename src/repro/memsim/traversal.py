"""Analytic steady-state traversal engine.

Servet's measurement workloads are *cyclic*: every traversal touches a
fixed set of lines over and over in the same order.  Under LRU that has
a crisp steady state:

    A cache set holding at most `ways` distinct lines of the cycle hits
    on every revisit; a set holding more thrashes and misses every time.

(The classic LRU pathology: with a cyclic reference string of w > K
distinct lines in one K-way set, the line needed next is always the one
evicted longest ago.)  This lets the engine compute exact steady-state
miss patterns with vectorized ``bincount`` passes — no per-access
simulation — while remaining provably equal to the explicit simulator of
:mod:`repro.memsim.cache` (see the property tests).

Concurrency is modelled as lockstep interleaving (the paper runs the
mcalibrator instances "in parallel" pinned to two cores): for a shared
cache instance the per-set load is the union of the members' active
lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..errors import MeasurementError
from ..rng import ensure_rng, spawn
from ..topology.cache import Indexing
from ..topology.machine import Machine
from .paging import AddressSpace, PagePolicy, RandomPaging
from .prefetch import PrefetchModel


def strided_addresses(array_bytes: int, stride: int) -> np.ndarray:
    """Virtual byte addresses touched by an mcalibrator-style traversal.

    One access per ``stride`` bytes starting at 0 — the access pattern
    of the Fig. 1 inner loop (``j = j + A[j]`` with every ``A[j]`` equal
    to the stride).
    """
    if stride <= 0:
        raise MeasurementError(f"stride must be positive, got {stride}")
    if array_bytes <= 0:
        raise MeasurementError(f"array size must be positive, got {array_bytes}")
    return np.arange(0, array_bytes, stride, dtype=np.int64)


@lru_cache(maxsize=256)
def _strided_addresses_shared(array_bytes: int, stride: int) -> np.ndarray:
    """Memoized, read-only address vector for one ``(size, stride)``.

    The engine evaluates the same traversal geometry many times per
    suite run (``run`` and ``_tlb_cycles_per_access`` for every probe,
    repeat-sampling, every pair of a pairwise stage); the address
    vector depends only on ``(array_bytes, stride)``, so share one
    immutable copy instead of rebuilding it per call.
    """
    addresses = strided_addresses(array_bytes, stride)
    addresses.setflags(write=False)
    return addresses


@dataclass(frozen=True)
class Traversal:
    """One core's traversal workload: an array and a stride."""

    core: int
    array_bytes: int
    stride: int


@dataclass
class TraversalResult:
    """Steady-state outcome of a (possibly concurrent) traversal run."""

    #: Average cycles per access, per core.
    cycles_per_access: dict[int, float]
    #: Per core, fraction of its accesses that *missed* each level
    #: (denominator = the core's total accesses, so values telescope).
    miss_fraction: dict[int, list[float]]
    #: Number of distinct accesses per revolution, per core.
    n_accesses: dict[int, int]
    #: Simulated wall time of one measured revolution, per core (seconds).
    seconds_per_round: dict[int, float] = field(default_factory=dict)


class TraversalEngine:
    """Computes steady-state traversal costs on a machine model.

    Parameters
    ----------
    machine:
        The hardware model (cache levels, latencies, page size).
    paging:
        Page-placement policy; defaults to Linux-like random placement,
        the case Servet's probabilistic algorithm targets.
    prefetch:
        Hardware prefetcher model (engages only for small strides).
    """

    def __init__(
        self,
        machine: Machine,
        paging: PagePolicy | None = None,
        prefetch: PrefetchModel | None = None,
    ) -> None:
        self.machine = machine
        self.paging = paging if paging is not None else RandomPaging()
        self.prefetch = prefetch if prefetch is not None else PrefetchModel()

    def run(
        self,
        traversals: list[Traversal],
        rng: np.random.Generator | int | None = None,
    ) -> TraversalResult:
        """Run the traversals concurrently and return steady-state costs."""
        if not traversals:
            raise MeasurementError("need at least one traversal")
        cores = [t.core for t in traversals]
        if len(set(cores)) != len(cores):
            raise MeasurementError("one traversal per core at most")
        for t in traversals:
            if not (0 <= t.core < self.machine.n_cores):
                raise MeasurementError(
                    f"core {t.core} out of range for {self.machine.name}"
                )
        rng = ensure_rng(rng)
        child_rngs = spawn(rng, len(traversals))

        machine = self.machine
        vlines: dict[int, np.ndarray] = {}
        plines: dict[int, np.ndarray] = {}
        active: dict[int, np.ndarray] = {}
        cost: dict[int, np.ndarray] = {}
        for t, crng in zip(traversals, child_rngs):
            vaddrs = _strided_addresses_shared(t.array_bytes, t.stride)
            space = AddressSpace(machine.page_size, self.paging, t.array_bytes, crng)
            line_size = machine.levels[0].spec.line_size
            vlines[t.core] = space.virtual_lines(vaddrs, line_size)
            plines[t.core] = space.physical_lines(vaddrs, line_size)
            active[t.core] = np.ones(len(vaddrs), dtype=bool)
            cost[t.core] = np.zeros(len(vaddrs), dtype=np.float64)

        miss_fraction: dict[int, list[float]] = {t.core: [] for t in traversals}

        # A tracked stream (small stride) has its beyond-L1 miss
        # latencies hidden by the prefetcher.
        pf_factor = {
            t.core: self.prefetch.miss_latency_factor(t.stride) for t in traversals
        }

        for level_idx, level in enumerate(machine.levels):
            spec = level.spec
            # Gather the active lines of every instance's members once.
            for instance_idx, group in enumerate(level.groups):
                members = [c for c in cores if c in group and active[c].any()]
                if not members:
                    continue
                set_indices: dict[int, np.ndarray] = {}
                for c in members:
                    lines = vlines[c] if spec.indexing is Indexing.VIRTUAL else plines[c]
                    set_indices[c] = (lines[active[c]] % spec.num_sets).astype(np.int64)
                combined = np.concatenate([set_indices[c] for c in members])
                load = np.bincount(combined, minlength=spec.num_sets)
                overloaded = load > spec.ways
                for c in members:
                    idx = np.flatnonzero(active[c])
                    latency = spec.latency * (pf_factor[c] if level_idx > 0 else 1.0)
                    cost[c][idx] += latency
                    missing = overloaded[set_indices[c]]
                    # Lines in non-overloaded sets hit here and stop.
                    still = idx[missing]
                    new_active = np.zeros_like(active[c])
                    new_active[still] = True
                    active[c] = new_active
            for t in traversals:
                denom = len(vlines[t.core])
                miss_fraction[t.core].append(float(active[t.core].sum()) / denom)

        for t in traversals:
            idx = np.flatnonzero(active[t.core])
            cost[t.core][idx] += machine.mem_latency * pf_factor[t.core]

        tlb_extra = {
            t.core: self._tlb_cycles_per_access(t) for t in traversals
        }

        cycles = {
            t.core: float(cost[t.core].mean()) + tlb_extra[t.core]
            for t in traversals
        }
        n_accesses = {t.core: int(len(vlines[t.core])) for t in traversals}
        seconds = {
            c: cycles[c] * n_accesses[c] / machine.clock_hz for c in cycles
        }
        return TraversalResult(
            cycles_per_access=cycles,
            miss_fraction=miss_fraction,
            n_accesses=n_accesses,
            seconds_per_round=seconds,
        )

    def _tlb_cycles_per_access(self, traversal: Traversal) -> float:
        """Average page-walk cycles per access for one cyclic traversal.

        TLBs are per-core and indexed by virtual page, so the analysis
        needs no page placement: group the accesses by virtual page and
        apply the cyclic-LRU rule to the TLB sets.  Accesses to one page
        are contiguous in address order, so an overloaded page costs one
        walk per revolution regardless of how many accesses it gets.
        """
        tlb = self.machine.tlb
        if tlb is None:
            return 0.0
        vaddrs = _strided_addresses_shared(traversal.array_bytes, traversal.stride)
        vpages = np.unique(vaddrs // self.machine.page_size)
        sets = vpages % tlb.num_sets
        load = np.bincount(sets.astype(np.int64), minlength=tlb.num_sets)
        overloaded_pages = int(load[load > tlb.effective_ways].sum())
        return overloaded_pages * tlb.walk_cycles / len(vaddrs)

    def single(
        self,
        array_bytes: int,
        stride: int,
        core: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Average cycles/access for one isolated core (convenience)."""
        result = self.run([Traversal(core, array_bytes, stride)], rng=rng)
        return result.cycles_per_access[core]
