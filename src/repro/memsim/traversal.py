"""Analytic steady-state traversal engine.

Servet's measurement workloads are *cyclic*: every traversal touches a
fixed set of lines over and over in the same order.  Under LRU that has
a crisp steady state:

    A cache set holding at most `ways` distinct lines of the cycle hits
    on every revisit; a set holding more thrashes and misses every time.

(The classic LRU pathology: with a cyclic reference string of w > K
distinct lines in one K-way set, the line needed next is always the one
evicted longest ago.)  This lets the engine compute exact steady-state
miss patterns with vectorized ``bincount`` passes — no per-access
simulation — while remaining provably equal to the explicit simulator of
:mod:`repro.memsim.cache` (see the property tests).

Concurrency is modelled as lockstep interleaving (the paper runs the
mcalibrator instances "in parallel" pinned to two cores): for a shared
cache instance the per-set load is the union of the members' active
lines.

Everything the engine computes is a pure function of (machine, paging
policy, prefetcher, traversal workloads, RNG stream), so repeats are
served from the :mod:`~repro.memsim.outcome` cache instead of being
re-simulated; cache-miss work itself reuses shared
:class:`~repro.memsim.paging.AddressSpace` page tables and memoized
line/set-index geometry so even a cold run never derives the same
vector twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..errors import MeasurementError
from ..ioutils import sha256_hex
from ..rng import ensure_rng, spawn
from ..topology.cache import CacheOrganization, Indexing
from ..topology.machine import Machine
from .outcome import GLOBAL_OUTCOME_CACHE, TraversalOutcomeCache, stream_identity
from .paging import AddressSpace, PagePolicy, RandomPaging
from .prefetch import PrefetchModel
from .tlb import TLBSpec


def strided_addresses(array_bytes: int, stride: int) -> np.ndarray:
    """Virtual byte addresses touched by an mcalibrator-style traversal.

    One access per ``stride`` bytes starting at 0 — the access pattern
    of the Fig. 1 inner loop (``j = j + A[j]`` with every ``A[j]`` equal
    to the stride).
    """
    if stride <= 0:
        raise MeasurementError(f"stride must be positive, got {stride}")
    if array_bytes <= 0:
        raise MeasurementError(f"array size must be positive, got {array_bytes}")
    return np.arange(0, array_bytes, stride, dtype=np.int64)


@lru_cache(maxsize=256)
def _strided_addresses_shared(array_bytes: int, stride: int) -> np.ndarray:
    """Memoized, read-only address vector for one ``(size, stride)``.

    The engine evaluates the same traversal geometry many times per
    suite run (``run`` and ``_tlb_cycles_per_access`` for every probe,
    repeat-sampling, every pair of a pairwise stage); the address
    vector depends only on ``(array_bytes, stride)``, so share one
    immutable copy instead of rebuilding it per call.
    """
    addresses = strided_addresses(array_bytes, stride)
    addresses.setflags(write=False)
    return addresses


@lru_cache(maxsize=512)
def _virtual_lines_shared(array_bytes: int, stride: int, line_size: int) -> np.ndarray:
    """Memoized, read-only virtual line numbers for one geometry."""
    lines = _strided_addresses_shared(array_bytes, stride) // line_size
    lines.setflags(write=False)
    return lines


@lru_cache(maxsize=1024)
def _virtual_sets_shared(
    array_bytes: int, stride: int, line_size: int, num_sets: int
) -> np.ndarray:
    """Memoized set-index vector for a virtually indexed level."""
    sets = _virtual_lines_shared(array_bytes, stride, line_size) % num_sets
    sets.setflags(write=False)
    return sets


@lru_cache(maxsize=4096)
def _tlb_cycles_shared(
    tlb: TLBSpec, page_size: int, array_bytes: int, stride: int
) -> float:
    """Average page-walk cycles per access for one cyclic traversal.

    TLBs are per-core and indexed by virtual page, so the analysis
    needs no page placement: group the accesses by virtual page and
    apply the cyclic-LRU rule to the TLB sets.  Accesses to one page
    are contiguous in address order, so an overloaded page costs one
    walk per revolution regardless of how many accesses it gets.  The
    result is a pure function of the four arguments — memoized because
    every repeat-sample of a probe re-asks it.
    """
    vaddrs = _strided_addresses_shared(array_bytes, stride)
    vpages = np.unique(vaddrs // page_size)
    sets = vpages % tlb.num_sets
    load = np.bincount(sets.astype(np.int64), minlength=tlb.num_sets)
    overloaded_pages = int(load[load > tlb.effective_ways].sum())
    return overloaded_pages * tlb.walk_cycles / len(vaddrs)


def _space_lines(space: AddressSpace, stride: int, line_size: int) -> np.ndarray:
    """Physical line numbers for a strided walk of ``space``, memoized.

    Shared spaces outlive a single ``run`` call, so the translated line
    vector (and the per-level set indices derived from it, see
    :func:`_space_sets`) is attached to the space and reused by every
    run that shares the placement.
    """
    memo = getattr(space, "_line_memo", None)
    if memo is None:
        memo = {}
        space._line_memo = memo
    key = ("plines", stride, line_size)
    lines = memo.get(key)
    if lines is None:
        vaddrs = _strided_addresses_shared(space.array_bytes, stride)
        lines = space.physical_lines(vaddrs, line_size)
        lines.setflags(write=False)
        memo[key] = lines
    return lines


def _space_sets(
    space: AddressSpace, stride: int, line_size: int, num_sets: int
) -> np.ndarray:
    """Set-index vector for a physically indexed level, memoized per space."""
    memo = getattr(space, "_line_memo", None)
    if memo is None:
        memo = {}
        space._line_memo = memo
    key = ("psets", stride, line_size, num_sets)
    sets = memo.get(key)
    if sets is None:
        sets = _space_lines(space, stride, line_size) % num_sets
        sets.setflags(write=False)
        memo[key] = sets
    return sets


@dataclass(frozen=True)
class Traversal:
    """One core's traversal workload: an array and a stride."""

    core: int
    array_bytes: int
    stride: int


@dataclass
class TraversalResult:
    """Steady-state outcome of a (possibly concurrent) traversal run."""

    #: Average cycles per access, per core.
    cycles_per_access: dict[int, float]
    #: Per core, fraction of its accesses that *missed* each level
    #: (denominator = the core's total accesses, so values telescope).
    miss_fraction: dict[int, list[float]]
    #: Number of distinct accesses per revolution, per core.
    n_accesses: dict[int, int]
    #: Simulated wall time of one measured revolution, per core (seconds).
    seconds_per_round: dict[int, float] = field(default_factory=dict)


def _copy_result(result: TraversalResult) -> TraversalResult:
    """A structurally independent copy (cache entries stay pristine)."""
    return TraversalResult(
        cycles_per_access=dict(result.cycles_per_access),
        miss_fraction={c: list(v) for c, v in result.miss_fraction.items()},
        n_accesses=dict(result.n_accesses),
        seconds_per_round=dict(result.seconds_per_round),
    )


#: Sentinel: "use the process-wide outcome cache" (distinct from None,
#: which is the hard bypass).
_USE_GLOBAL_CACHE = object()


class TraversalEngine:
    """Computes steady-state traversal costs on a machine model.

    Parameters
    ----------
    machine:
        The hardware model (cache levels, latencies, page size).
    paging:
        Page-placement policy; defaults to Linux-like random placement,
        the case Servet's probabilistic algorithm targets.
    prefetch:
        Hardware prefetcher model (engages only for small strides).
    outcome_cache:
        Where to memoize whole ``run`` outcomes.  Defaults to the
        process-wide :data:`~repro.memsim.outcome.GLOBAL_OUTCOME_CACHE`;
        pass an explicit :class:`TraversalOutcomeCache` for a private
        one, or ``None`` to bypass caching entirely (tests, baselines).
    reuse_recorder:
        Optional observer with a ``record(core, lines)`` method (e.g.
        :class:`repro.workload.recorder.TraversalReuseRecorder`); every
        ``run`` feeds it each traversal's virtual-line stream for one
        revolution.  Off (``None``) by default — when set, ``run``
        bypasses the outcome cache so the recorder sees every stream
        and cached-path behaviour stays byte-identical when off.
    """

    def __init__(
        self,
        machine: Machine,
        paging: PagePolicy | None = None,
        prefetch: PrefetchModel | None = None,
        outcome_cache: TraversalOutcomeCache | None | object = _USE_GLOBAL_CACHE,
        reuse_recorder=None,
    ) -> None:
        self.machine = machine
        self.paging = paging if paging is not None else RandomPaging()
        self.prefetch = prefetch if prefetch is not None else PrefetchModel()
        if outcome_cache is _USE_GLOBAL_CACHE:
            outcome_cache = GLOBAL_OUTCOME_CACHE
        self.outcome_cache: TraversalOutcomeCache | None = outcome_cache
        self.reuse_recorder = reuse_recorder
        # Machine identity is by value (equal machines share outcomes
        # across engine/backend instances), hashed once here instead of
        # re-deriving a deep dataclass hash on every lookup.
        self._machine_token = sha256_hex(repr(machine))
        self._paging_token = self.paging.cache_token()
        self._hits_counter = None
        self._misses_counter = None

    def bind_metrics(self, metrics) -> None:
        """Export cache hit/miss counts through a metrics registry.

        Called by :func:`repro.backends.base.instrument_backend` (via
        the backend's own ``bind_metrics``) so suite runs surface
        ``memsim.outcome.hits`` / ``memsim.outcome.misses``.  The
        counter objects are resolved once and cached — the hot path
        must not pay a registry lookup per probe.
        """
        self._hits_counter = metrics.counter("memsim.outcome.hits")
        self._misses_counter = metrics.counter("memsim.outcome.misses")

    def run(
        self,
        traversals: list[Traversal],
        rng: np.random.Generator | int | None = None,
    ) -> TraversalResult:
        """Run the traversals concurrently and return steady-state costs."""
        if not traversals:
            raise MeasurementError("need at least one traversal")
        cores = [t.core for t in traversals]
        if len(set(cores)) != len(cores):
            raise MeasurementError("one traversal per core at most")
        for t in traversals:
            if not (0 <= t.core < self.machine.n_cores):
                raise MeasurementError(
                    f"core {t.core} out of range for {self.machine.name}"
                )
        rng = ensure_rng(rng)

        recorder = self.reuse_recorder
        if recorder is not None:
            line_size = self.machine.levels[0].spec.line_size
            for t in traversals:
                recorder.record(
                    t.core,
                    _virtual_lines_shared(t.array_bytes, t.stride, line_size),
                )

        cache = self.outcome_cache
        key = None
        if recorder is not None:
            cache = None  # recorded runs must not skip the stream replay
        if cache is not None and self._paging_token is not None:
            identity = stream_identity(rng)
            if identity is not None:
                # Traversals are keyed in *call order*: child streams
                # are assigned by position, so a permutation is a
                # different simulation even with the same workloads.
                key = (
                    self._machine_token,
                    self._paging_token,
                    self.prefetch,
                    tuple(traversals),
                    identity,
                )
                cached = cache.get(key)
                if cached is not None:
                    # Side-effect fidelity: a miss spawns one child
                    # stream per traversal; replay that so cached and
                    # uncached runs leave the RNG in identical states.
                    rng.bit_generator.seed_seq.spawn(len(traversals))
                    if self._hits_counter is not None:
                        self._hits_counter.inc()
                    return _copy_result(cached)
                if self._misses_counter is not None:
                    self._misses_counter.inc()

        result = self._simulate(traversals, cores, rng)
        if key is not None:
            cache.put(key, _copy_result(result))
        return result

    def _simulate(
        self,
        traversals: list[Traversal],
        cores: list[int],
        rng: np.random.Generator,
    ) -> TraversalResult:
        """The actual steady-state computation (cache-miss path)."""
        child_rngs = spawn(rng, len(traversals))

        machine = self.machine
        line_size = machine.levels[0].spec.line_size
        spaces: dict[int, AddressSpace] = {}
        active: dict[int, np.ndarray] = {}
        cost: dict[int, np.ndarray] = {}
        n_accesses: dict[int, int] = {}
        stride_of: dict[int, int] = {}
        for t, crng in zip(traversals, child_rngs):
            space = AddressSpace.shared(
                machine.page_size, self.paging, t.array_bytes, crng
            )
            n = len(_strided_addresses_shared(t.array_bytes, t.stride))
            spaces[t.core] = space
            stride_of[t.core] = t.stride
            active[t.core] = np.ones(n, dtype=bool)
            cost[t.core] = np.zeros(n, dtype=np.float64)
            n_accesses[t.core] = n

        miss_fraction: dict[int, list[float]] = {t.core: [] for t in traversals}

        # A tracked stream (small stride) has its beyond-L1 miss
        # latencies hidden by the prefetcher.
        pf_factor = {
            t.core: self.prefetch.miss_latency_factor(t.stride) for t in traversals
        }

        core_set = set(cores)
        for level_idx, level in enumerate(machine.levels):
            spec = level.spec
            # Sectored caches keep one tag per sector, so their set
            # index (and the cyclic-LRU load count) works at sector
            # granularity; sector_lines == 1 reduces to the line math.
            granule = line_size * spec.sector_lines
            # Set-index vectors are memoized per geometry (virtual) or
            # per shared placement (physical); only the bincount load
            # pass and the masked cost/active updates run per call.
            sets: dict[int, np.ndarray] = {}
            for t in traversals:
                if spec.indexing is Indexing.VIRTUAL:
                    sets[t.core] = _virtual_sets_shared(
                        t.array_bytes, t.stride, granule, spec.num_sets
                    )
                else:
                    sets[t.core] = _space_sets(
                        spaces[t.core], t.stride, granule, spec.num_sets
                    )
            for group in level.groups:
                if core_set.isdisjoint(group):
                    continue
                members = [c for c in cores if c in group and active[c].any()]
                if not members:
                    continue
                combined = np.concatenate([sets[c][active[c]] for c in members])
                load = np.bincount(combined, minlength=spec.num_sets)
                overloaded = load > spec.ways + self._exclusive_extra_ways(
                    level_idx, members
                )
                for c in members:
                    latency = spec.latency * (pf_factor[c] if level_idx > 0 else 1.0)
                    cost[c][active[c]] += latency
                    # Lines in non-overloaded sets hit here and stop.
                    active[c] &= overloaded[sets[c]]
            for t in traversals:
                denom = n_accesses[t.core]
                miss_fraction[t.core].append(float(active[t.core].sum()) / denom)

        for t in traversals:
            cost[t.core][active[t.core]] += machine.mem_latency * pf_factor[t.core]

        tlb_extra = {
            t.core: self._tlb_cycles_per_access(t) for t in traversals
        }

        cycles = {
            t.core: float(cost[t.core].mean()) + tlb_extra[t.core]
            for t in traversals
        }
        if machine.core_classes is not None:
            # Heterogeneous (big.LITTLE-style) machines: a little core
            # burns proportionally more cycles per access.
            cycles = {
                c: v * machine.cycle_scale_of(c) for c, v in cycles.items()
            }
        seconds = {
            c: cycles[c] * n_accesses[c] / machine.clock_hz for c in cycles
        }
        return TraversalResult(
            cycles_per_access=cycles,
            miss_fraction=miss_fraction,
            n_accesses=dict(n_accesses),
            seconds_per_round=seconds,
        )

    def _exclusive_extra_ways(self, level_idx: int, members: list[int]) -> int:
        """Extra per-set capacity an exclusive level gains from inner levels.

        An exclusive cache holds only lines absent from the levels
        between it and the traversing cores, so the cyclic working set
        effectively enjoys ``S_j + sum(inner instance sizes)`` bytes.
        Expressed per set: ``ways + inner_tags / num_sets``.  Only the
        inner instances of cores actually traversing count — an idle
        core's L1 holds no lines of the measured working set.  Returns 0
        for every non-exclusive level, keeping the default model intact.
        """
        spec = self.machine.levels[level_idx].spec
        if spec.organization is not CacheOrganization.EXCLUSIVE:
            return 0
        inner_instances: set[tuple[int, int]] = set()
        for i in range(level_idx):
            level = self.machine.levels[i]
            for c in members:
                inner_instances.add((i, level.instance_index(c)))
        inner_bytes = sum(
            self.machine.levels[i].spec.size for i, _ in inner_instances
        )
        granule = self.machine.levels[0].spec.line_size * spec.sector_lines
        return inner_bytes // (granule * spec.num_sets)

    def _tlb_cycles_per_access(self, traversal: Traversal) -> float:
        """Average page-walk cycles per access (memoized; see module fn)."""
        tlb = self.machine.tlb
        if tlb is None:
            return 0.0
        return _tlb_cycles_shared(
            tlb, self.machine.page_size, traversal.array_bytes, traversal.stride
        )

    def single(
        self,
        array_bytes: int,
        stride: int,
        core: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Average cycles/access for one isolated core (convenience)."""
        result = self.run([Traversal(core, array_bytes, stride)], rng=rng)
        return result.cycles_per_access[core]
