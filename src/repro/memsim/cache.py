"""Explicit set-associative cache simulation (reference model).

The fast path of the substrate is the analytic steady-state engine in
:mod:`repro.memsim.traversal`.  This module provides the slow but
obviously-correct counterpart: an explicit LRU set-associative cache and
a multi-level, multi-core trace simulator.  Property-based tests verify
that the analytic engine agrees with this one on the cyclic traversal
workloads the Servet benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ..errors import ConfigurationError
from ..topology.cache import CacheSpec, Indexing
from ..topology.machine import Machine


class SetAssociativeCache:
    """An LRU set-associative cache over abstract line keys.

    Lines are identified by hashable keys (we use ``(core, line_number)``
    so distinct processes never alias); the set index is supplied by the
    caller because it depends on the indexing scheme.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ConfigurationError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        # Per set: list of keys, most recently used last.
        self._sets: list[list[object]] = [[] for _ in range(num_sets)]

    def access(self, set_index: int, key: object) -> bool:
        """Touch ``key`` in ``set_index``; return True on hit.

        On a miss the LRU way of the set is evicted if the set is full.
        """
        lines = self._sets[set_index % self.num_sets]
        try:
            lines.remove(key)
            hit = True
        except ValueError:
            hit = False
            if len(lines) >= self.ways:
                lines.pop(0)
        lines.append(key)
        return hit

    def contains(self, set_index: int, key: object) -> bool:
        """Non-mutating presence check."""
        return key in self._sets[set_index % self.num_sets]

    def occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in the set."""
        return len(self._sets[set_index % self.num_sets])

    def flush(self) -> None:
        """Invalidate the entire cache."""
        for lines in self._sets:
            lines.clear()


@dataclass(frozen=True)
class TraceAccess:
    """One memory access of a trace.

    ``vline``/``pline`` are the virtual and physical line numbers; the
    appropriate one is selected per level by its indexing scheme.
    """

    core: int
    vline: int
    pline: int


@dataclass
class LevelStats:
    """Hit/miss counters for one cache level during a simulation run."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class SimOutcome:
    """Result of :meth:`MultiLevelSimulator.run`."""

    per_level: list[LevelStats]
    cycles: dict[int, float]          # total cycles charged per core
    accesses: dict[int, int]          # accesses issued per core
    cycles_per_access: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cycles_per_access = {
            core: self.cycles[core] / n if n else 0.0
            for core, n in self.accesses.items()
        }


class MultiLevelSimulator:
    """Explicit multi-level, multi-core cache simulation for a machine.

    Builds one :class:`SetAssociativeCache` per physical cache instance
    of the machine and replays interleaved access traces.  An access
    probes L1, then L2, ... until it hits; each probed level charges its
    latency; a full miss charges the machine's memory latency.  Inclusive
    fill: a miss installs the line at every probed level.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._caches: list[list[SetAssociativeCache]] = []
        for level in machine.levels:
            spec = level.spec
            self._caches.append(
                [SetAssociativeCache(spec.num_sets, spec.ways) for _ in level.groups]
            )

    def _cache_for(self, level_idx: int, core: int) -> SetAssociativeCache:
        level = self.machine.levels[level_idx]
        return self._caches[level_idx][level.instance_index(core)]

    @staticmethod
    def _set_index(spec: CacheSpec, access: TraceAccess) -> int:
        line = access.vline if spec.indexing is Indexing.VIRTUAL else access.pline
        return int(line) % spec.num_sets

    def access(self, access: TraceAccess) -> tuple[float, int | None]:
        """Issue one access; return ``(cycles, hit_level)``.

        ``hit_level`` is the 1-based level that served the access, or
        ``None`` for main memory.
        """
        cycles = 0.0
        key = (access.core, access.vline)
        missed_levels: list[tuple[SetAssociativeCache, int]] = []
        hit_level: int | None = None
        for level_idx, level in enumerate(self.machine.levels):
            spec = level.spec
            cache = self._cache_for(level_idx, access.core)
            set_index = self._set_index(spec, access)
            cycles += spec.latency
            if cache.access(set_index, key):
                hit_level = spec.level
                break
            missed_levels.append((cache, set_index))
        else:
            cycles += self.machine.mem_latency
        # (lines were installed by ``access`` on miss already; nothing
        # further to do for the inclusive-fill policy)
        return cycles, hit_level

    def run(
        self,
        trace: Iterable[TraceAccess],
        *,
        rounds: int = 1,
        measure_last_round_only: bool = False,
    ) -> SimOutcome:
        """Replay ``trace`` ``rounds`` times and gather statistics.

        With ``measure_last_round_only`` the first ``rounds - 1``
        replays warm the caches and only the final replay is measured —
        this is the steady state the analytic engine predicts.
        """
        trace = list(trace)
        stats = [LevelStats() for _ in self.machine.levels]
        cycles: dict[int, float] = {}
        counts: dict[int, int] = {}
        for round_idx in range(rounds):
            measuring = not measure_last_round_only or round_idx == rounds - 1
            for access in trace:
                c, hit_level = self.access(access)
                if not measuring:
                    continue
                counts[access.core] = counts.get(access.core, 0) + 1
                cycles[access.core] = cycles.get(access.core, 0.0) + c
                for level in self.machine.levels:
                    num = level.spec.level
                    if hit_level is not None and num > hit_level:
                        break
                    stats[num - 1].accesses += 1
                    if hit_level == num:
                        stats[num - 1].hits += 1
        return SimOutcome(per_level=stats, cycles=cycles, accesses=counts)


def interleave_round_robin(
    streams: Sequence[Sequence[TraceAccess]],
) -> list[TraceAccess]:
    """Merge per-core access streams one access at a time.

    This is the concurrency model of the shared-cache benchmark: two
    cores traversing their arrays in lockstep.  Streams of unequal
    length keep cycling through the shorter ones until the longest is
    exhausted, which preserves the "simultaneous" pressure of Fig. 5.
    """
    if not streams:
        return []
    longest = max(len(s) for s in streams)
    merged: list[TraceAccess] = []
    for i in range(longest):
        for stream in streams:
            if stream:
                merged.append(stream[i % len(stream)])
    return merged
