"""Explicit set-associative cache simulation (reference model).

The fast path of the substrate is the analytic steady-state engine in
:mod:`repro.memsim.traversal`.  This module provides the slow but
obviously-correct counterpart: an explicit LRU set-associative cache and
a multi-level, multi-core trace simulator.  Property-based tests verify
that the analytic engine agrees with this one on the cyclic traversal
workloads the Servet benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ..errors import ConfigurationError
from ..topology.cache import CacheOrganization, CacheSpec, Indexing
from ..topology.machine import Machine


class SetAssociativeCache:
    """An LRU set-associative cache over abstract line keys.

    Lines are identified by hashable keys (we use ``(core, line_number)``
    so distinct processes never alias); the set index is supplied by the
    caller because it depends on the indexing scheme.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ConfigurationError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        # Per set: list of keys, most recently used last.
        self._sets: list[list[object]] = [[] for _ in range(num_sets)]

    def access(self, set_index: int, key: object) -> bool:
        """Touch ``key`` in ``set_index``; return True on hit.

        On a miss the LRU way of the set is evicted if the set is full.
        """
        lines = self._sets[set_index % self.num_sets]
        try:
            lines.remove(key)
            hit = True
        except ValueError:
            hit = False
            if len(lines) >= self.ways:
                lines.pop(0)
        lines.append(key)
        return hit

    def contains(self, set_index: int, key: object) -> bool:
        """Non-mutating presence check."""
        return key in self._sets[set_index % self.num_sets]

    def evict(self, set_index: int, key: object) -> bool:
        """Remove ``key`` if present; return True if it was resident.

        Used by the exclusive fill path: a hit at an exclusive level
        migrates the line inward, so it must leave this level.
        """
        lines = self._sets[set_index % self.num_sets]
        try:
            lines.remove(key)
            return True
        except ValueError:
            return False

    def install(self, set_index: int, key: object) -> object | None:
        """Insert ``key`` as MRU; return the displaced LRU key, if any.

        Unlike :meth:`access` this surfaces the victim of a full set, so
        callers can hand it down to an exclusive/victim level.
        """
        lines = self._sets[set_index % self.num_sets]
        try:
            lines.remove(key)
            evicted = None
        except ValueError:
            evicted = lines.pop(0) if len(lines) >= self.ways else None
        lines.append(key)
        return evicted

    def occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in the set."""
        return len(self._sets[set_index % self.num_sets])

    def flush(self) -> None:
        """Invalidate the entire cache."""
        for lines in self._sets:
            lines.clear()


@dataclass(frozen=True)
class TraceAccess:
    """One memory access of a trace.

    ``vline``/``pline`` are the virtual and physical line numbers; the
    appropriate one is selected per level by its indexing scheme.
    """

    core: int
    vline: int
    pline: int


@dataclass
class LevelStats:
    """Hit/miss counters for one cache level during a simulation run."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class SimOutcome:
    """Result of :meth:`MultiLevelSimulator.run`."""

    per_level: list[LevelStats]
    cycles: dict[int, float]          # total cycles charged per core
    accesses: dict[int, int]          # accesses issued per core
    cycles_per_access: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cycles_per_access = {
            core: self.cycles[core] / n if n else 0.0
            for core, n in self.accesses.items()
        }


class MultiLevelSimulator:
    """Explicit multi-level, multi-core cache simulation for a machine.

    Builds one :class:`SetAssociativeCache` per physical cache instance
    of the machine and replays interleaved access traces.  An access
    probes L1, then L2, ... until it hits; each probed level charges its
    latency; a full miss charges the machine's memory latency.  Inclusive
    fill: a miss installs the line at every probed level.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._caches: list[list[SetAssociativeCache]] = []
        for level in machine.levels:
            spec = level.spec
            self._caches.append(
                [SetAssociativeCache(spec.num_sets, spec.ways) for _ in level.groups]
            )
        self._has_exclusive = any(
            level.spec.organization is CacheOrganization.EXCLUSIVE
            for level in machine.levels
        )

    def _cache_for(self, level_idx: int, core: int) -> SetAssociativeCache:
        level = self.machine.levels[level_idx]
        return self._caches[level_idx][level.instance_index(core)]

    @staticmethod
    def _set_index(spec: CacheSpec, access: TraceAccess) -> int:
        line = access.vline if spec.indexing is Indexing.VIRTUAL else access.pline
        # Sectored caches tag whole sectors, so the set index works at
        # sector granularity (sector_lines == 1 is the plain line math).
        return (int(line) // spec.sector_lines) % spec.num_sets

    @staticmethod
    def _line_key(spec: CacheSpec, access: TraceAccess) -> tuple:
        """Residency key at this level's tag granularity."""
        if spec.sector_lines == 1:
            return (access.core, access.vline)
        return (access.core, access.vline // spec.sector_lines, "sector")

    def access(self, access: TraceAccess) -> tuple[float, int | None]:
        """Issue one access; return ``(cycles, hit_level)``.

        ``hit_level`` is the 1-based level that served the access, or
        ``None`` for main memory.
        """
        if self._has_exclusive:
            return self._access_exclusive(access)
        cycles = 0.0
        hit_level: int | None = None
        for level_idx, level in enumerate(self.machine.levels):
            spec = level.spec
            cache = self._cache_for(level_idx, access.core)
            set_index = self._set_index(spec, access)
            cycles += spec.latency
            if cache.access(set_index, self._line_key(spec, access)):
                hit_level = spec.level
                break
        else:
            cycles += self.machine.mem_latency
        # (lines were installed by ``access`` on miss already; nothing
        # further to do for the inclusive-fill policy.  A VICTIM level
        # needs no special casing here: probe-and-install over a cyclic
        # trace reaches the same steady state as catching evictions.)
        return self._scaled(cycles, access.core), hit_level

    def _access_exclusive(self, access: TraceAccess) -> tuple[float, int | None]:
        """Probe path for machines with at least one exclusive level.

        A hit at an exclusive level removes the line there (it migrates
        inward; the probe already installed it at the inner levels), and
        lines displaced from inner levels drop into the nearest outer
        exclusive level instead of being silently discarded.
        """
        machine = self.machine
        cycles = 0.0
        hit_level: int | None = None
        key = (access.core, access.vline, access.pline)
        displaced: list[tuple[int, tuple]] = []
        for level_idx, level in enumerate(machine.levels):
            spec = level.spec
            cache = self._cache_for(level_idx, access.core)
            set_index = self._set_index(spec, access)
            cycles += spec.latency
            if spec.organization is CacheOrganization.EXCLUSIVE:
                if cache.evict(set_index, key):
                    hit_level = spec.level
                    break
            else:
                if cache.contains(set_index, key):
                    cache.access(set_index, key)
                    hit_level = spec.level
                    break
                evicted = cache.install(set_index, key)
                if evicted is not None:
                    displaced.append((level_idx, evicted))
        else:
            cycles += machine.mem_latency
        for from_idx, ekey in displaced:
            self._drop_to_exclusive(from_idx, ekey)
        return self._scaled(cycles, access.core), hit_level

    def _drop_to_exclusive(self, from_idx: int, ekey: tuple) -> None:
        """Install a displaced line at the nearest outer exclusive level."""
        core, vline, pline = ekey
        for out_idx in range(from_idx + 1, len(self.machine.levels)):
            spec = self.machine.levels[out_idx].spec
            if spec.organization is not CacheOrganization.EXCLUSIVE:
                continue
            line = vline if spec.indexing is Indexing.VIRTUAL else pline
            set_index = (int(line) // spec.sector_lines) % spec.num_sets
            self._cache_for(out_idx, core).install(set_index, ekey)
            return

    def _scaled(self, cycles: float, core: int) -> float:
        if self.machine.core_classes is None:
            return cycles
        return cycles * self.machine.cycle_scale_of(core)

    def run(
        self,
        trace: Iterable[TraceAccess],
        *,
        rounds: int = 1,
        measure_last_round_only: bool = False,
    ) -> SimOutcome:
        """Replay ``trace`` ``rounds`` times and gather statistics.

        With ``measure_last_round_only`` the first ``rounds - 1``
        replays warm the caches and only the final replay is measured —
        this is the steady state the analytic engine predicts.
        """
        trace = list(trace)
        stats = [LevelStats() for _ in self.machine.levels]
        cycles: dict[int, float] = {}
        counts: dict[int, int] = {}
        for round_idx in range(rounds):
            measuring = not measure_last_round_only or round_idx == rounds - 1
            for access in trace:
                c, hit_level = self.access(access)
                if not measuring:
                    continue
                counts[access.core] = counts.get(access.core, 0) + 1
                cycles[access.core] = cycles.get(access.core, 0.0) + c
                for level in self.machine.levels:
                    num = level.spec.level
                    if hit_level is not None and num > hit_level:
                        break
                    stats[num - 1].accesses += 1
                    if hit_level == num:
                        stats[num - 1].hits += 1
        return SimOutcome(per_level=stats, cycles=cycles, accesses=counts)


def interleave_round_robin(
    streams: Sequence[Sequence[TraceAccess]],
) -> list[TraceAccess]:
    """Merge per-core access streams one access at a time.

    This is the concurrency model of the shared-cache benchmark: two
    cores traversing their arrays in lockstep.  Streams of unequal
    length keep cycling through the shorter ones until the longest is
    exhausted, which preserves the "simultaneous" pressure of Fig. 5.
    """
    if not streams:
        return []
    longest = max(len(s) for s in streams)
    merged: list[TraceAccess] = []
    for i in range(longest):
        for stream in streams:
            if stream:
                merged.append(stream[i % len(stream)])
    return merged
