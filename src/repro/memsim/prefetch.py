"""Hardware stride-prefetcher model.

The paper chooses a 1 KB mcalibrator stride because "current prefetchers
work with strides up to 256 or 512 bytes": a traversal with a smaller
stride gets its memory misses hidden and the cycles curve flattens,
destroying the cliffs the detector needs.  This module models exactly
that effect so (a) the 1 KB choice is *necessary* in our substrate too,
and (b) the stride ablation bench can demonstrate the failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PrefetchModel:
    """Models a next-line/stride prefetcher attached to the last cache level.

    Parameters
    ----------
    max_stride:
        Largest access stride (bytes) the prefetcher can track.  Real
        prefetchers handle up to 256-512 B; the default matches the
        paper's statement.
    coverage:
        Fraction of beyond-L1 miss latency hidden when the prefetcher
        engages.  A constant-stride stream is the easiest possible
        pattern, so coverage is near-total — which is precisely why an
        mcalibrator with a too-small stride measures a flat curve.
    """

    max_stride: int = 512
    coverage: float = 0.97

    def __post_init__(self) -> None:
        if self.max_stride < 0:
            raise ConfigurationError("max_stride must be >= 0")
        if not (0.0 <= self.coverage <= 1.0):
            raise ConfigurationError("coverage must be in [0, 1]")

    def engages(self, stride: int) -> bool:
        """True if a constant-stride stream with this stride is tracked."""
        return 0 < stride <= self.max_stride

    def miss_latency_factor(self, stride: int) -> float:
        """Multiplier applied to every beyond-L1 miss penalty.

        1.0 when the prefetcher cannot follow the stream (e.g. the 1 KB
        mcalibrator stride), ``1 - coverage`` when it can.  A tracked
        stream gets its lines prefetched into the near caches ahead of
        use, hiding L2/L3 *and* memory latencies alike — which is
        exactly why a small-stride mcalibrator sees a flat curve and
        cannot find the cache boundaries.
        """
        return 1.0 - self.coverage if self.engages(stride) else 1.0


#: Prefetcher disabled — used by tests that want raw latencies.
NO_PREFETCH = PrefetchModel(max_stride=0, coverage=0.0)
