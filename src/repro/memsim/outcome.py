"""Traversal outcome cache: compute each distinct simulation once.

The suite issues thousands of traversal probes per run, and fleet
surveys multiply that by hundreds of machines — yet the simulated
substrate is fully deterministic: a traversal's steady-state outcome is
a pure function of the machine model, the traversal workloads, the
paging policy, the prefetcher, and the RNG stream that draws the page
placement.  This module keys whole :meth:`TraversalEngine.run` results
on a canonical fingerprint of exactly those inputs so any *repeat* of
the same simulation — a golden re-run, a fleet worker surveying a
duplicate hardware class, a cached-vs-bypass bench, a resumed suite —
is answered from memory instead of re-simulated.

Why the RNG stream is part of the key
-------------------------------------
Two calls with identical geometry are *not* the same measurement: each
``run`` draws fresh page placements from child streams spawned off the
caller's generator, and repeat-sampling exists precisely to average
over those placements.  The stream identity — the generator's seed
entropy, spawn path, and the number of children already spawned — pins
*which* placements a call would draw, so a cache hit returns the exact
result a fresh simulation would have produced, bit for bit.  A
generator whose stream cannot be identified (no inspectable seed
sequence) bypasses the cache rather than risking a wrong answer.

Side-effect fidelity
--------------------
A miss consumes ``len(traversals)`` spawn keys from the caller's
generator; a hit consumes the same keys (without building the child
generators) so cached and uncached runs leave the RNG in identical
states and later calls key identically either way.

Composition with the planner memo
---------------------------------
The :class:`~repro.planner.executor.PlanExecutor` memoizes at probe
granularity; probes answered there never reach the backend, so they are
invisible to this cache.  Counters therefore never double count: for a
suite run, ``planner.cache_hits`` counts probes that skipped the
backend and ``memsim.outcome.hits + memsim.outcome.misses`` equals the
traversal calls that reached the engine.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

#: Default bound on cached outcomes.  One full unpruned suite run on a
#: 24-core machine produces ~3k distinct outcomes; the default keeps a
#: comfortable multiple of that while bounding memory (an outcome is a
#: few hundred bytes).
DEFAULT_MAX_ENTRIES: int = 65536


def stream_identity(rng: np.random.Generator) -> tuple | None:
    """Canonical identity of the stream ``rng`` would spawn children from.

    Returns ``(entropy, spawn_key, n_children_spawned, pool_size)`` of
    the generator's seed sequence, or ``None`` when the generator
    carries no inspectable :class:`numpy.random.SeedSequence` (then the
    placement draws cannot be predicted and caching must be bypassed).
    """
    try:
        seed_seq = rng.bit_generator.seed_seq
    except AttributeError:
        return None
    entropy = getattr(seed_seq, "entropy", None)
    if entropy is None:
        return None
    if isinstance(entropy, (list, tuple)):
        entropy = tuple(int(e) for e in entropy)
    else:
        entropy = int(entropy)
    return (
        entropy,
        tuple(int(k) for k in seed_seq.spawn_key),
        int(seed_seq.n_children_spawned),
        int(seed_seq.pool_size),
    )


class TraversalOutcomeCache:
    """A bounded, thread-safe LRU map of traversal fingerprints to results.

    Values are stored through :meth:`put` and returned by :meth:`get`
    exactly as given — the :class:`~repro.memsim.traversal.
    TraversalEngine` is responsible for copying mutable results so a
    caller can never corrupt a cached entry.

    ``hits``/``misses`` count every lookup (a bypassed *engine* never
    consults the cache, so bypassed runs contribute to neither).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple):
        """The cached outcome for ``key``, or None (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, value) -> None:
        """Insert an outcome, evicting the least recently used if full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        """Snapshot of ``{hits, misses, entries}``."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }


#: Process-wide default cache.  Shared deliberately: the whole point is
#: that a second backend simulating the same machine with the same seed
#: (golden re-runs, fleet duplicates, cached-vs-bypass benches) reuses
#: the first one's outcomes.  Hard bypass = construct the engine (or
#: backend) with ``outcome_cache=None`` / ``sim_cache=False``.
GLOBAL_OUTCOME_CACHE = TraversalOutcomeCache()

#: Companion cache for the discrete-event communication substrate.
#: Ping-pong and concurrent-exchange simulations involve no RNG at all
#: — they are pure functions of (cluster, comm config, pairs, message
#: size) — so their keying needs no stream identity; the same bounded
#: LRU structure serves.  Kept separate from the traversal cache so the
#: "traversal hits + misses == traversal probes issued" accounting
#: invariant stays exact.
GLOBAL_COMM_CACHE = TraversalOutcomeCache()


def clear_global_cache() -> None:
    """Reset the process-wide caches (benches and tests)."""
    GLOBAL_OUTCOME_CACHE.clear()
    GLOBAL_COMM_CACHE.clear()
