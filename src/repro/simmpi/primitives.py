"""Measurement primitives built on the simulated MPI.

These are the micro-benchmarks Servet's communication suite runs:
ping-pong between a pinned pair of cores (the Fig. 7 latency probe and
the Fig. 10c/d bandwidth characterization) and simultaneous one-way
transfers across many pairs (the Fig. 10b scalability probe).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..errors import MeasurementError
from ..netsim.model import CommConfig
from ..topology.machine import Cluster, CorePair
from .comm import Rank, World


def pingpong_latency(
    cluster: Cluster,
    config: CommConfig,
    core_a: int,
    core_b: int,
    nbytes: int,
    repetitions: int = 4,
) -> float:
    """One-way message latency (seconds) between two pinned cores.

    Runs ``repetitions`` ping-pong round trips through the runtime and
    halves the average round-trip time — the standard MPI latency
    measurement the paper's Fig. 10(a) reports.
    """
    if repetitions < 1:
        raise MeasurementError("need at least one repetition")
    if core_a == core_b:
        raise MeasurementError("ping-pong needs two distinct cores")
    world = World(cluster, config, placement=[core_a, core_b])

    def pinger(rank: Rank):
        for rep in range(repetitions):
            yield rank.send(1, nbytes, tag=rep)
            yield rank.recv(1, tag=rep)

    def ponger(rank: Rank):
        for rep in range(repetitions):
            yield rank.recv(0, tag=rep)
            yield rank.send(0, nbytes, tag=rep)

    world.add_process(pinger, 0)
    world.add_process(ponger, 1)
    result = world.run()
    return result.makespan / (2 * repetitions)


@dataclass
class ConcurrentResult:
    """Latencies observed when several pairs transfer simultaneously."""

    per_pair: dict[CorePair, float]
    mean: float
    worst: float

    @classmethod
    def from_times(cls, per_pair: dict[CorePair, float]) -> "ConcurrentResult":
        values = list(per_pair.values())
        return cls(
            per_pair=per_pair,
            mean=sum(values) / len(values),
            worst=max(values),
        )


def concurrent_transfers(
    cluster: Cluster,
    config: CommConfig,
    pairs: Sequence[CorePair],
    nbytes: int,
) -> ConcurrentResult:
    """One-way transfer time per pair when all pairs send at once.

    Every pair sends a single ``nbytes`` message starting at virtual
    time zero; the per-pair completion time is the receiver's finish
    time.  ``worst`` is the paper's scalability metric ("a message sent
    when there are other N-1 messages").
    """
    if not pairs:
        raise MeasurementError("need at least one pair")
    cores: list[int] = []
    for a, b in pairs:
        cores.extend((a, b))
    if len(set(cores)) != len(cores):
        raise MeasurementError("concurrent pairs must not share cores")
    world = World(cluster, config, placement=cores)

    def sender(rank: Rank):
        yield rank.send(rank.id + 1, nbytes, tag=rank.id)

    def receiver(rank: Rank):
        yield rank.recv(rank.id - 1, tag=rank.id - 1)

    for i in range(len(pairs)):
        world.add_process(sender, 2 * i)
        world.add_process(receiver, 2 * i + 1)
    result = world.run()
    per_pair = {
        pair: result.finish_times[2 * i + 1] for i, pair in enumerate(pairs)
    }
    return ConcurrentResult.from_times(per_pair)


def concurrent_exchanges(
    cluster: Cluster,
    config: CommConfig,
    pairs: Sequence[CorePair],
    nbytes: int,
) -> ConcurrentResult:
    """Bidirectional variant: both cores of every pair send at once.

    With ``k`` pairs this puts ``2k`` simultaneous messages on the
    layer — the paper's Fig. 10(b) setup, where 32 cores across two
    Finis Terrae nodes produce 32 concurrent InfiniBand messages.
    The per-pair time is when *both* directions have completed.
    """
    if not pairs:
        raise MeasurementError("need at least one pair")
    cores: list[int] = []
    for a, b in pairs:
        cores.extend((a, b))
    if len(set(cores)) != len(cores):
        raise MeasurementError("concurrent pairs must not share cores")
    world = World(cluster, config, placement=cores)

    def exchanger(rank: Rank):
        peer = rank.id ^ 1  # ranks 2i and 2i+1 are partners
        yield rank.send(peer, nbytes, tag=rank.id)
        yield rank.recv(peer, tag=peer)

    for r in range(2 * len(pairs)):
        world.add_process(exchanger, r)
    result = world.run()
    per_pair = {
        pair: max(result.finish_times[2 * i], result.finish_times[2 * i + 1])
        for i, pair in enumerate(pairs)
    }
    return ConcurrentResult.from_times(per_pair)
