"""Virtual-time event loop.

A minimal discrete-event engine: callbacks scheduled at absolute virtual
times, executed in time order (FIFO among equal timestamps).  Kept
deliberately tiny — all semantics live in :mod:`repro.simmpi.comm`.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from ..errors import SimulationError, WatchdogError


class Engine:
    """A monotone virtual clock with a scheduled-callback heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    @property
    def pending(self) -> int:
        """Number of not-yet-executed callbacks."""
        return len(self._heap)

    def step(self) -> bool:
        """Execute the earliest callback; False when nothing is pending."""
        if not self._heap:
            return False
        time, _, fn = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("virtual time moved backwards")
        self.now = time
        fn()
        return True

    def run(
        self, max_time: float | None = None, max_events: int | None = None
    ) -> int:
        """Drain the event heap; returns the number of callbacks run.

        ``max_time`` stops quietly once the next callback lies beyond
        it.  ``max_events`` is a watchdog budget: exceeding it raises
        :class:`~repro.errors.WatchdogError` (a runaway model would
        otherwise spin forever).
        """
        executed = 0
        while self._heap:
            if max_time is not None and self._heap[0][0] > max_time:
                return executed
            if max_events is not None and executed >= max_events:
                raise WatchdogError(
                    f"event budget of {max_events} callbacks exhausted at "
                    f"virtual time {self.now:g}s ({self.pending} still pending)"
                )
            self.step()
            executed += 1
        return executed
