"""Virtual-time event loop.

A minimal discrete-event engine: callbacks scheduled at absolute virtual
times, executed in time order (FIFO among equal timestamps).  Kept
deliberately tiny — all semantics live in :mod:`repro.simmpi.comm`.

The pending set is a **calendar queue** (Brown-style bucketed scheduler,
here with an unbounded sparse dict of buckets instead of a fixed ring):
future events land in the bucket covering ``[k·width, (k+1)·width)``,
pops always drain the lowest-keyed bucket, and the bucket width expands
adaptively when the bucket population gets too sparse.  On top of it
the engine keeps a **zero-delay fast lane**: ``comm`` schedules a large
share of its traffic at ``delay == 0`` (send/receive handshakes), and
those events need no priority structure at all — they are FIFO at the
current timestamp, so a plain deque serves them.  Ordering is identical
to the classic binary heap (time, then schedule order); the heap
survives as :class:`HeapScheduler`, the reference implementation the
property tests compare against.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable

from ..errors import SimulationError, WatchdogError

#: One queue entry: (absolute virtual time, schedule sequence, callback).
Entry = tuple[float, int, Callable[[], None]]


class HeapScheduler:
    """Reference binary-heap scheduler (total order: time, then seq).

    Kept as the ground truth the calendar queue is property-tested
    against, and as an explicit fallback (``Engine(HeapScheduler())``).
    """

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, seq: int, fn: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, seq, fn))

    def peek(self) -> tuple[float, int] | None:
        """(time, seq) of the earliest entry, or None when empty."""
        if not self._heap:
            return None
        head = self._heap[0]
        return (head[0], head[1])

    def pop(self) -> Entry:
        return heapq.heappop(self._heap)


class CalendarScheduler:
    """Bucketed calendar queue over sparse integer-keyed buckets.

    Events are binned by ``int(time / width)`` into a dict (so empty
    buckets cost nothing), each bucket is a small binary heap ordered
    by ``(time, seq)``, and the global minimum always lives in the
    lowest-keyed bucket because bucket time ranges are disjoint.  The
    width only ever *grows* (``_rebuild``): a too-small width is the
    pathological case (every pop rescans the key space), while a
    too-large one degrades gracefully toward a single heap.
    """

    #: Rebuild with a wider bucket once the live-bucket count passes this.
    MAX_BUCKETS = 1024
    #: Width growth factor on rebuild.
    GROWTH = 8.0

    def __init__(self, width: float | None = None) -> None:
        if width is not None and width <= 0:
            raise SimulationError("bucket width must be positive")
        self._width = width
        self._buckets: dict[int, list[Entry]] = {}
        self._min_key: int | None = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _key(self, time: float) -> int:
        return int(time / self._width)

    def push(self, time: float, seq: int, fn: Callable[[], None]) -> None:
        if self._width is None:
            # First event calibrates the calendar: a handful of buckets
            # up to the first horizon.  Adaptive growth fixes any bad
            # initial guess.
            self._width = time / 8.0 if time > 0 else 1.0
        key = self._key(time)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [(time, seq, fn)]
            if self._min_key is None or key < self._min_key:
                self._min_key = key
            if len(self._buckets) > self.MAX_BUCKETS:
                self._rebuild(self._width * self.GROWTH)
        else:
            heapq.heappush(bucket, (time, seq, fn))
        self._count += 1

    def peek(self) -> tuple[float, int] | None:
        """(time, seq) of the earliest entry, or None when empty."""
        if self._count == 0:
            return None
        head = self._buckets[self._min_key][0]
        return (head[0], head[1])

    def pop(self) -> Entry:
        bucket = self._buckets[self._min_key]
        entry = heapq.heappop(bucket)
        if not bucket:
            del self._buckets[self._min_key]
            self._min_key = min(self._buckets) if self._buckets else None
        self._count -= 1
        return entry

    def _rebuild(self, new_width: float) -> None:
        entries = [entry for bucket in self._buckets.values() for entry in bucket]
        self._width = new_width
        self._buckets = {}
        for entry in entries:
            self._buckets.setdefault(self._key(entry[0]), []).append(entry)
        for bucket in self._buckets.values():
            heapq.heapify(bucket)
        self._min_key = min(self._buckets) if self._buckets else None


class Engine:
    """A monotone virtual clock over a calendar queue + zero-delay lane."""

    def __init__(self, scheduler: CalendarScheduler | HeapScheduler | None = None) -> None:
        self.now: float = 0.0
        self._sched = scheduler if scheduler is not None else CalendarScheduler()
        #: FIFO of (seq, fn) at exactly the current timestamp.
        self._now_queue: deque[tuple[int, Callable[[], None]]] = deque()
        self._seq = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        if time == self.now:
            self._now_queue.append((self._seq, fn))
        else:
            self._sched.push(time, self._seq, fn)
        self._seq += 1

    @property
    def pending(self) -> int:
        """Number of not-yet-executed callbacks."""
        return len(self._now_queue) + len(self._sched)

    def _next_time(self) -> float | None:
        """Virtual time of the next callback, or None when idle."""
        if self._now_queue:
            return self.now
        head = self._sched.peek()
        return None if head is None else head[0]

    def step(self) -> bool:
        """Execute the earliest callback; False when nothing is pending."""
        if self._now_queue:
            # The calendar can still hold an earlier-scheduled event at
            # this exact timestamp; (time, seq) decides, as in the heap.
            head = self._sched.peek()
            if head is None or (self.now, self._now_queue[0][0]) < head:
                _, fn = self._now_queue.popleft()
                fn()
                return True
        if not len(self._sched):
            return False
        time, _, fn = self._sched.pop()
        if time < self.now:
            raise SimulationError("virtual time moved backwards")
        self.now = time
        fn()
        return True

    def run(
        self, max_time: float | None = None, max_events: int | None = None
    ) -> int:
        """Drain the event queue; returns the number of callbacks run.

        ``max_time`` stops quietly once the next callback lies beyond
        it.  ``max_events`` is a watchdog budget: exceeding it raises
        :class:`~repro.errors.WatchdogError` (a runaway model would
        otherwise spin forever).
        """
        executed = 0
        while self.pending:
            if max_time is not None and self._next_time() > max_time:
                return executed
            if max_events is not None and executed >= max_events:
                raise WatchdogError(
                    f"event budget of {max_events} callbacks exhausted at "
                    f"virtual time {self.now:g}s ({self.pending} still pending)"
                )
            self.step()
            executed += 1
        return executed
