"""Processes, matching and transfer semantics of the simulated MPI.

A process is a Python generator that yields *requests* created through
its :class:`Rank` handle::

    def worker(rank: Rank):
        yield rank.compute(1e-6)
        yield rank.send(dest=1, nbytes=4096)
        src, nbytes = yield rank.recv(source=ANY_SOURCE)

Semantics (modelled on real MPI middleware, as the paper assumes):

- **Eager protocol** (``nbytes <= layer.eager_threshold``): the sender
  deposits the message and continues immediately; the receiver observes
  the full transfer latency.
- **Rendezvous protocol** (larger messages): sender and receiver both
  block until the transfer completes.
- **Contention**: a transfer starting while ``N-1`` transfers are
  already active in the same layer takes ``layer.latency(nbytes, N)``.
  Already-running transfers are not re-priced (a documented
  approximation of fluid sharing).

Matching is FIFO per (source, tag) with MPI-style wildcards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Generator, Sequence

from ..errors import ConfigurationError, SimulationError, WatchdogError
from ..netsim.model import CommConfig
from ..topology.machine import Cluster
from .events import Engine

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Handle",
    "Rank",
    "World",
    "WorldResult",
]

ANY_SOURCE = -1
ANY_TAG = -1

#: Default watchdog budget: events per rank a run may execute before
#: the runtime declares the model runaway.  Generously above any real
#: benchmark (a message costs a handful of events) while still bounding
#: a faulty model that would otherwise spin forever.
DEFAULT_EVENT_BUDGET_PER_RANK = 250_000

ProcessFn = Callable[["Rank"], Generator]


@dataclass(frozen=True)
class _SendReq:
    dest: int
    nbytes: int
    tag: int


@dataclass(frozen=True)
class _RecvReq:
    source: int
    tag: int


@dataclass(frozen=True)
class _ComputeReq:
    seconds: float


@dataclass(frozen=True)
class _IsendReq:
    dest: int
    nbytes: int
    tag: int


@dataclass(frozen=True)
class _IrecvReq:
    source: int
    tag: int


@dataclass(frozen=True)
class _WaitReq:
    handle: "Handle"


class Handle:
    """Completion handle of a nonblocking operation.

    ``wait`` on it (``value = yield rank.wait(handle)``) to block until
    the operation finishes; a completed receive resolves to
    ``(source, nbytes)``, a completed send to ``None``.
    """

    __slots__ = ("done", "value", "_waiter")

    def __init__(self) -> None:
        self.done = False
        self.value: object = None
        self._waiter: _Proc | None = None


class Rank:
    """A process's handle: identity plus request constructors."""

    def __init__(self, world: "World", rank: int) -> None:
        self._world = world
        self.id = rank

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self._world.size

    @property
    def core(self) -> int:
        """Global core id this rank is placed on."""
        return self._world.placement[self.id]

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._world.engine.now

    def send(self, dest: int, nbytes: int, tag: int = 0) -> _SendReq:
        """Request: send ``nbytes`` to rank ``dest``."""
        if not (0 <= dest < self.size):
            raise SimulationError(f"send to invalid rank {dest}")
        if dest == self.id:
            raise SimulationError("send to self is not supported")
        if nbytes < 0 or tag < 0:
            raise SimulationError("invalid send arguments")
        return _SendReq(dest, nbytes, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> _RecvReq:
        """Request: receive a message; resumes with ``(source, nbytes)``."""
        if source != ANY_SOURCE and not (0 <= source < self.size):
            raise SimulationError(f"recv from invalid rank {source}")
        if source == self.id:
            raise SimulationError("recv from self is not supported")
        return _RecvReq(source, tag)

    def compute(self, seconds: float) -> _ComputeReq:
        """Request: model local computation for ``seconds``."""
        if seconds < 0:
            raise SimulationError("compute time must be >= 0")
        return _ComputeReq(seconds)

    def isend(self, dest: int, nbytes: int, tag: int = 0) -> _IsendReq:
        """Request: nonblocking send; resumes immediately with a
        :class:`Handle` (complete when the buffer is reusable — at
        injection for eager messages, at transfer end for rendezvous)."""
        self.send(dest, nbytes, tag)  # argument validation only
        return _IsendReq(dest, nbytes, tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> _IrecvReq:
        """Request: nonblocking receive; resumes immediately with a
        :class:`Handle` that resolves to ``(source, nbytes)``."""
        self.recv(source, tag)  # argument validation only
        return _IrecvReq(source, tag)

    def wait(self, handle: Handle) -> _WaitReq:
        """Request: block until ``handle`` completes; resumes with its
        value."""
        if not isinstance(handle, Handle):
            raise SimulationError("wait() needs a Handle from isend/irecv")
        return _WaitReq(handle)

    # Collectives (generator helpers; use with ``yield from``).

    def barrier(self, tag: int = 900_000):
        """Dissemination barrier across all ranks."""
        from .collectives import barrier

        return barrier(self, tag=tag)

    def bcast(self, root: int, nbytes: int, tag: int = 910_000):
        """Binomial-tree broadcast of ``nbytes`` from ``root``."""
        from .collectives import bcast

        return bcast(self, root, nbytes, tag=tag)

    def gather(self, root: int, nbytes: int, tag: int = 920_000):
        """Flat gather of ``nbytes`` from every rank to ``root``."""
        from .collectives import gather

        return gather(self, root, nbytes, tag=tag)

    def allgather(self, nbytes: int, tag: int = 930_000):
        """Ring allgather of ``nbytes`` per rank."""
        from .collectives import allgather

        return allgather(self, nbytes, tag=tag)


@dataclass
class _Proc:
    rank: int
    gen: Generator
    finished: bool = False
    finish_time: float = 0.0
    blocked_on: str = ""


@dataclass
class _PendingSend:
    src: int
    dest: int
    nbytes: int
    tag: int
    #: Absolute arrival time of an already-in-flight eager payload;
    #: ``None`` for a rendezvous send still waiting for its receiver.
    eager_arrival: float | None = None
    #: Called when the sender's buffer becomes reusable (rendezvous
    #: sends only — eager sends complete before being queued).
    sender_done: object | None = None


@dataclass
class _PendingRecv:
    rank: int
    source: int
    tag: int
    #: Called with ``(source, nbytes)`` when the message lands.
    receiver_done: object = None


@dataclass
class WorldResult:
    """Outcome of :meth:`World.run`."""

    finish_times: dict[int, float]
    makespan: float
    messages: int
    bytes_sent: int
    per_layer_messages: dict[str, int] = field(default_factory=dict)


class World:
    """A set of ranks placed on cluster cores, plus the event runtime."""

    def __init__(
        self,
        cluster: Cluster,
        config: CommConfig,
        placement: Sequence[int],
    ) -> None:
        if len(set(placement)) != len(placement):
            raise ConfigurationError("placement maps two ranks to one core")
        for core in placement:
            if not (0 <= core < cluster.n_cores):
                raise ConfigurationError(f"placement core {core} out of range")
        self.cluster = cluster
        self.config = config
        self.placement = list(placement)
        self.engine = Engine()
        self._procs: dict[int, _Proc] = {}
        self._pending_sends: dict[int, deque[_PendingSend]] = {}
        self._pending_recvs: dict[int, deque[_PendingRecv]] = {}
        self._active_in_layer: dict[str, int] = {}
        self._messages = 0
        self._bytes = 0
        self._per_layer: dict[str, int] = {}

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.placement)

    def add_process(self, fn: ProcessFn, rank: int) -> None:
        """Install the program of ``rank`` (one per rank)."""
        if not (0 <= rank < self.size):
            raise ConfigurationError(f"rank {rank} out of range")
        if rank in self._procs:
            raise ConfigurationError(f"rank {rank} already has a process")
        gen = fn(Rank(self, rank))
        if not isinstance(gen, Generator):
            raise ConfigurationError("process function must be a generator function")
        self._procs[rank] = _Proc(rank=rank, gen=gen)

    def spawn_all(self, fn: ProcessFn) -> None:
        """Run the same program on every rank (SPMD)."""
        for rank in range(self.size):
            self.add_process(fn, rank)

    # -- runtime ----------------------------------------------------------

    def run(
        self,
        max_time: float | None = None,
        max_events: int | None = None,
    ) -> WorldResult:
        """Execute until every process finishes; detect deadlock.

        A watchdog bounds the run to ``max_events`` executed callbacks
        (default: :data:`DEFAULT_EVENT_BUDGET_PER_RANK` per rank) so a
        faulty communication model raises
        :class:`~repro.errors.WatchdogError` naming the stuck ranks
        instead of spinning forever.
        """
        if len(self._procs) != self.size:
            raise ConfigurationError(
                f"world has {self.size} ranks but {len(self._procs)} processes"
            )
        if max_events is None:
            max_events = DEFAULT_EVENT_BUDGET_PER_RANK * max(self.size, 1)
        for proc in self._procs.values():
            self.engine.schedule(0.0, lambda p=proc: self._advance(p, None))
        try:
            self.engine.run(max_time=max_time, max_events=max_events)
        except WatchdogError as exc:
            raise WatchdogError(f"{exc}; {self._stuck_ranks()}") from None
        unfinished = [p.rank for p in self._procs.values() if not p.finished]
        if unfinished and max_time is None:
            raise SimulationError(
                f"deadlock at virtual time {self.engine.now:g}s: "
                f"{self._stuck_ranks()}"
            )
        finish = {p.rank: p.finish_time for p in self._procs.values() if p.finished}
        return WorldResult(
            finish_times=finish,
            makespan=max(finish.values()) if finish else 0.0,
            messages=self._messages,
            bytes_sent=self._bytes,
            per_layer_messages=dict(self._per_layer),
        )

    def _stuck_ranks(self) -> str:
        """Diagnostics naming every unfinished rank and its blocker."""
        unfinished = [p for p in self._procs.values() if not p.finished]
        if not unfinished:
            return "no unfinished ranks"
        return ", ".join(
            f"rank {p.rank} blocked on {p.blocked_on or '??'}" for p in unfinished
        )

    def _advance(self, proc: _Proc, value: object) -> None:
        if proc.finished:
            raise SimulationError(f"rank {proc.rank} resumed after finishing")
        try:
            request = proc.gen.send(value)
        except StopIteration:
            proc.finished = True
            proc.finish_time = self.engine.now
            return
        if isinstance(request, _ComputeReq):
            proc.blocked_on = f"compute({request.seconds:g}s)"
            self.engine.schedule(request.seconds, lambda: self._advance(proc, None))
        elif isinstance(request, _SendReq):
            proc.blocked_on = f"send(dest={request.dest}, tag={request.tag})"
            self._handle_send(proc, request)
        elif isinstance(request, _RecvReq):
            proc.blocked_on = f"recv(source={request.source}, tag={request.tag})"
            self._handle_recv(
                proc,
                request,
                receiver_done=lambda value: self._advance(proc, value),
            )
        elif isinstance(request, _IsendReq):
            self._handle_isend(proc, request)
        elif isinstance(request, _IrecvReq):
            handle = Handle()
            self._handle_recv(
                proc,
                _RecvReq(request.source, request.tag),
                receiver_done=lambda value, h=handle: self._complete(h, value),
            )
            self.engine.schedule(0.0, lambda: self._advance(proc, handle))
        elif isinstance(request, _WaitReq):
            handle = request.handle
            if handle.done:
                self.engine.schedule(
                    0.0, lambda: self._advance(proc, handle.value)
                )
            else:
                if handle._waiter is not None:
                    raise SimulationError("two processes waiting on one handle")
                proc.blocked_on = "wait(handle)"
                handle._waiter = proc
        else:
            raise SimulationError(
                f"rank {proc.rank} yielded unknown request {request!r}"
            )

    def _complete(self, handle: Handle, value: object = None) -> None:
        """Mark a handle done and release anyone waiting on it."""
        handle.done = True
        handle.value = value
        if handle._waiter is not None:
            waiter, handle._waiter = handle._waiter, None
            self._advance(waiter, value)

    def _match_recv(self, dest: int, src: int, tag: int):
        """Pop the first posted recv at ``dest`` matching (src, tag)."""
        queue = self._pending_recvs.get(dest)
        if queue:
            for i, pending in enumerate(queue):
                if _recv_matches(pending, src, tag):
                    del queue[i]
                    return pending
        return None

    def _handle_send(self, proc: _Proc, req: _SendReq) -> None:
        sender_done = lambda: self._advance(proc, None)  # noqa: E731
        pending = self._match_recv(req.dest, proc.rank, req.tag)
        if pending is not None:
            self._start_transfer(
                proc.rank, req.dest, req.nbytes, req.tag,
                sender_done, pending.receiver_done,
            )
            return
        params = self.config.params_for_pair(
            self.cluster, self.placement[proc.rank], self.placement[req.dest]
        )
        if params.is_eager(req.nbytes):
            # Unmatched eager send: the payload goes on the wire now and
            # the sender continues; the receiver will pick it up from
            # the unexpected-message queue whenever it posts its recv.
            duration = self._begin_wire_transfer(params, req.nbytes)
            self._pending_sends.setdefault(req.dest, deque()).append(
                _PendingSend(
                    proc.rank,
                    req.dest,
                    req.nbytes,
                    req.tag,
                    eager_arrival=self.engine.now + duration,
                )
            )
            self.engine.schedule(0.0, sender_done)
        else:
            self._pending_sends.setdefault(req.dest, deque()).append(
                _PendingSend(
                    proc.rank, req.dest, req.nbytes, req.tag,
                    sender_done=sender_done,
                )
            )

    def _handle_isend(self, proc: _Proc, req: _IsendReq) -> None:
        handle = Handle()
        self.engine.schedule(0.0, lambda: self._advance(proc, handle))
        sender_done = lambda: self._complete(handle)  # noqa: E731
        pending = self._match_recv(req.dest, proc.rank, req.tag)
        if pending is not None:
            self._start_transfer(
                proc.rank, req.dest, req.nbytes, req.tag,
                sender_done, pending.receiver_done,
            )
            return
        params = self.config.params_for_pair(
            self.cluster, self.placement[proc.rank], self.placement[req.dest]
        )
        if params.is_eager(req.nbytes):
            duration = self._begin_wire_transfer(params, req.nbytes)
            self._pending_sends.setdefault(req.dest, deque()).append(
                _PendingSend(
                    proc.rank,
                    req.dest,
                    req.nbytes,
                    req.tag,
                    eager_arrival=self.engine.now + duration,
                )
            )
            self._complete(handle)  # eager buffer handed off immediately
        else:
            self._pending_sends.setdefault(req.dest, deque()).append(
                _PendingSend(
                    proc.rank, req.dest, req.nbytes, req.tag,
                    sender_done=sender_done,
                )
            )

    def _handle_recv(self, proc: _Proc, req: _RecvReq, receiver_done) -> None:
        queue = self._pending_sends.get(proc.rank)
        if queue:
            for i, pending in enumerate(queue):
                if _send_matches(pending, req):
                    del queue[i]
                    if pending.eager_arrival is not None:
                        # Payload is already in flight (or has landed).
                        delay = max(0.0, pending.eager_arrival - self.engine.now)
                        src, nbytes = pending.src, pending.nbytes
                        self.engine.schedule(
                            delay, lambda: receiver_done((src, nbytes))
                        )
                    else:
                        self._start_transfer(
                            pending.src,
                            proc.rank,
                            pending.nbytes,
                            pending.tag,
                            pending.sender_done,
                            receiver_done,
                        )
                    return
        self._pending_recvs.setdefault(proc.rank, deque()).append(
            _PendingRecv(proc.rank, req.source, req.tag, receiver_done)
        )

    def _begin_wire_transfer(self, params, nbytes: int) -> float:
        """Account for one message entering the layer; returns duration."""
        active = self._active_in_layer.get(params.name, 0)
        duration = params.latency(nbytes, concurrency=active + 1)
        self._active_in_layer[params.name] = active + 1
        self._messages += 1
        self._bytes += nbytes
        self._per_layer[params.name] = self._per_layer.get(params.name, 0) + 1

        def release() -> None:
            self._active_in_layer[params.name] -= 1

        self.engine.schedule(duration, release)
        return duration

    def _start_transfer(
        self, src: int, dest: int, nbytes: int, tag: int, sender_done, receiver_done
    ) -> None:
        core_s = self.placement[src]
        core_d = self.placement[dest]
        params = self.config.params_for_pair(self.cluster, core_s, core_d)
        duration = self._begin_wire_transfer(params, nbytes)

        if params.is_eager(nbytes):
            # Sender continues immediately; receiver pays the latency.
            self.engine.schedule(0.0, sender_done)
        else:
            self.engine.schedule(duration, sender_done)
        self.engine.schedule(duration, lambda: receiver_done((src, nbytes)))


def _recv_matches(pending: _PendingRecv, src: int, tag: int) -> bool:
    return (pending.source in (ANY_SOURCE, src)) and (pending.tag in (ANY_TAG, tag))


def _send_matches(pending: _PendingSend, req: _RecvReq) -> bool:
    return (req.source in (ANY_SOURCE, pending.src)) and (
        req.tag in (ANY_TAG, pending.tag)
    )
