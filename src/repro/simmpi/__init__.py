"""Discrete-event message-passing runtime (the substrate's "MPI").

Servet's communication benchmarks are MPI programs; this package
provides the runtime they run on in our reproduction: generator-based
processes placed on specific cores of a simulated cluster, blocking
send/recv with eager/rendezvous protocol semantics, collectives, and a
virtual clock driven by the :mod:`repro.netsim` cost models with dynamic
per-layer contention.
"""

from .events import Engine
from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Handle,
    Rank,
    World,
    WorldResult,
)
from .primitives import (
    ConcurrentResult,
    concurrent_exchanges,
    concurrent_transfers,
    pingpong_latency,
)

__all__ = [
    "Engine",
    "ANY_SOURCE",
    "ANY_TAG",
    "Handle",
    "Rank",
    "World",
    "WorldResult",
    "ConcurrentResult",
    "concurrent_exchanges",
    "concurrent_transfers",
    "pingpong_latency",
]
