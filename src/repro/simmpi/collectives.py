"""Collective operations for the simulated MPI.

Implemented as generator helpers over point-to-point requests, with the
standard algorithms of production MPI libraries: dissemination barrier,
binomial-tree broadcast, flat gather and ring allgather.  Used by the
autotuning examples to show that the placement advice derived from a
Servet report shortens real (virtual-time) collective executions.
"""

from __future__ import annotations

from .comm import Rank


def barrier(rank: Rank, tag: int = 900_000):
    """Dissemination barrier: ceil(log2(P)) rounds of pairwise signals."""
    size = rank.size
    if size == 1:
        return
    step = 1
    round_idx = 0
    while step < size:
        dest = (rank.id + step) % size
        src = (rank.id - step) % size
        yield rank.send(dest, 1, tag=tag + round_idx)
        yield rank.recv(src, tag=tag + round_idx)
        step *= 2
        round_idx += 1


def bcast(rank: Rank, root: int, nbytes: int, tag: int = 910_000):
    """Binomial-tree broadcast of ``nbytes`` from ``root``.

    The classic MPICH mask walk: a rank receives from the peer that
    differs in its lowest set (relative) bit, then forwards to every
    relative rank obtained by setting a lower bit.
    """
    size = rank.size
    if size == 1:
        return
    rel = (rank.id - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            parent = (root + (rel ^ mask)) % size
            yield rank.recv(parent, tag=tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < size:
            child = (root + rel + mask) % size
            yield rank.send(child, nbytes, tag=tag)
        mask >>= 1


def gather(rank: Rank, root: int, nbytes: int, tag: int = 920_000):
    """Flat gather: every non-root sends ``nbytes`` to ``root``."""
    if rank.size == 1:
        return
    if rank.id == root:
        for _ in range(rank.size - 1):
            yield rank.recv(tag=tag)
    else:
        yield rank.send(root, nbytes, tag=tag)


def allgather(rank: Rank, nbytes: int, tag: int = 930_000):
    """Ring allgather: P-1 steps, each forwarding one block."""
    size = rank.size
    if size == 1:
        return
    right = (rank.id + 1) % size
    left = (rank.id - 1) % size
    for step in range(size - 1):
        yield rank.send(right, nbytes, tag=tag + step)
        yield rank.recv(left, tag=tag + step)


def reduce(rank: Rank, root: int, nbytes: int, tag: int = 940_000):
    """Binomial-tree reduction to ``root`` (mirror image of bcast)."""
    size = rank.size
    if size == 1:
        return
    rel = (rank.id - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            parent = (root + (rel ^ mask)) % size
            yield rank.send(parent, nbytes, tag=tag)
            return
        child_rel = rel | mask
        if child_rel < size and child_rel != rel:
            child = (root + child_rel) % size
            yield rank.recv(child, tag=tag)
        mask <<= 1


def scatter(rank: Rank, root: int, nbytes: int, tag: int = 950_000):
    """Flat scatter: ``root`` sends one block to every other rank."""
    if rank.size == 1:
        return
    if rank.id == root:
        for other in range(rank.size):
            if other != root:
                yield rank.send(other, nbytes, tag=tag)
    else:
        yield rank.recv(root, tag=tag)


def alltoall(rank: Rank, nbytes: int, tag: int = 960_000):
    """All-to-all exchange in P-1 rounds.

    Power-of-two sizes use the XOR pairwise schedule (deadlock-free
    under any protocol).  Other sizes use the ring-shift schedule with
    a pre-posted non-blocking receive per round, which keeps even
    rendezvous-sized rounds deadlock-free (the real-MPI idiom).
    """
    size = rank.size
    if size == 1:
        return
    power_of_two = size & (size - 1) == 0
    for step in range(1, size):
        if power_of_two:
            peer = rank.id ^ step
            if rank.id < peer:
                yield rank.send(peer, nbytes, tag=tag + step)
                yield rank.recv(peer, tag=tag + step)
            else:
                yield rank.recv(peer, tag=tag + step)
                yield rank.send(peer, nbytes, tag=tag + step)
        else:
            dst = (rank.id + step) % size
            src = (rank.id - step) % size
            handle = yield rank.irecv(src, tag=tag + step)
            yield rank.send(dst, nbytes, tag=tag + step)
            yield rank.wait(handle)


def hierarchical_bcast(
    rank: Rank,
    root: int,
    nbytes: int,
    groups: list[list[int]],
    tag: int = 970_000,
):
    """Two-level broadcast: root -> group leaders -> group members.

    ``groups`` partitions the ranks (typically one group per node, as
    derived from the measured communication layers); the leader of the
    root's group is the root itself.  This is the classic SMP-cluster
    optimization ([5]-[7] in the paper): exactly one message crosses
    the slow layer per remote group.
    """
    my_group = next(g for g in groups if rank.id in g)
    leader = root if root in my_group else min(my_group)
    if rank.id == root:
        for group in groups:
            if root in group:
                continue
            yield rank.send(min(group), nbytes, tag=tag)
    elif rank.id == leader:
        yield rank.recv(root, tag=tag)
    # Intra-group flat broadcast from the leader.
    if rank.id == leader:
        for member in my_group:
            if member != leader and member != root:
                yield rank.send(member, nbytes, tag=tag + 1)
    elif rank.id != root:
        yield rank.recv(leader, tag=tag + 1)
