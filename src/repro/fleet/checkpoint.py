"""Fleet-granularity checkpoints: survive coordinator death.

The suite already checkpoints *within* one machine's run
(:class:`repro.resilience.checkpoint.SuiteCheckpoint`); a fleet survey
adds a layer above it.  :class:`FleetCheckpoint` records every
hardware class that reached a *terminal* state — measured, failed, or
fully quarantined — together with the evidence (report payload, error
chain, quarantined members).  The coordinator rewrites it atomically
after each class completes, so a killed survey resumes by re-queuing
only the classes that never finished; at noise=0 the resumed survey's
report is byte-identical to an uninterrupted one.

The checkpoint embeds the fleet spec's fingerprint: resuming against a
different fleet (renamed machines, changed options, different noise)
is refused with :class:`~repro.errors.CheckpointError` rather than
silently mixing two surveys' results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CheckpointError
from ..ioutils import atomic_write_text

__all__ = ["FLEET_CHECKPOINT_VERSION", "FleetCheckpoint"]

FLEET_CHECKPOINT_VERSION = 1

#: Class states a checkpoint may record (non-terminal classes are
#: simply absent — that is what "re-queue on resume" means).
_TERMINAL_STATUSES = ("measured", "failed", "quarantined")


@dataclass
class FleetCheckpoint:
    """Everything needed to resume a half-finished survey.

    ``classes`` maps hardware-class key to a terminal record::

        {
          "status": "measured" | "failed" | "quarantined",
          "measured_machine": str | None,
          "attempts": int,
          "errors": [str, ...],
          "report": {...} | None,          # ServetReport.to_dict()
          "fingerprint": {...} | None,     # digest + inputs
          "report_degraded": bool,
          "quarantined_members": [str, ...],
        }

    ``quarantined`` maps machine id to the reason it was quarantined
    (fleet-wide, so resumed surveys never re-trust a bad machine).
    """

    fleet_fingerprint: str
    fleet_name: str
    classes: dict[str, dict] = field(default_factory=dict)
    quarantined: dict[str, str] = field(default_factory=dict)
    version: int = FLEET_CHECKPOINT_VERSION

    def record_class(self, key: str, record: dict) -> None:
        status = record.get("status")
        if status not in _TERMINAL_STATUSES:
            raise CheckpointError(
                f"fleet checkpoint only records terminal classes; "
                f"{key[:12]} has status {status!r}"
            )
        self.classes[key] = record

    def matches(self, fleet_fingerprint: str) -> None:
        """Refuse to resume against a different fleet."""
        if self.fleet_fingerprint != fleet_fingerprint:
            raise CheckpointError(
                f"checkpoint belongs to fleet {self.fleet_name!r} "
                f"({self.fleet_fingerprint[:12]}), not to this fleet "
                f"({fleet_fingerprint[:12]}); refusing to mix surveys"
            )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "fleet_fingerprint": self.fleet_fingerprint,
            "fleet_name": self.fleet_name,
            "classes": self.classes,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetCheckpoint":
        try:
            version = int(data["version"])
            if version != FLEET_CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported fleet checkpoint version {version} "
                    f"(this library writes v{FLEET_CHECKPOINT_VERSION})"
                )
            return cls(
                fleet_fingerprint=str(data["fleet_fingerprint"]),
                fleet_name=str(data["fleet_name"]),
                classes={str(k): dict(v) for k, v in data["classes"].items()},
                quarantined={
                    str(k): str(v) for k, v in data.get("quarantined", {}).items()
                },
                version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed fleet checkpoint: {exc}") from exc

    def save(self, path: str | Path) -> None:
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FleetCheckpoint":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot load fleet checkpoint {path}: {exc}"
            ) from exc
        return cls.from_dict(data)
