"""The fleet report: one document describing a whole installation.

Where :class:`~repro.core.report.ServetReport` answers "what is this
machine like", :class:`FleetReport` answers "what is this *site* like"
— which hardware classes exist, which machine represents each, who is
degraded, failed, or quarantined, and how much measurement the
fingerprint dedup saved.

Two canonical forms, following the repo's convention for the suite
report:

- :meth:`to_dict` is the full document, including volatile accounting
  (wall/logical timing, protocol counters, attempt counts, error
  chains).
- :meth:`survey_dict` is the *measured content only*: machine
  statuses, class membership, and each class's
  ``ServetReport.measurement_dict()``.  Two surveys of the same fleet
  at noise=0 — one fault-free, one with crashes and stragglers — are
  compared on this form, and must agree for every surviving machine;
  a kill+resume survey must agree on it entirely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.report import ServetReport
from ..errors import FleetError
from ..ioutils import atomic_write_text

__all__ = ["FleetReport", "MACHINE_STATUSES"]

#: Per-machine outcomes a survey can assign.
MACHINE_STATUSES = ("ok", "degraded", "failed", "quarantined", "pending")


@dataclass
class FleetReport:
    """Outcome of one fleet survey."""

    fleet: str
    fleet_fingerprint: str
    #: class key -> {name, machines, status, measured_machine, attempts,
    #:               errors, report (dict|None), report_degraded,
    #:               quarantined_members}
    classes: dict[str, dict] = field(default_factory=dict)
    #: machine id -> one of :data:`MACHINE_STATUSES`.
    machines: dict[str, str] = field(default_factory=dict)
    dedup: dict = field(default_factory=dict)
    counts: dict = field(default_factory=dict)
    timing: dict = field(default_factory=dict)
    protocol: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for machine, status in self.machines.items():
            if status not in MACHINE_STATUSES:
                raise FleetError(
                    f"machine {machine!r} has unknown status {status!r}"
                )

    @property
    def complete(self) -> bool:
        """True when no machine was left pending (no drain mid-survey)."""
        return all(s != "pending" for s in self.machines.values())

    def class_report(self, key: str) -> ServetReport | None:
        """The measured report of one class (None if never measured)."""
        record = self.classes.get(key)
        if record is None:
            raise FleetError(f"fleet report has no class {key[:12]!r}")
        if record.get("report") is None:
            return None
        return ServetReport.from_dict(record["report"])

    def report_for(self, machine_id: str) -> ServetReport | None:
        """The report a machine inherits from its class representative."""
        for key, record in self.classes.items():
            if machine_id in record["machines"]:
                return self.class_report(key)
        raise FleetError(f"fleet report has no machine {machine_id!r}")

    # -- canonical forms ---------------------------------------------------

    def survey_dict(self) -> dict:
        """The measured content only — no scheduling accounting.

        Drops timing, protocol counters, attempt counts, error chains,
        and the identity of the representative (a lease expiry or a
        quarantine promotion may change *who* was measured without
        changing *what* identical hardware reports).  Per-class reports
        are reduced to ``measurement_dict()``.
        """
        classes = {}
        for key, record in self.classes.items():
            report = record.get("report")
            if report is not None:
                report = ServetReport.from_dict(report).measurement_dict()
            classes[key] = {
                "name": record["name"],
                "machines": list(record["machines"]),
                "status": record["status"],
                "quarantined_members": list(record.get("quarantined_members", [])),
                "report": report,
            }
        return {
            "fleet": self.fleet,
            "fleet_fingerprint": self.fleet_fingerprint,
            "machines": dict(self.machines),
            "counts": dict(self.counts),
            "dedup": dict(self.dedup),
            "classes": classes,
        }

    def to_dict(self) -> dict:
        return {
            "fleet": self.fleet,
            "fleet_fingerprint": self.fleet_fingerprint,
            "classes": self.classes,
            "machines": self.machines,
            "dedup": self.dedup,
            "counts": self.counts,
            "timing": self.timing,
            "protocol": self.protocol,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetReport":
        try:
            return cls(
                fleet=str(data["fleet"]),
                fleet_fingerprint=str(data["fleet_fingerprint"]),
                classes={str(k): dict(v) for k, v in data["classes"].items()},
                machines={str(k): str(v) for k, v in data["machines"].items()},
                dedup=dict(data.get("dedup", {})),
                counts=dict(data.get("counts", {})),
                timing=dict(data.get("timing", {})),
                protocol=dict(data.get("protocol", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed fleet report: {exc}") from exc

    def save(self, path: str | Path) -> None:
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FleetReport":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetError(f"cannot load fleet report {path}: {exc}") from exc
        return cls.from_dict(data)

    # -- presentation ------------------------------------------------------

    def summary(self) -> str:
        """Human-readable digest (``servet fleet status`` output)."""
        lines = [
            f"Fleet survey of {self.fleet!r}: "
            f"{len(self.machines)} machine(s) in {len(self.classes)} "
            f"hardware class(es)"
        ]
        counts = {s: self.counts.get(s, 0) for s in MACHINE_STATUSES}
        lines.append(
            "Machines: "
            + ", ".join(f"{counts[s]} {s}" for s in MACHINE_STATUSES if counts[s])
        )
        ratio = self.dedup.get("ratio")
        if ratio:
            lines.append(
                f"Dedup: {self.dedup.get('measured', 0)} measurement(s) "
                f"cover {self.dedup.get('machines', 0)} machine(s) "
                f"({ratio:.1f}x)"
            )
        if self.timing:
            lines.append(
                f"Timing: {self.timing.get('logical_seconds', 0.0):.0f}s "
                f"logical, {self.timing.get('wall_seconds', 0.0):.1f}s wall"
            )
        for key, record in self.classes.items():
            status = record["status"]
            detail = f"{len(record['machines'])} machine(s)"
            if record.get("measured_machine"):
                detail += f", measured on {record['measured_machine']}"
            if record.get("quarantined_members"):
                detail += (
                    f", quarantined: {', '.join(record['quarantined_members'])}"
                )
            lines.append(f"  {record['name']} [{status}]: {detail}")
            if status == "failed" and record.get("errors"):
                lines.append(f"    last error: {record['errors'][-1]}")
        if not self.complete:
            pending = [m for m, s in self.machines.items() if s == "pending"]
            lines.append(
                f"Survey incomplete: {len(pending)} machine(s) pending "
                "(resume with `servet fleet resume`)"
            )
        return "\n".join(lines)
