"""Typed coordinator/worker message protocol for fleet surveys.

The fleet layer is a rank-0-style work-distribution loop in the
panda-yoda Yoda/Droid mold: a single coordinator owns the job queue,
workers pull work with ``JOB_REQUEST`` and push results back, and every
exchange is a typed :class:`Message` rather than an ad-hoc dict.  The
current transport is in-process (the coordinator's discrete-event
loop), but the protocol is serialization-clean — ``encode``/``decode``
round-trip every message through canonical JSON — so an MPI or socket
transport could carry the very same frames.

Message types
-------------

- ``JOB_REQUEST``   worker → coordinator: "I am idle, give me work."
- ``JOB_DISPATCH``  coordinator → worker: a survey job plus its lease.
- ``NO_MORE_JOBS``  coordinator → worker: queue empty, stay idle.
- ``HEARTBEAT``     worker → coordinator: job liveness (extends the
  lease; carries the phase currently measuring).
- ``RESULT``        worker → coordinator: the finished ``ServetReport``.
- ``FAILURE``       worker → coordinator: the suite raised; carries the
  error text for the machine's error chain.
- ``DRAIN``         coordinator → worker: finish what you hold, then
  stop requesting (graceful shutdown).

Every type declares the payload fields it requires; constructing or
decoding a message that violates the contract raises
:class:`~repro.errors.FleetProtocolError` — a malformed frame is a bug
surfaced at the boundary, never a KeyError three layers deep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import FleetProtocolError
from ..ioutils import canonical_json

__all__ = [
    "COORDINATOR",
    "DRAIN",
    "FAILURE",
    "HEARTBEAT",
    "JOB_DISPATCH",
    "JOB_REQUEST",
    "MESSAGE_TYPES",
    "Message",
    "NO_MORE_JOBS",
    "RESULT",
]

#: The coordinator's well-known address (the "rank 0" of the fleet).
COORDINATOR = "coordinator"

JOB_REQUEST = "JOB_REQUEST"
JOB_DISPATCH = "JOB_DISPATCH"
NO_MORE_JOBS = "NO_MORE_JOBS"
HEARTBEAT = "HEARTBEAT"
RESULT = "RESULT"
FAILURE = "FAILURE"
DRAIN = "DRAIN"

#: Every type the protocol knows, in documentation order.
MESSAGE_TYPES: tuple[str, ...] = (
    JOB_REQUEST,
    JOB_DISPATCH,
    NO_MORE_JOBS,
    HEARTBEAT,
    RESULT,
    FAILURE,
    DRAIN,
)

#: Payload fields each message type must carry.
REQUIRED_PAYLOAD: dict[str, tuple[str, ...]] = {
    JOB_REQUEST: (),
    JOB_DISPATCH: ("job",),
    NO_MORE_JOBS: (),
    HEARTBEAT: ("job_id", "phase"),
    RESULT: ("job_id", "report"),
    FAILURE: ("job_id", "error"),
    DRAIN: ("reason",),
}


@dataclass(frozen=True)
class Message:
    """One typed frame between the coordinator and a worker.

    ``time`` is the fleet's *logical* clock (seconds since survey
    start), not wall time: the discrete-event loop orders deliveries by
    it, and two surveys of the same fleet produce the same timeline.
    ``seq`` breaks ties deterministically.
    """

    type: str
    sender: str
    recipient: str
    seq: int = 0
    time: float = 0.0
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in MESSAGE_TYPES:
            raise FleetProtocolError(
                f"unknown message type {self.type!r}; expected one of "
                f"{', '.join(MESSAGE_TYPES)}"
            )
        if not isinstance(self.payload, dict):
            raise FleetProtocolError(
                f"{self.type} payload must be a dict, got "
                f"{type(self.payload).__name__}"
            )
        missing = [
            key for key in REQUIRED_PAYLOAD[self.type] if key not in self.payload
        ]
        if missing:
            raise FleetProtocolError(
                f"{self.type} message from {self.sender!r} is missing "
                f"required payload field(s): {', '.join(missing)}"
            )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "sender": self.sender,
            "recipient": self.recipient,
            "seq": self.seq,
            "time": self.time,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Message":
        try:
            return cls(
                type=str(data["type"]),
                sender=str(data["sender"]),
                recipient=str(data["recipient"]),
                seq=int(data["seq"]),
                time=float(data["time"]),
                payload=dict(data["payload"]),
            )
        except FleetProtocolError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetProtocolError(f"malformed message: {exc}") from exc

    def encode(self) -> str:
        """Wire form: canonical JSON (sorted keys, compact)."""
        return canonical_json(self.to_dict())

    @classmethod
    def decode(cls, text: str) -> "Message":
        """Inverse of :meth:`encode`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FleetProtocolError(f"undecodable message frame: {exc}") from exc
        if not isinstance(data, dict):
            raise FleetProtocolError(
                f"message frame must decode to an object, got "
                f"{type(data).__name__}"
            )
        return cls.from_dict(data)
