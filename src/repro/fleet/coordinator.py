"""The fleet coordinator: rank 0 of the characterization farm.

One :class:`FleetCoordinator` surveys a whole :class:`FleetSpec`.  It
owns the job queue (one job per *hardware class*, not per machine —
identical hardware yields identical reports at noise=0, so one
representative is measured and the result broadcast to the class), and
drives a population of :class:`~repro.fleet.worker.FleetWorker` state
machines through the typed protocol over a discrete-event loop: a heap
of ``(logical time, seq, event)`` entries, deterministic under a fixed
fleet seed even with crashes, stragglers, and flaky machines injected.

Robustness machinery, all observable through ``repro.obs.metrics``:

- **Leases.**  A dispatch carries a lease; every ``HEARTBEAT`` extends
  it.  A worker that dies mid-job stops heartbeating, the lease check
  fires, and the job is reassigned — at most
  :attr:`FleetConfig.max_attempts` times, after which the class is
  marked ``failed`` with its full error chain preserved.
- **Speculation.**  Logical job durations feed the windowed
  ``fleet.job_seconds`` histogram; a running job that exceeds
  ``speculate_factor`` times its p90 is re-dispatched to an idle
  worker.  The first ``RESULT`` wins; late duplicates are counted and
  ignored, never double-stored.
- **Quarantine.**  Every ``RESULT`` passes the plausibility validators
  (:func:`repro.fleet.validate.report_problems`).  A machine that
  returns :attr:`FleetConfig.quarantine_after` implausible reports is
  quarantined and the next member of its class promoted as
  representative.
- **Checkpoint/drain.**  After every terminal class the coordinator
  rewrites its :class:`~repro.fleet.checkpoint.FleetCheckpoint`;
  SIGINT (or :meth:`FleetCoordinator.request_drain`) lets in-flight
  jobs finish, dispatches nothing new, checkpoints, and returns a
  partial report whose unstarted machines are ``pending``.
"""

from __future__ import annotations

import heapq
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable

from ..core.report import ServetReport
from ..errors import CheckpointError, FleetError, FleetProtocolError
from ..obs.metrics import MetricsRegistry
from ..service.fingerprint import MachineFingerprint
from .checkpoint import FleetCheckpoint
from .protocol import (
    COORDINATOR,
    DRAIN,
    FAILURE,
    HEARTBEAT,
    JOB_DISPATCH,
    JOB_REQUEST,
    NO_MORE_JOBS,
    RESULT,
    Message,
)
from .report import FleetReport
from .spec import FleetSpec, MachineSpec, stable_seed
from .store import ShardedFleetStore
from .validate import report_problems
from .worker import FleetFaultPlan, FleetWorker

__all__ = ["FleetConfig", "FleetCoordinator"]


@dataclass(frozen=True)
class FleetConfig:
    """Coordinator tuning knobs (defaults suit simulated surveys)."""

    workers: int = 8
    lease_seconds: float = 120.0
    heartbeat_seconds: float = 30.0
    max_attempts: int = 4
    quarantine_after: int = 2
    speculate_after: int = 5
    speculate_factor: float = 1.5
    dispatch_overhead: float = 1.0
    default_expected_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise FleetError("a fleet needs >= 1 worker")
        if self.heartbeat_seconds <= 0 or self.lease_seconds <= 0:
            raise FleetError("lease and heartbeat intervals must be > 0")
        if self.lease_seconds <= self.heartbeat_seconds:
            raise FleetError(
                "lease_seconds must exceed heartbeat_seconds, or every "
                "healthy job would expire between heartbeats"
            )
        if self.max_attempts < 1:
            raise FleetError("max_attempts must be >= 1")
        if self.quarantine_after < 1:
            raise FleetError("quarantine_after must be >= 1")
        if self.speculate_after < 1:
            raise FleetError("speculate_after must be >= 1")
        if self.speculate_factor <= 1.0:
            raise FleetError("speculate_factor must be > 1")
        if self.dispatch_overhead < 0:
            raise FleetError("dispatch_overhead must be >= 0")
        if self.default_expected_seconds <= 0:
            raise FleetError("default_expected_seconds must be > 0")


class _ClassState:
    """Scheduling state of one hardware class."""

    __slots__ = (
        "key",
        "name",
        "members",
        "status",
        "representative",
        "attempts",
        "strikes",
        "errors",
        "report",
        "fingerprint",
        "report_degraded",
        "measured_machine",
        "quarantined_members",
        "speculated",
        "outstanding",
    )

    def __init__(self, key: str, name: str, members: list[str]) -> None:
        self.key = key
        self.name = name
        self.members = members
        self.status = "pending"  # pending|queued|running|measured|failed|quarantined
        self.representative = members[0]
        self.attempts = 0
        self.strikes: dict[str, int] = {}
        self.errors: list[str] = []
        self.report: dict | None = None
        self.fingerprint: dict | None = None
        self.report_degraded = False
        self.measured_machine: str | None = None
        self.quarantined_members: list[str] = []
        self.speculated = False
        #: job_id -> {"worker", "start", "lease", "speculative"}
        self.outstanding: dict[str, dict] = {}

    @property
    def terminal(self) -> bool:
        return self.status in ("measured", "failed", "quarantined")


class FleetCoordinator:
    """Survey a fleet; tolerate its faults; report its health."""

    def __init__(
        self,
        spec: FleetSpec,
        store: ShardedFleetStore | None = None,
        config: FleetConfig | None = None,
        fault_plan: FleetFaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
        checkpoint: str | Path | None = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.config = config if config is not None else FleetConfig()
        self.fault_plan = fault_plan
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.checkpoint_path = Path(checkpoint) if checkpoint is not None else None
        self.now = 0.0
        self._drain_requested = False
        self._drain_reason = ""
        self._draining = False
        self._machines: dict[str, MachineSpec] = {
            m.machine_id: m for m in spec.machines
        }
        self.classes: dict[str, _ClassState] = {
            key: _ClassState(key, members[0].hardware.name,
                             [m.machine_id for m in members])
            for key, members in spec.classes().items()
        }
        self.quarantined: dict[str, str] = {}
        self._jobs: dict[str, str] = {}  # job_id -> class key
        self._job_seq = 0
        self._queue: deque[tuple[str, bool]] = deque()
        self._idle: deque[str] = deque()
        self._heap: list[tuple[float, int, str, object]] = []
        self._push_seq = 0
        self.workers: dict[str, FleetWorker] = {}

    # -- public API --------------------------------------------------------

    def request_drain(self, reason: str = "drain requested") -> None:
        """Ask the survey to wind down gracefully (signal-handler safe)."""
        self._drain_requested = True
        self._drain_reason = reason

    def survey(
        self,
        resume: bool = False,
        on_class_complete: Callable[[_ClassState], None] | None = None,
    ) -> FleetReport:
        """Run the survey to completion (or to a requested drain).

        ``resume=True`` reloads the coordinator's checkpoint and
        re-queues only the classes that never reached a terminal state.
        ``on_class_complete`` is a test/progress hook invoked after
        each class terminates (it may call :meth:`request_drain`).
        """
        wall_start = time.perf_counter()
        if resume:
            self._apply_checkpoint()
        suite_cache: dict = {}
        self.workers = {
            f"w{i}": FleetWorker(
                f"w{i}", fault_plan=self.fault_plan, suite_cache=suite_cache
            )
            for i in range(self.config.workers)
        }
        for key, cls in self.classes.items():
            if not cls.terminal:
                cls.status = "queued"
                self._queue.append((key, False))
        for worker in self.workers.values():
            self._push_message(*worker.job_request(0.0))

        installed = self._install_sigint()
        try:
            self._run_loop(on_class_complete)
        finally:
            self._restore_sigint(installed)

        if self._draining and self.checkpoint_path is not None:
            self._write_checkpoint()
        report = self._build_report(time.perf_counter() - wall_start)
        if self.store is not None:
            report.save(self.store.root / "fleet_report.json")
        return report

    # -- event loop --------------------------------------------------------

    def _run_loop(
        self, on_class_complete: Callable[[_ClassState], None] | None
    ) -> None:
        budget = 2000 * len(self.spec.machines) + 100_000
        processed = 0
        self._on_class_complete = on_class_complete
        while self._heap:
            processed += 1
            if processed > budget:
                raise FleetError(
                    f"fleet event watchdog tripped after {budget} events "
                    "(a scheduling bug is spinning the loop)"
                )
            if self._drain_requested and not self._draining:
                self._begin_drain()
            when, _, kind, data = heapq.heappop(self._heap)
            self.now = max(self.now, when)
            if kind == "lease":
                self._on_lease_check(str(data))
                continue
            msg: Message = data  # type: ignore[assignment]
            self.metrics.counter("fleet.messages", type=msg.type).inc()
            if msg.recipient == COORDINATOR:
                self._on_coordinator_message(msg)
            else:
                worker = self.workers.get(msg.recipient)
                if worker is None:
                    raise FleetProtocolError(
                        f"frame addressed to unknown worker {msg.recipient!r}"
                    )
                for fire_at, out in worker.on_message(msg, self.now):
                    self._push_message(fire_at, out)

    def _push_message(self, fire_at: float, msg: Message) -> None:
        self._push_seq += 1
        heapq.heappush(self._heap, (fire_at, self._push_seq, "msg", msg))

    def _push_lease_check(self, fire_at: float, job_id: str) -> None:
        self._push_seq += 1
        heapq.heappush(self._heap, (fire_at, self._push_seq, "lease", job_id))

    def _send(self, msg_type: str, recipient: str, payload: dict) -> None:
        fire_at = self.now + self.config.dispatch_overhead
        self._push_message(
            fire_at,
            Message(
                type=msg_type,
                sender=COORDINATOR,
                recipient=recipient,
                time=fire_at,
                payload=payload,
            ),
        )

    # -- coordinator message handlers --------------------------------------

    def _on_coordinator_message(self, msg: Message) -> None:
        if msg.type == JOB_REQUEST:
            self._on_job_request(msg.sender)
        elif msg.type == HEARTBEAT:
            self._on_heartbeat(msg)
        elif msg.type == RESULT:
            self._on_result(msg)
        elif msg.type == FAILURE:
            self._on_failure(msg)
        else:
            raise FleetProtocolError(
                f"coordinator cannot handle {msg.type} frames"
            )

    def _on_job_request(self, worker_id: str) -> None:
        if self._draining:
            self._send(DRAIN, worker_id, {"reason": self._drain_reason})
            return
        entry = self._next_queued()
        if entry is None:
            if worker_id not in self._idle:
                self._idle.append(worker_id)
            self._send(NO_MORE_JOBS, worker_id, {})
            return
        key, speculative = entry
        self._dispatch(key, worker_id, speculative)

    def _next_queued(self) -> tuple[str, bool] | None:
        while self._queue:
            key, speculative = self._queue.popleft()
            cls = self.classes[key]
            if speculative:
                # A speculative duplicate only makes sense while the
                # original dispatch is still in flight.
                if cls.status == "running" and cls.outstanding:
                    return key, True
                continue
            if cls.status == "queued":
                return key, False
        return None

    def _dispatch(self, key: str, worker_id: str, speculative: bool) -> None:
        cls = self.classes[key]
        machine = self._machines[cls.representative]
        self._job_seq += 1
        job_id = f"{key[:8]}-j{self._job_seq}"
        deliver_at = self.now + self.config.dispatch_overhead
        job = {
            "job_id": job_id,
            "machine_id": machine.machine_id,
            "class_key": key,
            "class": machine.hardware.to_dict(),
            "seed": stable_seed(self.spec.seed, machine.machine_id),
            "noise": self.spec.noise,
            "options": self.spec.options,
            "expected_seconds": self._expected_seconds(),
            "heartbeat_seconds": self.config.heartbeat_seconds,
            "attempt": cls.attempts,
            "speculative": speculative,
        }
        self._push_message(
            deliver_at,
            Message(
                type=JOB_DISPATCH,
                sender=COORDINATOR,
                recipient=worker_id,
                time=deliver_at,
                payload={"job": job},
            ),
        )
        lease = deliver_at + self.config.lease_seconds
        cls.outstanding[job_id] = {
            "worker": worker_id,
            "start": deliver_at,
            "lease": lease,
            "speculative": speculative,
        }
        self._jobs[job_id] = key
        self._push_lease_check(lease, job_id)
        cls.status = "running"
        self.metrics.counter("fleet.dispatches").inc()
        if speculative:
            self.metrics.counter("fleet.speculative_dispatches").inc()
        self.metrics.gauge("fleet.in_flight").set(
            sum(len(c.outstanding) for c in self.classes.values())
        )

    def _expected_seconds(self) -> float:
        hist = self.metrics.histogram("fleet.job_seconds")
        if hist.count >= 1:
            p50 = hist.percentile(0.50)
            if p50 > 0:
                return p50
        return self.config.default_expected_seconds

    def _on_heartbeat(self, msg: Message) -> None:
        job_id = str(msg.payload["job_id"])
        key = self._jobs.get(job_id)
        if key is None:
            return
        cls = self.classes[key]
        record = cls.outstanding.get(job_id)
        if record is None or cls.terminal:
            return  # a stale heartbeat from a reassigned or finished job
        record["lease"] = self.now + self.config.lease_seconds
        self._push_lease_check(record["lease"], job_id)
        self._maybe_speculate(cls, record)

    def _maybe_speculate(self, cls: _ClassState, record: dict) -> None:
        if record["speculative"] or cls.speculated or self._draining:
            return
        hist = self.metrics.histogram("fleet.job_seconds")
        if hist.count < self.config.speculate_after:
            return
        p90 = hist.percentile(0.90)
        elapsed = self.now - record["start"]
        if p90 > 0 and elapsed > self.config.speculate_factor * p90:
            cls.speculated = True
            self.metrics.counter("fleet.stragglers_detected").inc()
            self._enqueue(cls.key, speculative=True, front=True)

    def _on_result(self, msg: Message) -> None:
        job_id = str(msg.payload["job_id"])
        machine_id = str(msg.payload["machine_id"])
        key = self._jobs.get(job_id)
        if key is None:
            return
        cls = self.classes[key]
        record = cls.outstanding.pop(job_id, None)
        if cls.terminal or record is None:
            # The speculation race resolved, or a lease already expired
            # and the job was reassigned: first accepted RESULT won,
            # this one is evidence of a duplicate, not a second sample.
            self.metrics.counter("fleet.duplicate_results").inc()
            return
        report = ServetReport.from_dict(msg.payload["report"])
        problems = report_problems(report)
        if problems:
            self.metrics.counter("fleet.implausible_results").inc()
            strikes = cls.strikes.get(machine_id, 0) + 1
            cls.strikes[machine_id] = strikes
            cls.errors.append(
                f"{machine_id}: implausible report "
                f"(strike {strikes}/{self.config.quarantine_after}): "
                + "; ".join(problems[:3])
            )
            if strikes >= self.config.quarantine_after:
                self._quarantine_machine(cls, machine_id, problems[0])
            else:
                self._requeue(cls)
            return
        cls.status = "measured"
        cls.report = msg.payload["report"]
        cls.fingerprint = dict(msg.payload["fingerprint"])
        cls.measured_machine = machine_id
        cls.report_degraded = report.degraded
        cls.outstanding.clear()
        self.metrics.counter("fleet.results_accepted").inc()
        self.metrics.histogram("fleet.job_seconds").observe(
            self.now - record["start"]
        )
        if self.store is not None:
            fingerprint = MachineFingerprint(
                digest=str(cls.fingerprint["digest"]),
                inputs=dict(cls.fingerprint["inputs"]),
            )
            self.store.put(fingerprint, report)
        self._class_completed(cls)

    def _on_failure(self, msg: Message) -> None:
        job_id = str(msg.payload["job_id"])
        key = self._jobs.get(job_id)
        if key is None:
            return
        cls = self.classes[key]
        record = cls.outstanding.pop(job_id, None)
        if cls.terminal or record is None:
            return
        self.metrics.counter("fleet.failures").inc()
        cls.attempts += 1
        cls.errors.append(
            f"{msg.payload.get('machine_id', cls.representative)}: "
            f"{msg.payload['error']} (attempt {cls.attempts}/"
            f"{self.config.max_attempts})"
        )
        self._retry_or_fail(cls)

    def _on_lease_check(self, job_id: str) -> None:
        key = self._jobs.get(job_id)
        if key is None:
            return
        cls = self.classes[key]
        record = cls.outstanding.get(job_id)
        if record is None or cls.terminal:
            return
        if self.now + 1e-9 < record["lease"]:
            return  # a heartbeat extended the lease; its own check is queued
        cls.outstanding.pop(job_id)
        self.metrics.counter("fleet.lease_expiries").inc()
        if not record["speculative"]:
            cls.attempts += 1
            cls.errors.append(
                f"{cls.representative}: lease expired on worker "
                f"{record['worker']} at t={self.now:g} "
                f"(attempt {cls.attempts}/{self.config.max_attempts})"
            )
        self._retry_or_fail(cls)

    def _retry_or_fail(self, cls: _ClassState) -> None:
        if cls.attempts >= self.config.max_attempts:
            cls.status = "failed"
            self.metrics.counter("fleet.classes_failed").inc()
            self._class_completed(cls)
        elif not cls.outstanding:
            self.metrics.counter("fleet.reassignments").inc()
            self._requeue(cls)
        # else: another dispatch of this class is still in flight and
        # carries the job from here.

    def _quarantine_machine(self, cls: _ClassState, machine_id: str, reason: str) -> None:
        if machine_id not in cls.quarantined_members:
            cls.quarantined_members.append(machine_id)
        self.quarantined[machine_id] = reason
        self.metrics.counter("fleet.quarantines").inc()
        survivors = [
            m for m in cls.members if m not in cls.quarantined_members
        ]
        if survivors:
            cls.representative = survivors[0]
            cls.attempts = 0
            cls.errors.append(
                f"quarantined {machine_id} ({reason}); promoted "
                f"{cls.representative} as class representative"
            )
            self._requeue(cls)
        else:
            cls.status = "quarantined"
            self._class_completed(cls)

    # -- queue plumbing ----------------------------------------------------

    def _requeue(self, cls: _ClassState) -> None:
        if self._draining:
            cls.status = "pending"
            return
        if cls.status == "queued":
            return
        cls.status = "queued"
        self._enqueue(cls.key, speculative=False, front=True)

    def _enqueue(self, key: str, speculative: bool, front: bool) -> None:
        if front:
            self._queue.appendleft((key, speculative))
        else:
            self._queue.append((key, speculative))
        self._dispatch_to_idle()

    def _dispatch_to_idle(self) -> None:
        while self._idle and not self._draining:
            entry = self._next_queued()
            if entry is None:
                return
            worker_id = self._idle.popleft()
            self._dispatch(entry[0], worker_id, entry[1])

    # -- completion, checkpointing, drain ----------------------------------

    def _class_completed(self, cls: _ClassState) -> None:
        if self.checkpoint_path is not None:
            self._write_checkpoint()
        hook = getattr(self, "_on_class_complete", None)
        if hook is not None:
            hook(cls)

    def _begin_drain(self) -> None:
        self._draining = True
        for key, speculative in list(self._queue):
            if not speculative:
                cls = self.classes[key]
                if not cls.terminal and not cls.outstanding:
                    cls.status = "pending"
        self._queue.clear()
        while self._idle:
            self._send(DRAIN, self._idle.popleft(), {"reason": self._drain_reason})

    def _write_checkpoint(self) -> None:
        checkpoint = FleetCheckpoint(
            fleet_fingerprint=self.spec.fingerprint(),
            fleet_name=self.spec.name,
            quarantined=dict(self.quarantined),
        )
        for key, cls in self.classes.items():
            if cls.terminal:
                checkpoint.record_class(
                    key,
                    {
                        "status": cls.status,
                        "measured_machine": cls.measured_machine,
                        "attempts": cls.attempts,
                        "errors": list(cls.errors),
                        "report": cls.report,
                        "fingerprint": cls.fingerprint,
                        "report_degraded": cls.report_degraded,
                        "quarantined_members": list(cls.quarantined_members),
                    },
                )
        checkpoint.save(self.checkpoint_path)

    def _apply_checkpoint(self) -> None:
        if self.checkpoint_path is None:
            raise FleetError("resume requested without a checkpoint path")
        checkpoint = FleetCheckpoint.load(self.checkpoint_path)
        checkpoint.matches(self.spec.fingerprint())
        for key, record in checkpoint.classes.items():
            cls = self.classes.get(key)
            if cls is None:
                raise CheckpointError(
                    f"checkpoint class {key[:12]} is not in this fleet"
                )
            cls.status = str(record["status"])
            cls.measured_machine = record.get("measured_machine")
            cls.attempts = int(record.get("attempts", 0))
            cls.errors = list(record.get("errors", []))
            cls.report = record.get("report")
            cls.fingerprint = record.get("fingerprint")
            cls.report_degraded = bool(record.get("report_degraded", False))
            cls.quarantined_members = list(record.get("quarantined_members", []))
            self.metrics.counter("fleet.classes_resumed").inc()
        self.quarantined.update(checkpoint.quarantined)

    # -- signal handling ---------------------------------------------------

    def _install_sigint(self):
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = signal.getsignal(signal.SIGINT)

        def _handler(signum, frame):  # pragma: no cover - needs a real signal
            self.request_drain("SIGINT")

        signal.signal(signal.SIGINT, _handler)
        return previous

    def _restore_sigint(self, previous) -> None:
        if previous is not None:
            signal.signal(signal.SIGINT, previous)

    # -- report assembly ---------------------------------------------------

    def _build_report(self, wall_seconds: float) -> FleetReport:
        machines: dict[str, str] = {}
        for cls in self.classes.values():
            for machine_id in cls.members:
                if machine_id in self.quarantined:
                    machines[machine_id] = "quarantined"
                elif cls.status == "measured":
                    machines[machine_id] = (
                        "degraded" if cls.report_degraded else "ok"
                    )
                elif cls.status == "failed":
                    machines[machine_id] = "failed"
                else:
                    machines[machine_id] = "pending"
        machines = {m: machines[m] for m in sorted(machines)}
        counts: dict[str, int] = {}
        for status in machines.values():
            counts[status] = counts.get(status, 0) + 1
        measured = sum(1 for c in self.classes.values() if c.status == "measured")
        classes = {
            key: {
                "name": cls.name,
                "machines": list(cls.members),
                "status": cls.status if cls.terminal else "pending",
                "measured_machine": cls.measured_machine,
                "attempts": cls.attempts,
                "errors": list(cls.errors),
                "report": cls.report,
                "report_degraded": cls.report_degraded,
                "quarantined_members": list(cls.quarantined_members),
            }
            for key, cls in self.classes.items()
        }
        value = self.metrics.value
        protocol = {
            "messages": {
                msg_type: int(value("counter", "fleet.messages", type=msg_type))
                for msg_type in (
                    JOB_REQUEST,
                    JOB_DISPATCH,
                    NO_MORE_JOBS,
                    HEARTBEAT,
                    RESULT,
                    FAILURE,
                    DRAIN,
                )
            },
            "dispatches": int(value("counter", "fleet.dispatches")),
            "speculative_dispatches": int(
                value("counter", "fleet.speculative_dispatches")
            ),
            "duplicate_results": int(value("counter", "fleet.duplicate_results")),
            "lease_expiries": int(value("counter", "fleet.lease_expiries")),
            "reassignments": int(value("counter", "fleet.reassignments")),
            "quarantines": int(value("counter", "fleet.quarantines")),
            "implausible_results": int(
                value("counter", "fleet.implausible_results")
            ),
            "stragglers_detected": int(
                value("counter", "fleet.stragglers_detected")
            ),
        }
        return FleetReport(
            fleet=self.spec.name,
            fleet_fingerprint=self.spec.fingerprint(),
            classes=classes,
            machines=machines,
            dedup={
                "machines": len(machines),
                "classes": len(self.classes),
                "measured": measured,
                "ratio": len(machines) / len(self.classes),
            },
            counts=counts,
            timing={
                "logical_seconds": self.now,
                "wall_seconds": wall_seconds,
            },
            protocol=protocol,
        )
