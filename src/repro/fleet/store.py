"""Sharded report storage for fleet-scale surveys.

A single :class:`~repro.service.registry.ReportRegistry` keeps every
digest directory under one root and serializes its global ``sequence``
counter through one file — fine for a workstation, a bottleneck for a
farm writing hundreds of class reports.  :class:`ShardedFleetStore`
splits the key space: fingerprint digests are hashed onto ``shards``
independent registries (``shard-00/`` ... ``shard-NN/``), each a full
:class:`ReportRegistry` with its own versioning, checksums, and
quarantine behavior.  Everything the registry already guarantees —
atomic durable writes, corrupt-version quarantine, schema migration —
is inherited per shard for free.

The shard count is persisted in ``store.json`` at the root; reopening
with a different count would silently mis-route digests, so it is
refused.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from collections.abc import Callable

from ..core.report import ServetReport
from ..errors import FleetError
from ..ioutils import atomic_write_text
from ..obs.metrics import MetricsRegistry
from ..service.fingerprint import MachineFingerprint
from ..service.registry import RegistryEntry, ReportRegistry

__all__ = ["ShardedFleetStore"]


class ShardedFleetStore:
    """Fingerprint-keyed report storage across ``shards`` registries."""

    def __init__(
        self,
        root: str | Path,
        shards: int = 16,
        clock: Callable[[], float] = time.time,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 1 <= shards <= 256:
            raise FleetError(f"shard count must be in [1, 256], got {shards}")
        self.root = Path(root)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self.shards = self._reconcile_shard_count(shards)
        self._registries: dict[int, ReportRegistry] = {}

    def _reconcile_shard_count(self, shards: int) -> int:
        meta_path = self.root / "store.json"
        if meta_path.exists():
            try:
                stored = int(json.loads(meta_path.read_text())["shards"])
            except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
                raise FleetError(
                    f"fleet store metadata {meta_path} is unreadable: {exc}"
                ) from exc
            if stored != shards:
                raise FleetError(
                    f"fleet store {self.root} was created with {stored} "
                    f"shard(s); reopening with {shards} would mis-route "
                    "digests"
                )
            return stored
        return shards

    def shard_of(self, digest: str) -> int:
        """Stable digest -> shard mapping (hex prefix, modulo)."""
        try:
            return int(digest[:4], 16) % self.shards
        except ValueError as exc:
            raise FleetError(f"not a fingerprint digest: {digest!r}") from exc

    def registry_for(self, digest: str) -> ReportRegistry:
        """The shard registry owning ``digest`` (created lazily)."""
        shard = self.shard_of(digest)
        registry = self._registries.get(shard)
        if registry is None:
            registry = ReportRegistry(
                self.root / f"shard-{shard:02d}",
                clock=self._clock,
                metrics=self.metrics,
            )
            self._registries[shard] = registry
        return registry

    # -- write side --------------------------------------------------------

    def put(self, fingerprint: MachineFingerprint, report: ServetReport) -> RegistryEntry:
        """Store one class report under its machine fingerprint."""
        self._ensure_meta()
        entry = self.registry_for(fingerprint.digest).put(fingerprint, report)
        self.metrics.counter("fleet.store_puts").inc()
        return entry

    def _ensure_meta(self) -> None:
        meta_path = self.root / "store.json"
        if not meta_path.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                meta_path, json.dumps({"shards": self.shards}, indent=2)
            )

    # -- read side ---------------------------------------------------------

    def get(self, digest: str) -> ServetReport:
        """Load the newest intact report stored under ``digest``."""
        return self.registry_for(digest).get(digest)

    def entries(self) -> list[RegistryEntry]:
        """Every stored version across all shards.

        Sorted by ``(shard, seq)`` — sequence counters are per-shard,
        so a global "latest" ordering does not exist by design.
        """
        found: list[RegistryEntry] = []
        for shard in self._shard_dirs():
            index = int(shard.name.split("-")[1])
            registry = self._registries.get(index)
            if registry is None:
                registry = ReportRegistry(
                    shard, clock=self._clock, metrics=self.metrics
                )
                self._registries[index] = registry
            found.extend(
                sorted(registry.entries(), key=lambda e: (e.seq, e.digest))
            )
        return found

    def quarantined_counts(self) -> dict[str, int]:
        """Quarantined files per digest, aggregated across shards."""
        counts: dict[str, int] = {}
        for shard in self._shard_dirs():
            index = int(shard.name.split("-")[1])
            registry = self._registries.get(index)
            if registry is None:
                registry = ReportRegistry(
                    shard, clock=self._clock, metrics=self.metrics
                )
                self._registries[index] = registry
            counts.update(registry.quarantined_counts())
        return counts

    def _shard_dirs(self) -> list[Path]:
        if not self.root.exists():
            return []
        return sorted(
            d
            for d in self.root.iterdir()
            if d.is_dir() and d.name.startswith("shard-")
        )
