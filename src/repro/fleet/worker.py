"""Fleet workers: the Droid side of the survey protocol.

A :class:`FleetWorker` holds no thread and no socket — it is a
deterministic state machine driven by the coordinator's discrete-event
loop.  ``on_message(msg, now)`` consumes one frame and returns the
*future* frames the worker will emit, each tagged with its logical
fire time: heartbeats while a job runs, then a ``RESULT`` (or nothing,
if the worker crashed mid-job) and the next ``JOB_REQUEST``.  Because
a worker's entire behavior is a pure function of its inputs and its
seeded RNG stream, every survey — including every crash and every
straggler — replays identically under the same fleet seed.

Fault injection lives in :class:`FleetFaultPlan`: per-dispatch crash
probability (the worker dies mid-job and respawns later), straggler
probability (the job takes ``straggle_factor`` times longer but keeps
heartbeating), and a set of *flaky* machines whose reports come back
corrupted — the case leases and retries cannot catch, handled by the
coordinator's plausibility quarantine instead.
"""

from __future__ import annotations

import copy
import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from ..backends.simulated import SimulatedBackend
from ..core.suite import ServetSuite
from ..errors import FleetError, FleetProtocolError
from ..ioutils import atomic_write_text
from ..service.fingerprint import fingerprint_of
from .protocol import (
    COORDINATOR,
    DRAIN,
    FAILURE,
    HEARTBEAT,
    JOB_DISPATCH,
    JOB_REQUEST,
    NO_MORE_JOBS,
    RESULT,
    Message,
)
from .spec import HardwareClass, stable_seed

__all__ = ["FleetFaultPlan", "FleetWorker"]

#: Ceiling on heartbeats per job: very long jobs stretch their
#: heartbeat interval rather than flooding the event heap.
_MAX_HEARTBEATS_PER_JOB = 200


@dataclass(frozen=True)
class FleetFaultPlan:
    """Deterministic fault schedule for a survey.

    ``crash_rate`` and ``straggler_rate`` are per-dispatch
    probabilities drawn from each worker's seeded stream;
    ``flaky_machines`` is an explicit machine-id set because flakiness
    is a property of the *machine*, not of the worker that happens to
    measure it.
    """

    seed: int = 0
    crash_rate: float = 0.0
    respawn_seconds: float = 300.0
    straggler_rate: float = 0.0
    straggle_factor: float = 10.0
    flaky_machines: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("crash_rate", "straggler_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FleetError(f"{name} must be in [0, 1], got {value!r}")
        if self.respawn_seconds <= 0:
            raise FleetError("respawn_seconds must be > 0")
        if self.straggle_factor <= 1.0:
            raise FleetError("straggle_factor must be > 1")
        object.__setattr__(
            self, "flaky_machines", tuple(sorted(set(self.flaky_machines)))
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crash_rate": self.crash_rate,
            "respawn_seconds": self.respawn_seconds,
            "straggler_rate": self.straggler_rate,
            "straggle_factor": self.straggle_factor,
            "flaky_machines": list(self.flaky_machines),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetFaultPlan":
        try:
            return cls(
                seed=int(data.get("seed", 0)),
                crash_rate=float(data.get("crash_rate", 0.0)),
                respawn_seconds=float(data.get("respawn_seconds", 300.0)),
                straggler_rate=float(data.get("straggler_rate", 0.0)),
                straggle_factor=float(data.get("straggle_factor", 10.0)),
                flaky_machines=tuple(data.get("flaky_machines", ())),
            )
        except (TypeError, ValueError) as exc:
            raise FleetError(f"malformed fleet fault plan: {exc}") from exc

    def save(self, path: str | Path) -> None:
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FleetFaultPlan":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetError(f"cannot load fault plan {path}: {exc}") from exc
        return cls.from_dict(data)


class FleetWorker:
    """One measurement host, driven entirely through the protocol.

    Parameters
    ----------
    worker_id:
        Protocol address (``w0``, ``w1``, ...).
    fault_plan:
        Optional fault schedule; ``None`` means a perfectly healthy
        worker.  The worker draws crash/straggle decisions from a
        stream seeded by ``(plan seed, worker id)`` — per *dispatch*,
        not per machine, so a retried job is not doomed to repeat its
        first attempt's crash.
    suite_cache:
        Shared ``machine_id -> measured result`` memo.  Re-dispatches
        of the same machine (lease-expiry retries, speculative
        duplicates) are deterministic repeats, so re-running the suite
        would burn wall time to compute an identical report.
    """

    def __init__(
        self,
        worker_id: str,
        fault_plan: FleetFaultPlan | None = None,
        suite_cache: dict | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.fault_plan = fault_plan
        self.suite_cache = suite_cache if suite_cache is not None else {}
        self.draining = False
        self.jobs_run = 0
        self.crashes = 0
        self._fault_rng = (
            random.Random(stable_seed(fault_plan.seed, "worker", worker_id))
            if fault_plan is not None
            else None
        )

    # -- protocol ---------------------------------------------------------

    def on_message(self, msg: Message, now: float) -> list[tuple[float, Message]]:
        """Consume one frame; return (fire_time, frame) pairs to emit."""
        if msg.recipient != self.worker_id:
            raise FleetProtocolError(
                f"worker {self.worker_id} received a frame addressed to "
                f"{msg.recipient!r}"
            )
        if msg.type == JOB_DISPATCH:
            return self._on_dispatch(msg.payload["job"], now)
        if msg.type == NO_MORE_JOBS:
            return []
        if msg.type == DRAIN:
            self.draining = True
            return []
        raise FleetProtocolError(
            f"worker {self.worker_id} cannot handle {msg.type} frames"
        )

    def job_request(self, at: float) -> tuple[float, Message]:
        """The worker's opening move (and its move after every job)."""
        return (
            at,
            Message(
                type=JOB_REQUEST,
                sender=self.worker_id,
                recipient=COORDINATOR,
                time=at,
            ),
        )

    # -- job execution ----------------------------------------------------

    def _on_dispatch(self, job: dict, now: float) -> list[tuple[float, Message]]:
        self.jobs_run += 1
        heartbeat_seconds = float(job["heartbeat_seconds"])
        expected = float(job["expected_seconds"])

        crash, straggle = False, False
        if self._fault_rng is not None:
            crash = self._fault_rng.random() < self.fault_plan.crash_rate
            straggle = self._fault_rng.random() < self.fault_plan.straggler_rate

        if crash:
            # The process dies mid-job: heartbeats stop, no RESULT ever
            # arrives, and the coordinator's lease expiry does the rest.
            # The suite is deliberately *not* run — a dead worker does
            # no work, and skipping it keeps fault drills cheap.
            self.crashes += 1
            crash_at = now + (0.2 + 0.6 * self._fault_rng.random()) * expected
            out = self._heartbeats(job, now, crash_at, heartbeat_seconds)
            respawn_at = crash_at + self.fault_plan.respawn_seconds
            out.append(self.job_request(respawn_at))
            return out

        try:
            report_dict, fingerprint, virtual_seconds = self._measure(job)
        except Exception as exc:  # surfaced to the coordinator, not raised
            fail_at = now + 1.0
            return [
                (
                    fail_at,
                    Message(
                        type=FAILURE,
                        sender=self.worker_id,
                        recipient=COORDINATOR,
                        time=fail_at,
                        payload={
                            "job_id": job["job_id"],
                            "machine_id": job["machine_id"],
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    ),
                ),
                self.job_request(fail_at),
            ]

        duration = max(1.0, virtual_seconds)
        if straggle:
            duration *= self.fault_plan.straggle_factor

        out = self._heartbeats(job, now, now + duration, heartbeat_seconds)
        done_at = now + duration
        out.append(
            (
                done_at,
                Message(
                    type=RESULT,
                    sender=self.worker_id,
                    recipient=COORDINATOR,
                    time=done_at,
                    payload={
                        "job_id": job["job_id"],
                        "machine_id": job["machine_id"],
                        "report": report_dict,
                        "fingerprint": fingerprint,
                        "virtual_seconds": virtual_seconds,
                    },
                ),
            )
        )
        out.append(self.job_request(done_at))
        return out

    def _heartbeats(
        self, job: dict, start: float, until: float, interval: float
    ) -> list[tuple[float, Message]]:
        span = until - start
        effective = max(interval, span / _MAX_HEARTBEATS_PER_JOB)
        out: list[tuple[float, Message]] = []
        t = start + effective
        while t < until:
            out.append(
                (
                    t,
                    Message(
                        type=HEARTBEAT,
                        sender=self.worker_id,
                        recipient=COORDINATOR,
                        time=t,
                        payload={
                            "job_id": job["job_id"],
                            "machine_id": job["machine_id"],
                            "phase": "running",
                        },
                    ),
                )
            )
            t += effective
        return out

    def _measure(self, job: dict) -> tuple[dict, dict, float]:
        """Run (or recall) the suite for one machine.

        Returns ``(report dict, fingerprint dict, virtual seconds)``.
        The memo key is the machine id: within one survey a machine's
        job parameters never change, so a repeat dispatch is by
        construction the same measurement.
        """
        machine_id = str(job["machine_id"])
        cached = self.suite_cache.get(machine_id)
        if cached is None:
            hardware = HardwareClass.from_dict(job["class"])
            options = dict(job["options"])
            backend = SimulatedBackend(
                hardware.build(),
                noise=float(job["noise"]),
                seed=int(job["seed"]),
            )
            suite = ServetSuite(
                backend,
                node_cores=options.get("node_cores"),
                comm_cores=options.get("comm_cores"),
                probe_tlb=bool(options.get("probe_tlb", True)),
                prune=str(options.get("prune", "off")),
            )
            report = suite.run(strict=False)
            fingerprint = fingerprint_of(backend, options=options)
            virtual = sum(v for v, _ in report.timings.values())
            cached = (
                report.to_dict(),
                {"digest": fingerprint.digest, "inputs": fingerprint.inputs},
                float(virtual),
            )
            self.suite_cache[machine_id] = cached
        report_dict, fingerprint_dict, virtual = cached
        report_dict = copy.deepcopy(report_dict)
        if self.fault_plan is not None and machine_id in self.fault_plan.flaky_machines:
            self._corrupt(report_dict)
        return report_dict, copy.deepcopy(fingerprint_dict), virtual

    @staticmethod
    def _corrupt(report_dict: dict) -> None:
        """What a machine with failing hardware hands back.

        Negated cache sizes and a negative memory bandwidth: complete,
        well-formed JSON that no real machine could produce — exactly
        the shape the plausibility validators exist to catch.
        """
        for cache in report_dict.get("caches", []):
            cache["size"] = -abs(int(cache["size"]))
        report_dict["memory_reference"] = -1.0
