"""Plausibility validation of fleet survey results.

A fleet has machines that are not merely slow but *wrong* — failing
DIMMs, broken clocks, firmware that lies.  Their suite runs complete,
so retries and leases never notice; the reports themselves are the
only evidence.  :func:`report_problems` re-uses the resilience layer's
:class:`~repro.resilience.policy.ReadingBounds` windows to ask of a
finished :class:`~repro.core.report.ServetReport`: could a real
machine have produced these numbers?

Only values that are *present* are judged — a degraded report whose
failed phase left a section empty is still plausible (its degradation
is already recorded in ``phase_status``); implausibility means an
existing number no hardware could produce.  Machines that repeatedly
return implausible reports are quarantined by the coordinator.
"""

from __future__ import annotations

import math

from ..core.report import ServetReport
from ..resilience.policy import ReadingBounds

__all__ = ["CACHE_BYTES_BOUNDS", "BANDWIDTH_BOUNDS", "LATENCY_BOUNDS", "report_problems"]

#: Cache sizes: one cache line .. 100 GiB (generous on purpose — these
#: windows catch broken readings, not unusual hardware).
CACHE_BYTES_BOUNDS = ReadingBounds(32.0, 1e11)
#: Bandwidths: 1 B/s .. 1 PB/s (matches the resilience policy default).
BANDWIDTH_BOUNDS = ReadingBounds(1.0, 1e15)
#: Latencies in seconds: 1 ps .. 1 hour (matches the resilience policy).
LATENCY_BOUNDS = ReadingBounds(1e-12, 3600.0)


def report_problems(report: ServetReport) -> list[str]:
    """Every implausible reading in ``report``, human-readably.

    An empty list means the report is plausible (which is weaker than
    *correct* — plausibility is the cheapest test that still catches
    negated sizes, NaN bandwidths, and powers-of-ten errors).
    """
    problems: list[str] = []

    previous_size = 0
    for cache in report.caches:
        defect = CACHE_BYTES_BOUNDS.problem(cache.size)
        if defect is not None:
            problems.append(f"L{cache.level} cache size: {defect}")
        elif cache.size <= previous_size:
            problems.append(
                f"L{cache.level} cache size {cache.size} not larger than "
                f"the level below ({previous_size})"
            )
        if defect is None:
            previous_size = cache.size

    if report.caches or report.memory_levels or report.memory_reference:
        defect = BANDWIDTH_BOUNDS.problem(report.memory_reference)
        if defect is not None:
            problems.append(f"memory reference bandwidth: {defect}")
    for i, level in enumerate(report.memory_levels):
        defect = BANDWIDTH_BOUNDS.problem(level.bandwidth)
        if defect is not None:
            problems.append(f"memory overhead level {i} bandwidth: {defect}")

    for layer in report.comm_layers:
        defect = LATENCY_BOUNDS.problem(layer.latency)
        if defect is not None:
            problems.append(f"communication layer {layer.index} latency: {defect}")
        for size, latency, bandwidth in layer.characterization:
            if LATENCY_BOUNDS.problem(latency) is not None:
                problems.append(
                    f"communication layer {layer.index} characterization at "
                    f"{size} B: {LATENCY_BOUNDS.problem(latency)}"
                )
                break

    if report.tlb_entries is not None and report.tlb_entries <= 0:
        problems.append(f"non-positive TLB entry count {report.tlb_entries}")

    for phase, (virtual, wall) in report.timings.items():
        for label, value in (("virtual", virtual), ("wall", wall)):
            if not math.isfinite(value) or value < 0:
                problems.append(f"{phase} {label} time {value!r} is not a duration")

    return problems
