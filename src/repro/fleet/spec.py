"""Fleet descriptions: hardware classes, machines, and generators.

A *fleet* is the population a site installs Servet on: hundreds of
machines, but typically only a handful of distinct hardware
generations.  The spec separates the two explicitly — a
:class:`HardwareClass` is one purchasable configuration (cores, cache
hierarchy, clock, memory), a :class:`MachineSpec` is one named box of
that class, and a :class:`FleetSpec` is the full inventory.  The
coordinator exploits the separation: identical hardware yields an
identical Servet report (at noise=0), so one representative per class
is measured and the result broadcast to the rest of the class.

:func:`generate_fleet` draws heterogeneous-but-plausible fleets from
quantized parameter palettes with a seeded RNG, so benchmarks and the
200-machine acceptance drill are reproducible.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import FleetError
from ..ioutils import atomic_write_text, canonical_json, sha256_hex
from ..service.fingerprint import normalize_options
from ..topology.builders import generic_smp
from ..topology.machine import Machine
from ..units import KiB, MiB

__all__ = [
    "FleetSpec",
    "HardwareClass",
    "MachineSpec",
    "generate_fleet",
    "stable_seed",
]


def stable_seed(*parts) -> int:
    """A deterministic 64-bit seed from arbitrary string-able parts.

    Process-stable (unlike ``hash``), so a retried or speculated job
    re-derives exactly the RNG stream of its first attempt.
    """
    return int(sha256_hex("|".join(str(p) for p in parts))[:16], 16)


@dataclass(frozen=True)
class HardwareClass:
    """One hardware configuration, shared by every machine of the class.

    ``levels`` follows the :func:`repro.topology.builders.generic_smp`
    convention: ``(size_bytes, ways, shared_by, latency_cycles)`` per
    cache level, L1 first.
    """

    name: str
    n_cores: int
    levels: tuple[tuple[int, int, int, float], ...]
    clock_hz: float
    mem_latency: float
    core_stream_bw: float

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise FleetError(f"hardware class {self.name!r} needs >= 1 core")
        if not self.levels:
            raise FleetError(f"hardware class {self.name!r} needs >= 1 cache level")

    def build(self) -> Machine:
        """The topology model every member of this class shares."""
        return generic_smp(
            name=self.name,
            n_cores=self.n_cores,
            levels=self.levels,
            clock_hz=self.clock_hz,
            mem_latency=self.mem_latency,
            core_stream_bw=self.core_stream_bw,
        )

    def key(self) -> str:
        """Digest of the hardware parameters (the dedup key).

        Deliberately excludes :attr:`name`: two classes with the same
        silicon are the same class whatever they are called.
        """
        data = self.to_dict()
        data.pop("name")
        return sha256_hex(canonical_json(data))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_cores": self.n_cores,
            "levels": [list(level) for level in self.levels],
            "clock_hz": self.clock_hz,
            "mem_latency": self.mem_latency,
            "core_stream_bw": self.core_stream_bw,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareClass":
        try:
            return cls(
                name=str(data["name"]),
                n_cores=int(data["n_cores"]),
                levels=tuple(
                    (int(s), int(w), int(sh), float(lat))
                    for s, w, sh, lat in data["levels"]
                ),
                clock_hz=float(data["clock_hz"]),
                mem_latency=float(data["mem_latency"]),
                core_stream_bw=float(data["core_stream_bw"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed hardware class: {exc}") from exc


@dataclass(frozen=True)
class MachineSpec:
    """One named machine of the fleet."""

    machine_id: str
    hardware: HardwareClass

    def to_dict(self) -> dict:
        return {"machine_id": self.machine_id, "hardware": self.hardware.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSpec":
        try:
            return cls(
                machine_id=str(data["machine_id"]),
                hardware=HardwareClass.from_dict(data["hardware"]),
            )
        except (KeyError, TypeError) as exc:
            raise FleetError(f"malformed machine spec: {exc}") from exc


@dataclass(frozen=True)
class FleetSpec:
    """The inventory one survey characterizes.

    ``seed`` feeds every derived RNG stream (per-machine backend seeds,
    worker fault draws) through :func:`stable_seed`; ``noise`` and
    ``options`` are survey-wide so every class is measured under the
    same conditions and reports stay comparable.
    """

    name: str
    machines: tuple[MachineSpec, ...]
    seed: int = 0
    noise: float = 0.0
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.machines:
            raise FleetError(f"fleet {self.name!r} has no machines")
        ids = [m.machine_id for m in self.machines]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise FleetError(
                f"fleet {self.name!r} has duplicate machine id(s): "
                + ", ".join(dupes)
            )
        if self.noise < 0:
            raise FleetError("fleet noise must be >= 0")
        # Normalize (and validate) suite options exactly once, here, so
        # every job payload and fingerprint sees the same dict.
        object.__setattr__(self, "options", normalize_options(self.options))

    def machine(self, machine_id: str) -> MachineSpec:
        for machine in self.machines:
            if machine.machine_id == machine_id:
                return machine
        raise FleetError(f"fleet {self.name!r} has no machine {machine_id!r}")

    def classes(self) -> dict[str, list[MachineSpec]]:
        """Members grouped by hardware-class key, ids sorted.

        Iteration order is sorted by key, so every traversal of the
        fleet (job queue construction, report assembly) is
        deterministic.
        """
        grouped: dict[str, list[MachineSpec]] = {}
        for machine in self.machines:
            grouped.setdefault(machine.hardware.key(), []).append(machine)
        return {
            key: sorted(grouped[key], key=lambda m: m.machine_id)
            for key in sorted(grouped)
        }

    def fingerprint(self) -> str:
        """Digest identifying this exact fleet + survey configuration.

        Fleet checkpoints embed it, so a checkpoint can never be
        resumed against a different fleet.
        """
        return sha256_hex(canonical_json(self.to_dict()))

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "machines": [m.to_dict() for m in self.machines],
            "seed": self.seed,
            "noise": self.noise,
            "options": self.options,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        try:
            return cls(
                name=str(data["name"]),
                machines=tuple(
                    MachineSpec.from_dict(m) for m in data["machines"]
                ),
                seed=int(data["seed"]),
                noise=float(data["noise"]),
                options=dict(data.get("options", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed fleet spec: {exc}") from exc

    def save(self, path: str | Path) -> None:
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FleetSpec":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise FleetError(f"cannot load fleet spec {path}: {exc}") from exc
        return cls.from_dict(data)


# -- fleet generation ------------------------------------------------------

#: Quantized parameter palettes.  Drawing from small discrete sets (a)
#: mirrors reality — machines come in SKUs, not from a continuum — and
#: (b) keeps every generated topology inside the regime the simulated
#: backend detects reliably.
_CORE_COUNTS = (2, 4)
_L1_SIZES = (16 * KiB, 32 * KiB, 64 * KiB)
_L1_WAYS = (4, 8)
_L1_LATENCIES = (2.0, 3.0, 4.0)
_L2_SIZES = (256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB)
_L2_WAYS = (8, 16)
_L2_LATENCIES = (12.0, 15.0, 20.0)
_MEM_LATENCIES = (180.0, 220.0, 250.0, 300.0)
_CLOCKS_HZ = (1.8e9, 2.0e9, 2.4e9, 2.8e9)
_STREAM_BWS = (2.0e9, 3.0e9, 4.0e9)


def _draw_class(rng: random.Random) -> HardwareClass:
    n_cores = rng.choice(_CORE_COUNTS)
    l2_shared_by = rng.choice([d for d in (2, 4) if n_cores % d == 0 and d <= n_cores])
    params = HardwareClass(
        name="pending",
        n_cores=n_cores,
        levels=(
            (rng.choice(_L1_SIZES), rng.choice(_L1_WAYS), 1, rng.choice(_L1_LATENCIES)),
            (
                rng.choice(_L2_SIZES),
                rng.choice(_L2_WAYS),
                l2_shared_by,
                rng.choice(_L2_LATENCIES),
            ),
        ),
        clock_hz=rng.choice(_CLOCKS_HZ),
        mem_latency=rng.choice(_MEM_LATENCIES),
        core_stream_bw=rng.choice(_STREAM_BWS),
    )
    # Re-create with the digest-derived name so equal silicon always
    # gets an equal (and human-recognizable) class name.
    return HardwareClass(
        name=f"hw-{params.key()[:8]}",
        n_cores=params.n_cores,
        levels=params.levels,
        clock_hz=params.clock_hz,
        mem_latency=params.mem_latency,
        core_stream_bw=params.core_stream_bw,
    )


def generate_fleet(
    n_machines: int,
    n_classes: int,
    seed: int = 0,
    name: str = "fleet",
    noise: float = 0.0,
    options: dict | None = None,
) -> FleetSpec:
    """A reproducible heterogeneous fleet for surveys and benchmarks.

    Draws ``n_classes`` *distinct* hardware classes from the quantized
    palettes and deals machines onto them round-robin, so every class
    has at least one member and the dedup ratio is exactly
    ``n_machines / n_classes``.  TLB probing defaults off — fleet
    surveys optimize for breadth over per-machine depth; pass
    ``options={"probe_tlb": True}`` to override.
    """
    if n_machines < 1:
        raise FleetError("a fleet needs >= 1 machine")
    if not 1 <= n_classes <= n_machines:
        raise FleetError(
            f"need 1 <= n_classes <= n_machines, got {n_classes} classes "
            f"for {n_machines} machines"
        )
    rng = random.Random(stable_seed(seed, "generate_fleet", name))
    classes: list[HardwareClass] = []
    seen: set[str] = set()
    attempts = 0
    while len(classes) < n_classes:
        attempts += 1
        if attempts > 1000 * n_classes:
            raise FleetError(
                f"could not draw {n_classes} distinct hardware classes "
                f"from the parameter palettes"
            )
        candidate = _draw_class(rng)
        if candidate.key() in seen:
            continue
        seen.add(candidate.key())
        classes.append(candidate)
    width = max(4, len(str(n_machines - 1)))
    machines = tuple(
        MachineSpec(machine_id=f"m{i:0{width}d}", hardware=classes[i % n_classes])
        for i in range(n_machines)
    )
    if options is None:
        options = {"probe_tlb": False}
    return FleetSpec(
        name=name, machines=machines, seed=seed, noise=noise, options=options
    )
