"""Fault-tolerant fleet characterization: survey many machines at once.

The Servet suite characterizes one machine; this package scales that
to an installation.  A :class:`FleetCoordinator` (rank 0) drives
:class:`FleetWorker` state machines over the typed message protocol in
:mod:`repro.fleet.protocol`, dedups machines by hardware fingerprint
so each class is measured once, survives worker crashes via leases and
bounded reassignment, re-dispatches stragglers speculatively,
quarantines machines whose reports fail plausibility validation, and
checkpoints after every finished class so a killed survey resumes
where it stopped.  Results land in a :class:`ShardedFleetStore`
(fingerprint-sharded report registries) and the overall outcome is a
:class:`FleetReport` of per-machine ``ok | degraded | failed |
quarantined | pending`` statuses.
"""

from .checkpoint import FLEET_CHECKPOINT_VERSION, FleetCheckpoint
from .coordinator import FleetConfig, FleetCoordinator
from .protocol import (
    COORDINATOR,
    DRAIN,
    FAILURE,
    HEARTBEAT,
    JOB_DISPATCH,
    JOB_REQUEST,
    MESSAGE_TYPES,
    NO_MORE_JOBS,
    RESULT,
    Message,
)
from .report import MACHINE_STATUSES, FleetReport
from .spec import FleetSpec, HardwareClass, MachineSpec, generate_fleet, stable_seed
from .store import ShardedFleetStore
from .validate import report_problems
from .worker import FleetFaultPlan, FleetWorker

__all__ = [
    "COORDINATOR",
    "DRAIN",
    "FAILURE",
    "FLEET_CHECKPOINT_VERSION",
    "FleetCheckpoint",
    "FleetConfig",
    "FleetCoordinator",
    "FleetFaultPlan",
    "FleetReport",
    "FleetSpec",
    "FleetWorker",
    "HEARTBEAT",
    "HardwareClass",
    "JOB_DISPATCH",
    "JOB_REQUEST",
    "MACHINE_STATUSES",
    "MESSAGE_TYPES",
    "MachineSpec",
    "Message",
    "NO_MORE_JOBS",
    "RESULT",
    "ShardedFleetStore",
    "generate_fleet",
    "report_problems",
    "stable_seed",
]
