"""Size and time unit helpers.

The Servet paper talks about cache sizes in KB/MB, latencies in
microseconds and bandwidths in MB/s or GB/s.  This module centralizes
parsing and formatting so benchmark output matches the paper's notation.

All byte quantities in this code base are plain ``int`` bytes; all times
are ``float`` seconds unless a function name says otherwise (e.g.
``cycles``); all bandwidths are ``float`` bytes/second.
"""

from __future__ import annotations

import re

from .errors import ConfigurationError

#: Number of bytes in one binary kilobyte/megabyte/gigabyte.
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse a human-readable size (``"32KB"``, ``"3MB"``, ``512``) to bytes.

    Integers pass through unchanged.  Binary units are used throughout
    (1 KB == 1024 B), matching the convention of the paper's figures.

    >>> parse_size("32KB")
    32768
    >>> parse_size("1.5MB")
    1572864
    """
    if isinstance(text, int):
        return text
    m = _SIZE_RE.match(text)
    if m is None:
        raise ConfigurationError(f"unparsable size: {text!r}")
    value = float(m.group(1))
    suffix = m.group(2).lower()
    if suffix not in _SUFFIXES:
        raise ConfigurationError(f"unknown size suffix in {text!r}")
    result = value * _SUFFIXES[suffix]
    # Round to whole bytes: formatted sizes carry only ~4 significant
    # digits ("1.001KB" means 1025 bytes, not an error).
    return int(round(result))


def format_size(nbytes: int | float) -> str:
    """Format bytes compactly (``32768 -> '32KB'``, ``1572864 -> '1.5MB'``).

    Chooses the largest unit that yields a value >= 1, trimming trailing
    zeros; this is the notation used on the paper's x axes.
    """
    nbytes = float(nbytes)
    for unit, factor in (("GB", GiB), ("MB", MiB), ("KB", KiB)):
        if abs(nbytes) >= factor:
            value = nbytes / factor
            if abs(value - round(value)) < 1e-9:
                return f"{int(round(value))}{unit}"
            return f"{value:.4g}{unit}"
    if abs(nbytes - round(nbytes)) < 1e-9:
        return f"{int(round(nbytes))}B"
    return f"{nbytes:.4g}B"


def format_time(seconds: float) -> str:
    """Format a duration using the natural unit (ns/us/ms/s/min)."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.4g}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.4g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.4g}ms"
    if seconds < 120.0:
        return f"{seconds:.4g}s"
    return f"{seconds / 60.0:.3g}min"


def format_bandwidth(bytes_per_second: float) -> str:
    """Format a bandwidth (``2.5e9 -> '2.33GB/s'``)."""
    return format_size(bytes_per_second) + "/s"


def is_power_of_two(n: int) -> bool:
    """True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0
