"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A machine/topology/model description is inconsistent.

    Examples: a cache whose size is not ``line_size * ways * sets``,
    a core id referenced by two processors, a bandwidth domain with
    non-positive capacity.
    """


class TopologyError(ConfigurationError):
    """A machine description uses a topology feature we cannot parse.

    Raised when loading a serialized machine that names an unknown
    cache-organization tag or core-class layout, so forward-incompatible
    files fail with the offending tag in the message instead of a bare
    ``KeyError``.
    """


class MeasurementError(ReproError):
    """A benchmark measurement could not be carried out.

    Raised by backends, e.g. when asked to traverse an array smaller
    than one stride, or to time communication between a core and itself.
    """


class MeasurementTimeout(MeasurementError):
    """A measurement exceeded its (virtual-time) deadline.

    Raised by fault injection / hardened backends when a measurement
    hangs; carries the virtual seconds that were burned waiting so the
    suite's Table I accounting stays honest.
    """

    def __init__(self, message: str, waited: float = 0.0) -> None:
        super().__init__(message)
        self.waited = waited


class DetectionError(ReproError):
    """A Servet detection algorithm could not produce an estimate.

    Raised e.g. when the mcalibrator curve contains no gradient peak at
    all (no cache visible in the probed range).
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state.

    Examples: deadlock (all processes blocked with no pending events),
    a receive that can never be matched, or time moving backwards.
    """


class WatchdogError(SimulationError):
    """A simulation watchdog tripped (event budget exhausted).

    Raised instead of spinning forever when a faulty communication
    model keeps generating events; the message names the stuck ranks
    and what they are blocked on.
    """


class CheckpointError(ReproError):
    """A suite checkpoint could not be written, read, or applied.

    Examples: a checkpoint file for a different machine/configuration,
    an unsupported checkpoint version, or corrupt JSON.
    """


class WorkloadError(ReproError):
    """A workload model request is malformed or unanswerable.

    Examples: an unknown synthetic-workload generator or parameter, a
    co-scheduling query over a report with no detected shared cache, or
    more workloads than shared-cache slots to place them on.
    """


class ServiceError(ReproError):
    """The tuning service could not answer or refresh.

    Examples: a backend without a cluster model to fingerprint, a query
    the loaded report cannot answer, an incremental refresh whose base
    report is missing.
    """


class FleetError(ReproError):
    """A fleet survey could not be planned, run, or resumed.

    Examples: a fleet spec with zero machines, a checkpoint belonging
    to a different fleet, or a survey asked to resume without a
    checkpoint path.
    """


class FleetProtocolError(FleetError):
    """A coordinator/worker message violates the typed protocol.

    Examples: an unknown message type, a payload missing the fields its
    type requires, or a decode of malformed JSON.
    """


class ServicedError(ServiceError):
    """The serving daemon or its wire protocol failed.

    Examples: a frame whose length prefix exceeds the protocol limit,
    a connection that closed mid-frame, malformed request/response
    JSON, an unknown query kind on the wire, or a client that could
    not reach the daemon at all (connection refused).
    """


class RegistryError(ServiceError):
    """A report-registry operation failed.

    Examples: an unknown or ambiguous fingerprint spec, a version file
    whose checksum does not match (the file is quarantined, then this
    is raised only if no intact version remains), an unsupported schema
    version with no registered migration.
    """
