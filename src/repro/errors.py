"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A machine/topology/model description is inconsistent.

    Examples: a cache whose size is not ``line_size * ways * sets``,
    a core id referenced by two processors, a bandwidth domain with
    non-positive capacity.
    """


class MeasurementError(ReproError):
    """A benchmark measurement could not be carried out.

    Raised by backends, e.g. when asked to traverse an array smaller
    than one stride, or to time communication between a core and itself.
    """


class DetectionError(ReproError):
    """A Servet detection algorithm could not produce an estimate.

    Raised e.g. when the mcalibrator curve contains no gradient peak at
    all (no cache visible in the probed range).
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state.

    Examples: deadlock (all processes blocked with no pending events),
    a receive that can never be matched, or time moving backwards.
    """
