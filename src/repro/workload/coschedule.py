"""Co-scheduling placement advisor over a measured sharing topology.

The last mile of the workload model: given K workload profiles and the
shared-cache topology a Servet run *measured* (the ``sharing_groups``
equivalence classes of a :class:`~repro.core.report.ServetReport`),
rank the ways of packing the workloads onto the shared-cache instances
by predicted contention.  Workloads placed in the same block co-run on
cores sharing one cache instance and are scored with
:func:`~repro.workload.contention.predict_corun`; workloads in
different blocks don't interact (the instances are disjoint by
construction — that is exactly what the shared-cache benchmark
detected).

The answer is a provenance-carrying ranked list: every option names its
blocks, the per-workload predicted slowdowns, and the worst/mean
scores; the provenance section records which detected cache level,
capacity, and model parameters produced the numbers, so a surprising
recommendation can be traced the same way ``servet explain`` traces a
detected cache size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..errors import WorkloadError
from .contention import CachePressureModel, CorunPrediction, predict_corun
from .generators import parse_workload, profile_workload
from .profile import ReuseProfile

#: Enumeration guard: partitions of K items grow like the Bell numbers,
#: so the advisor refuses absurd K instead of hanging.
MAX_WORKLOADS = 10


def enumerate_partitions(
    n_items: int, max_blocks: int, max_block_size: int
) -> list[tuple[tuple[int, ...], ...]]:
    """All set partitions of ``range(n_items)`` under the two bounds.

    Canonical form: blocks are ordered by their smallest member and
    each block's members ascend, so the enumeration is deterministic
    and duplicate-free (item 0 is always in the first block).
    """
    if n_items <= 0:
        raise WorkloadError("cannot partition zero workloads")
    if max_blocks * max_block_size < n_items:
        raise WorkloadError(
            f"{n_items} workloads cannot fit {max_blocks} shared-cache "
            f"instance(s) of {max_block_size} core(s)"
        )
    results: list[tuple[tuple[int, ...], ...]] = []

    def extend(item: int, blocks: list[list[int]]) -> None:
        if item == n_items:
            results.append(tuple(tuple(b) for b in blocks))
            return
        for block in blocks:
            if len(block) < max_block_size:
                block.append(item)
                extend(item + 1, blocks)
                block.pop()
        if len(blocks) < max_blocks:
            blocks.append([item])
            extend(item + 1, blocks)
            blocks.pop()

    extend(0, [])
    return results


@dataclass(frozen=True)
class PlacementOption:
    """One ranked assignment of workloads to shared-cache instances."""

    #: Workload indices per co-running block (canonical order).
    blocks: tuple[tuple[int, ...], ...]
    #: Per-block contention predictions (aligned with ``blocks``).
    predictions: tuple[CorunPrediction, ...]

    @property
    def worst_slowdown(self) -> float:
        return max(p.worst_slowdown for p in self.predictions)

    @property
    def mean_slowdown(self) -> float:
        slowdowns = [
            w.slowdown for p in self.predictions for w in p.workloads
        ]
        return sum(slowdowns) / len(slowdowns)

    def to_dict(self, names: Sequence[str]) -> dict:
        return {
            "blocks": [[names[i] for i in block] for block in self.blocks],
            "worst_slowdown": self.worst_slowdown,
            "mean_slowdown": self.mean_slowdown,
            "per_block": [p.to_dict() for p in self.predictions],
        }


class CoScheduler:
    """Ranks workload placements across disjoint shared-cache instances."""

    def __init__(
        self,
        profiles: Sequence[ReuseProfile],
        model: CachePressureModel,
        instances: int,
        group_size: int,
    ) -> None:
        if not profiles:
            raise WorkloadError("co-scheduler needs at least one workload")
        if len(profiles) > MAX_WORKLOADS:
            raise WorkloadError(
                f"co-scheduling {len(profiles)} workloads would enumerate "
                f"too many partitions (cap {MAX_WORKLOADS})"
            )
        if instances < 1 or group_size < 1:
            raise WorkloadError(
                "need at least one shared-cache instance with one core"
            )
        self.profiles = list(profiles)
        self.model = model
        self.instances = instances
        self.group_size = group_size

    def rank(self) -> list[PlacementOption]:
        """All feasible placements, best (lowest worst slowdown) first.

        Ties on the rounded scores break on the canonical block
        structure, so rankings are stable across platforms even when
        two placements are numerically equivalent.
        """
        options = [
            PlacementOption(
                blocks=blocks,
                predictions=tuple(
                    predict_corun(
                        self.model, [self.profiles[i] for i in block]
                    )
                    for block in blocks
                ),
            )
            for blocks in enumerate_partitions(
                len(self.profiles), self.instances, self.group_size
            )
        ]
        options.sort(
            key=lambda o: (
                round(o.worst_slowdown, 9),
                round(o.mean_slowdown, 9),
                o.blocks,
            )
        )
        return options


@dataclass(frozen=True)
class CoScheduleAdvice:
    """The full, serializable answer to a co-scheduling query."""

    system: str
    level: int
    names: tuple[str, ...]
    options: tuple[PlacementOption, ...]
    provenance: dict = field(default_factory=dict)

    @property
    def best(self) -> PlacementOption:
        return self.options[0]

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "level": self.level,
            "workloads": list(self.names),
            "ranked": [o.to_dict(self.names) for o in self.options],
            "best": self.best.to_dict(self.names),
            "provenance": dict(self.provenance),
        }


def _pick_shared_level(report, level: int | None):
    """The report cache level to model contention on.

    Default: the outermost level with detected sharing groups — the
    cache multi-tenant placement actually fights over.
    """
    shared = [c for c in report.caches if c.sharing_groups]
    if level is not None:
        for cache in report.caches:
            if cache.level == level:
                if not cache.sharing_groups:
                    raise WorkloadError(
                        f"cache level {level} of {report.system} was "
                        "detected as private; co-scheduling needs a "
                        "shared level"
                    )
                return cache
        raise WorkloadError(
            f"report for {report.system} has no cache level {level}"
        )
    if not shared:
        raise WorkloadError(
            f"report for {report.system} detected no shared cache level; "
            "nothing to co-schedule against"
        )
    return max(shared, key=lambda c: c.level)


def co_schedule(
    report,
    workloads: Sequence[str],
    seed: int = 0,
    level: int | None = None,
    instances: int | None = None,
    top: int = 5,
    model: CachePressureModel | None = None,
    metrics=None,
) -> CoScheduleAdvice:
    """Rank placements of ``workloads`` on a report's sharing topology.

    ``instances`` restricts how many shared-cache instances are
    available (fewer instances force co-running — the interesting
    case); default is every instance the report detected.  ``model``
    overrides the cache-pressure parameters derived from the detected
    level (capacity from the measured size, default line size and
    latency ratio).
    """
    if not workloads:
        raise WorkloadError("co_schedule needs at least one workload spec")
    if top < 1:
        raise WorkloadError("top must be >= 1")
    cache = _pick_shared_level(report, level)
    available = len(cache.sharing_groups)
    group_size = min(len(g) for g in cache.sharing_groups)
    if instances is None:
        instances = available
    if not (1 <= instances <= available):
        raise WorkloadError(
            f"report for {report.system} detected {available} shared "
            f"L{cache.level} instance(s); cannot place onto {instances}"
        )
    if model is None:
        model = CachePressureModel(capacity_lines=cache.size // 64)
    parsed = [parse_workload(spec) for spec in workloads]
    profiles = [profile_workload(w, seed=seed, metrics=metrics) for w in parsed]
    scheduler = CoScheduler(profiles, model, instances, group_size)
    options = scheduler.rank()
    names = tuple(p.name for p in profiles)
    provenance = {
        "method": "reuse-cdf-composition",
        "cache_level": cache.level,
        "cache_size": cache.size,
        "cache_method": cache.method,
        "sharing_groups": [list(g) for g in cache.sharing_groups],
        "instances": instances,
        "group_size": group_size,
        "seed": int(seed),
        "model": model.to_dict(),
        "profiles": {
            p.name: {
                "accesses": p.accesses,
                "distinct_lines": p.distinct_lines,
                "solo_miss_ratio": p.miss_ratio(model.capacity_lines),
            }
            for p in profiles
        },
        "partitions_scored": len(options),
    }
    return CoScheduleAdvice(
        system=report.system,
        level=cache.level,
        names=names,
        options=tuple(options[:top]),
        provenance=provenance,
    )
