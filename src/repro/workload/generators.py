"""Canonical synthetic workloads with seeded, cacheable profiles.

Four archetypes cover the locality spectrum the co-scheduling advisor
cares about:

- ``streaming`` — a cyclic sequential sweep: every reuse needs the whole
  footprint resident (worst cache citizen, immune to nothing).
- ``blocked`` — a tiled sweep (each block revisited ``repeats`` times
  before moving on): short distances dominate, the classic cache-friendly
  transform Servet's tiling advice produces.
- ``zipf`` — a pointer-chase over Zipf-popular lines: a hot head with a
  heavy tail, the shape of key-value and graph workloads.
- ``stencil`` — a halo sweep (each step touches ``2*halo + 1``
  neighbouring lines): tight short-range reuse plus a full-footprint
  distance once per sweep.

A workload is named by a canonical spec string
(``"zipf:accesses=16384,lines=4096,s=1.2"``); parsing is strict, the
canonical form is what profiles, service answers, and golden tests key
on.  The access stream is a pure function of ``(spec, seed)`` — the RNG
is derived from a SHA-256 of both, never from global state — so every
profile is reproducible bit-for-bit anywhere.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from ..errors import WorkloadError
from ..ioutils import sha256_hex
from .profile import ReuseProfile
from .recorder import ReuseDistanceRecorder


@dataclass(frozen=True)
class Workload:
    """One synthetic workload: a canonical spec and its stream builder."""

    spec: str
    generator: str
    params: tuple[tuple[str, int | float], ...]
    _build: Callable[[dict, np.random.Generator], np.ndarray]

    def lines(self, seed: int = 0) -> np.ndarray:
        """The line-id access stream for this workload under ``seed``."""
        return self._build(dict(self.params), _workload_rng(self.spec, seed))


def _workload_rng(spec: str, seed: int) -> np.random.Generator:
    """Deterministic RNG derived from (spec, seed) — platform-stable."""
    digest = int(sha256_hex(f"repro.workload|{spec}|{seed}")[:16], 16)
    return np.random.default_rng(digest)


# -- stream builders ---------------------------------------------------------


def _streaming(params: dict, rng: np.random.Generator) -> np.ndarray:
    lines, rounds = params["lines"], params["rounds"]
    return np.tile(np.arange(lines, dtype=np.int64), rounds)


def _blocked(params: dict, rng: np.random.Generator) -> np.ndarray:
    lines, block, repeats = params["lines"], params["block"], params["repeats"]
    chunks = [
        np.tile(np.arange(lo, min(lo + block, lines), dtype=np.int64), repeats)
        for lo in range(0, lines, block)
    ]
    return np.concatenate(chunks * params["rounds"])


def _zipf(params: dict, rng: np.random.Generator) -> np.ndarray:
    lines, accesses, s = params["lines"], params["accesses"], params["s"]
    weights = 1.0 / np.arange(1, lines + 1, dtype=np.float64) ** s
    ranks = rng.choice(lines, size=accesses, p=weights / weights.sum())
    # Popularity is assigned to *scattered* lines, not a contiguous
    # prefix, so set-index spreading assumptions hold.
    return rng.permutation(lines)[ranks].astype(np.int64)


def _stencil(params: dict, rng: np.random.Generator) -> np.ndarray:
    lines, halo, sweeps = params["lines"], params["halo"], params["sweeps"]
    centers = np.arange(lines, dtype=np.int64)
    offsets = np.arange(-halo, halo + 1, dtype=np.int64)
    sweep = np.clip(
        (centers[:, None] + offsets[None, :]).reshape(-1), 0, lines - 1
    )
    return np.tile(sweep, sweeps)


#: generator name -> (default params, stream builder).  Parameter order
#: here is the canonical spec order.
GENERATORS: dict[str, tuple[dict, Callable]] = {
    "streaming": ({"lines": 4096, "rounds": 4}, _streaming),
    "blocked": (
        {"lines": 4096, "block": 256, "repeats": 4, "rounds": 1},
        _blocked,
    ),
    "zipf": ({"accesses": 16384, "lines": 4096, "s": 1.2}, _zipf),
    "stencil": ({"lines": 2048, "halo": 1, "sweeps": 3}, _stencil),
}

_FLOAT_PARAMS = {"s"}


def generator_names() -> list[str]:
    """The available workload generator names."""
    return sorted(GENERATORS)


def parse_workload(spec: str) -> Workload:
    """Parse ``name`` or ``name:key=value,...`` into a :class:`Workload`.

    Unknown generators, unknown keys, and non-numeric / non-positive
    values are rejected with the offending token in the message.  The
    returned workload carries the *canonical* spec (every parameter,
    fixed order), so two spellings of the same workload profile and
    cache identically.
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    entry = GENERATORS.get(name)
    if entry is None:
        raise WorkloadError(
            f"unknown workload generator {name!r} "
            f"(expected one of {', '.join(generator_names())})"
        )
    defaults, build = entry
    params = dict(defaults)
    if rest.strip():
        for token in rest.split(","):
            key, sep, value = token.partition("=")
            key = key.strip()
            if not sep or key not in params:
                raise WorkloadError(
                    f"workload {name!r} does not take {token.strip()!r} "
                    f"(parameters: {', '.join(defaults)})"
                )
            try:
                parsed = float(value) if key in _FLOAT_PARAMS else int(value)
            except ValueError as exc:
                raise WorkloadError(
                    f"workload parameter {key}={value.strip()!r} is not numeric"
                ) from exc
            if parsed <= 0:
                raise WorkloadError(
                    f"workload parameter {key} must be positive, got {parsed}"
                )
            params[key] = parsed
    canonical = name + ":" + ",".join(f"{k}={params[k]}" for k in defaults)
    return Workload(
        spec=canonical,
        generator=name,
        params=tuple((k, params[k]) for k in defaults),
        _build=build,
    )


# -- profiling ---------------------------------------------------------------

_PROFILE_CACHE: dict[tuple[str, int], ReuseProfile] = {}
_PROFILE_LOCK = threading.Lock()
_PROFILE_CACHE_CAP = 256


def profile_workload(
    workload: Workload | str,
    seed: int = 0,
    metrics=None,
) -> ReuseProfile:
    """Profile one workload's reuse-distance histogram (memoized).

    Profiles are immutable pure functions of ``(canonical spec, seed)``,
    so repeats are served from a process-wide cache — a service answering
    many ``co_schedule`` queries over the same workload mix profiles each
    one exactly once.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) counts profile requests,
    cache hits, and accesses streamed through the recorder.
    """
    if isinstance(workload, str):
        workload = parse_workload(workload)
    key = (workload.spec, int(seed))
    if metrics is not None:
        metrics.counter("workload.profile.requests").inc()
    with _PROFILE_LOCK:
        cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        if metrics is not None:
            metrics.counter("workload.profile.cache_hits").inc()
        return cached
    recorder = ReuseDistanceRecorder()
    recorder.observe(workload.lines(seed))
    profile = ReuseProfile.from_recorder(recorder, workload.spec, int(seed))
    if metrics is not None:
        metrics.counter("workload.profile.accesses").inc(profile.accesses)
    with _PROFILE_LOCK:
        if len(_PROFILE_CACHE) >= _PROFILE_CACHE_CAP:
            _PROFILE_CACHE.clear()
        _PROFILE_CACHE[key] = profile
    return profile
