"""Reuse-distance workload model and co-scheduling advisor.

The pipeline, bottom to top:

- :mod:`~repro.workload.recorder` — exact streaming reuse (LRU stack)
  distances with bounded memory, plus a per-core adapter for the
  traversal engine.
- :mod:`~repro.workload.profile` — frozen, serializable histograms with
  the derived quantities (miss ratio at any capacity, footprint of any
  access window).
- :mod:`~repro.workload.generators` — canonical synthetic workloads
  (streaming / blocked / zipf / stencil), seeded and memoized.
- :mod:`~repro.workload.contention` — Barai-style reuse-CDF composition
  predicting per-workload miss ratios and slowdowns on a shared cache.
- :mod:`~repro.workload.coschedule` — placement advisor ranking
  assignments of K workloads onto a measured sharing topology.
"""

from .contention import (
    CachePressureModel,
    CorunPrediction,
    WorkloadPrediction,
    corun_miss_ratio,
    predict_corun,
)
from .coschedule import (
    CoScheduleAdvice,
    CoScheduler,
    PlacementOption,
    co_schedule,
    enumerate_partitions,
)
from .generators import (
    GENERATORS,
    Workload,
    generator_names,
    parse_workload,
    profile_workload,
)
from .profile import ReuseBin, ReuseProfile
from .recorder import (
    EXACT_DISTANCES,
    SUB_BUCKETS,
    ReuseDistanceRecorder,
    TraversalReuseRecorder,
    bucket_of,
)

__all__ = [
    "EXACT_DISTANCES",
    "GENERATORS",
    "SUB_BUCKETS",
    "CachePressureModel",
    "CoScheduleAdvice",
    "CoScheduler",
    "CorunPrediction",
    "PlacementOption",
    "ReuseBin",
    "ReuseDistanceRecorder",
    "ReuseProfile",
    "TraversalReuseRecorder",
    "Workload",
    "WorkloadPrediction",
    "bucket_of",
    "co_schedule",
    "corun_miss_ratio",
    "enumerate_partitions",
    "generator_names",
    "parse_workload",
    "predict_corun",
    "profile_workload",
]
