"""Streaming reuse-distance recording (Olken-style, bounded memory).

The reuse (LRU stack) distance of an access is the number of *distinct
other* lines touched since the previous access to the same line; a
first touch has infinite distance ("cold").  A fully associative LRU
cache of ``C`` lines serves an access iff its distance is ``< C`` —
which is why a reuse-distance histogram is a machine-independent
workload signature: one profiling pass predicts the miss ratio at
*every* capacity (Mattson's stack algorithm), and the shared-cache
composition of :mod:`repro.workload.contention` predicts co-run
behaviour from two solo histograms.

The classic exact algorithm (Olken) keeps the currently-live lines in
an order-statistics tree keyed by last-access time and counts how many
are more recent than the reused line.  This implementation uses the
equivalent Fenwick-tree-over-positions formulation: every live line
owns one slot in a bit-indexed tree ordered by last access; a reuse
counts the marked slots after its old position (one ``O(log n)``
prefix sum), then moves the line's mark to the end.  When the position
space fills up, the live lines are renumbered compactly and the tree is
rebuilt — so memory is bounded by the number of *distinct lines
currently tracked*, never by the length of the trace.

Alongside each distance the recorder keeps the access-count gap of the
reuse interval (how many of the stream's own accesses fell strictly
between the two touches).  The contention model needs both: the
distance says how much cache the reuse needs, the gap says how long a
window co-runners have to pollute it.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeasurementError

#: Distances below this are binned exactly; beyond it, geometrically
#: with :data:`SUB_BUCKETS` buckets per octave (bounded bucket count
#: for any distance range, <1.6% relative rounding error).
EXACT_DISTANCES = 128

#: Sub-buckets per power of two beyond the exact range.
SUB_BUCKETS = 16

_SHIFT = SUB_BUCKETS.bit_length() - 1  # log2(SUB_BUCKETS)


def bucket_of(distance: int) -> int:
    """Canonical bucket lower edge for a reuse distance.

    Identity below :data:`EXACT_DISTANCES`; beyond that the distance is
    truncated to its geometric bucket's lower edge.  Pure integer math,
    so the binning is platform-independent.
    """
    if distance < EXACT_DISTANCES:
        return distance
    step_bits = distance.bit_length() - 1 - _SHIFT
    return (distance >> step_bits) << step_bits


class ReuseDistanceRecorder:
    """Exact streaming reuse distances, accumulated into bounded bins.

    ``observe`` consumes line-id vectors (any integer dtype) in stream
    order; the accumulated state is read out with
    :meth:`~repro.workload.profile.ReuseProfile.from_recorder`.

    Memory is ``O(distinct lines)``: the Fenwick position space starts
    at ``initial_slots`` and is compacted (live lines renumbered
    ``0..m-1``) whenever it fills, growing only when more than half the
    slots are still live after compaction.
    """

    def __init__(self, initial_slots: int = 4096) -> None:
        if initial_slots < 2:
            raise MeasurementError("recorder needs at least 2 position slots")
        self._slots = initial_slots
        # Fenwick tree as a plain list: the per-access loop below does
        # ~3 log(slots) scalar reads/writes, which a Python list serves
        # several times faster than numpy scalar indexing.
        self._tree = [0] * (self._slots + 1)
        #: line id -> (position slot, access index of last touch)
        self._last: dict[int, tuple[int, int]] = {}
        self._next_slot = 0
        self._clock = 0
        self.compactions = 0
        # Accumulators: bucket lower edge -> [count, sum distance, sum gap].
        self._bins: dict[int, list[int]] = {}
        self._cold = 0

    def _compact(self) -> None:
        """Renumber live lines to 0..m-1 (preserving recency order)."""
        live = sorted(self._last.items(), key=lambda item: item[1][0])
        m = len(live)
        while m * 2 > self._slots:
            self._slots *= 2
        slots = self._slots
        tree = self._tree = [0] * (slots + 1)
        for new_slot, (line, (_, when)) in enumerate(live):
            self._last[line] = (new_slot, when)
            i = new_slot + 1
            while i <= slots:
                tree[i] += 1
                i += i & (-i)
        self._next_slot = m
        self.compactions += 1

    def observe(self, lines: np.ndarray | list[int]) -> None:
        """Feed the next chunk of the access stream (in order)."""
        last = self._last
        bins = self._bins
        clock = self._clock
        for raw in np.asarray(lines, dtype=np.int64):
            line = int(raw)
            if self._next_slot >= self._slots:
                self._compact()
            slots = self._slots
            tree = self._tree
            next_slot = self._next_slot
            previous = last.get(line)
            if previous is None:
                self._cold += 1
            else:
                slot, when = previous
                # Lines touched after this one's last access = live
                # marks in (slot, next_slot); ``slot`` itself is
                # marked, so the prefix up to it subtracts out.
                prefix = 0
                i = slot + 1
                while i > 0:
                    prefix += tree[i]
                    i -= i & (-i)
                distance = len(last) - prefix
                gap = clock - when - 1
                key = (
                    distance
                    if distance < EXACT_DISTANCES
                    else bucket_of(distance)
                )
                bin_ = bins.get(key)
                if bin_ is None:
                    bin_ = bins[key] = [0, 0, 0]
                bin_[0] += 1
                bin_[1] += distance
                bin_[2] += gap
                i = slot + 1
                while i <= slots:
                    tree[i] -= 1
                    i += i & (-i)
            last[line] = (next_slot, clock)
            i = next_slot + 1
            while i <= slots:
                tree[i] += 1
                i += i & (-i)
            self._next_slot = next_slot + 1
            clock += 1
        self._clock = clock

    # -- readout ----------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total accesses observed so far."""
        return self._clock

    @property
    def cold(self) -> int:
        """First-touch (infinite-distance) accesses."""
        return self._cold

    @property
    def distinct_lines(self) -> int:
        """Distinct lines seen (== cold misses)."""
        return len(self._last)

    def bins(self) -> list[tuple[int, int, int, int]]:
        """Sorted ``(bucket_lo, count, sum_distance, sum_gap)`` rows."""
        return [
            (lo, c, sd, sg)
            for lo, (c, sd, sg) in sorted(self._bins.items())
        ]


class TraversalReuseRecorder:
    """Per-core reuse recording for :class:`~repro.memsim.traversal.TraversalEngine`.

    Passed as the engine's ``reuse_recorder``; the engine calls
    :meth:`record` with each traversal's core id and virtual-line
    stream, and the recorder keeps one independent
    :class:`ReuseDistanceRecorder` per core (each core's stream is its
    own stack).  Afterwards :meth:`profile` turns a core's recorder
    into a :class:`~repro.workload.profile.ReuseProfile`.
    """

    def __init__(self) -> None:
        self._per_core: dict[int, ReuseDistanceRecorder] = {}

    def record(self, core: int, lines: np.ndarray | list[int]) -> None:
        recorder = self._per_core.get(core)
        if recorder is None:
            recorder = self._per_core[core] = ReuseDistanceRecorder()
        recorder.observe(lines)

    @property
    def cores(self) -> list[int]:
        """Core ids that have recorded at least one access."""
        return sorted(self._per_core)

    def recorder(self, core: int) -> ReuseDistanceRecorder:
        recorder = self._per_core.get(core)
        if recorder is None:
            raise MeasurementError(f"no accesses recorded for core {core}")
        return recorder

    def profile(self, core: int, name: str, seed: int = 0):
        """The finished :class:`ReuseProfile` for one core's stream."""
        from .profile import ReuseProfile

        return ReuseProfile.from_recorder(self.recorder(core), name, seed)
