"""Shared-cache contention: composing reuse-distance profiles.

The model follows Barai et al. (*Modeling Shared Cache Performance of
OpenMP Programs using Reuse Distance*): when workloads co-run on one
shared cache, an access's *effective* stack distance is its own reuse
distance plus the distinct lines its neighbours push into the cache
during the reuse interval.  With the lockstep (round-robin)
interleaving the substrate's shared-cache benchmark uses, a reuse
interval spanning ``g`` of the workload's own accesses gives every
co-runner a window of ``g`` accesses too, so

    D_eff = d  +  sum_j  F_j(g)        (j over the co-runners)

where ``F_j`` is workload *j*'s footprint function (distinct lines per
window, estimated from its own profile — see
:meth:`~repro.workload.profile.ReuseProfile.footprint`).  The access
hits the shared cache of ``C`` lines iff ``D_eff < C``; summing over
the profile's histogram rows yields the co-run miss ratio, and a
two-point latency model (hit vs miss cycles) turns miss ratios into
the predicted slowdown each workload experiences relative to running
alone.

Guaranteed properties (pinned by the property suite):

- ``D_eff >= d`` always, so the co-run miss ratio is never below the
  solo one and every predicted slowdown is ``>= 1.0``;
- a workload co-running with nobody reproduces its solo prediction
  *exactly* (slowdown 1.0, not 1.0-and-epsilon);
- the composition is a sum over co-runners, so predictions are
  invariant under permuting the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..errors import WorkloadError
from .profile import ReuseProfile


@dataclass(frozen=True)
class CachePressureModel:
    """The shared cache as the contention model sees it.

    ``capacity_lines`` is the shared level's size in cache lines;
    ``hit_cycles`` the cost of an access served at (or above) that
    level, ``miss_cycles`` the *extra* cost of going to memory.  The
    slowdown prediction only depends on the ratio of the two, so the
    defaults (an L2/L3-ish 30-cycle hit against a 260-cycle memory
    penalty) give usable rankings even when the report carries no
    latencies; build from a machine model for exact numbers.
    """

    capacity_lines: int
    hit_cycles: float = 30.0
    miss_cycles: float = 260.0
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.capacity_lines <= 0:
            raise WorkloadError("shared cache capacity must be positive")
        if self.hit_cycles <= 0 or self.miss_cycles <= 0:
            raise WorkloadError("hit/miss cycle costs must be positive")

    def cycles_per_access(self, miss_ratio: float) -> float:
        return self.hit_cycles + miss_ratio * self.miss_cycles

    def to_dict(self) -> dict:
        return {
            "capacity_lines": self.capacity_lines,
            "hit_cycles": self.hit_cycles,
            "miss_cycles": self.miss_cycles,
            "line_size": self.line_size,
        }


@dataclass(frozen=True)
class WorkloadPrediction:
    """Predicted solo vs co-run behaviour of one workload in a group."""

    name: str
    solo_miss_ratio: float
    corun_miss_ratio: float
    slowdown: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "solo_miss_ratio": self.solo_miss_ratio,
            "corun_miss_ratio": self.corun_miss_ratio,
            "slowdown": self.slowdown,
        }


@dataclass(frozen=True)
class CorunPrediction:
    """Per-workload predictions for one co-running group."""

    workloads: tuple[WorkloadPrediction, ...] = field(default_factory=tuple)

    @property
    def worst_slowdown(self) -> float:
        return max(w.slowdown for w in self.workloads)

    @property
    def mean_slowdown(self) -> float:
        return sum(w.slowdown for w in self.workloads) / len(self.workloads)

    def to_dict(self) -> dict:
        return {
            "workloads": [w.to_dict() for w in self.workloads],
            "worst_slowdown": self.worst_slowdown,
            "mean_slowdown": self.mean_slowdown,
        }


def corun_miss_ratio(
    profile: ReuseProfile,
    others: Sequence[ReuseProfile],
    capacity_lines: int,
) -> float:
    """Miss ratio of ``profile`` sharing ``capacity_lines`` with ``others``.

    With no co-runners this reduces *bitwise* to
    ``profile.miss_ratio(capacity_lines)`` — both walk the same rows
    and apply the same ``>=`` threshold — which is what makes the solo
    slowdown exactly 1.0.
    """
    if capacity_lines <= 0:
        return 1.0
    if not profile.accesses:
        return 0.0
    missing = profile.cold
    for row in profile.bins:
        effective = row.mean_distance
        if others:
            window = row.mean_gap
            effective += sum(other.footprint(window) for other in others)
        if effective >= capacity_lines:
            missing += row.count
    return missing / profile.accesses


def predict_corun(
    model: CachePressureModel, profiles: Sequence[ReuseProfile]
) -> CorunPrediction:
    """Predict each workload's slowdown when the group shares the cache."""
    if not profiles:
        raise WorkloadError("need at least one workload profile")
    predictions = []
    for i, profile in enumerate(profiles):
        others = [p for j, p in enumerate(profiles) if j != i]
        solo = profile.miss_ratio(model.capacity_lines)
        corun = corun_miss_ratio(profile, others, model.capacity_lines)
        predictions.append(
            WorkloadPrediction(
                name=profile.name,
                solo_miss_ratio=solo,
                corun_miss_ratio=corun,
                slowdown=(
                    model.cycles_per_access(corun)
                    / model.cycles_per_access(solo)
                ),
            )
        )
    return CorunPrediction(workloads=tuple(predictions))
