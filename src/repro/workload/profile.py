"""Serializable reuse-distance profiles.

A :class:`ReuseProfile` is the frozen, JSON-serializable readout of one
:class:`~repro.workload.recorder.ReuseDistanceRecorder` pass: bucketed
reuse-distance counts (plus per-bucket mean distance and mean reuse
interval) and the cold-miss count.  It answers the two questions the
contention model asks:

- :meth:`miss_ratio` — Mattson: the fraction of accesses whose reuse
  distance reaches ``capacity`` lines (plus cold misses).
- :meth:`footprint` — how many distinct lines a window of ``w``
  consecutive accesses touches, estimated by inverting the measured
  (reuse interval -> reuse distance) relation.  This is what an access
  stream *does to its neighbours* on a shared cache.

Profiles are pure data: equality is structural, serialization is
canonical (sorted rows), and every derived quantity is deterministic,
so they can be cached, shipped over the daemon protocol, and pinned in
golden tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MeasurementError
from .recorder import ReuseDistanceRecorder


@dataclass(frozen=True)
class ReuseBin:
    """One histogram row: reuses binned by stack distance."""

    #: Canonical bucket lower edge (see ``recorder.bucket_of``).
    lo: int
    #: Reuses that landed in this bucket.
    count: int
    #: Sum of their exact distances (mean = sum / count).
    sum_distance: int
    #: Sum of their reuse-interval gaps, in own accesses.
    sum_gap: int

    @property
    def mean_distance(self) -> float:
        return self.sum_distance / self.count

    @property
    def mean_gap(self) -> float:
        return self.sum_gap / self.count


@dataclass(frozen=True)
class ReuseProfile:
    """One workload's reuse-distance signature (immutable, serializable)."""

    #: Canonical workload spec, e.g. ``"zipf:lines=4096,s=1.2"``.
    name: str
    #: Seed the access stream was generated with.
    seed: int
    #: Total accesses observed.
    accesses: int
    #: First-touch accesses (== distinct lines touched).
    cold: int
    #: Histogram rows, ascending ``lo``.
    bins: tuple[ReuseBin, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        reuses = sum(b.count for b in self.bins)
        if self.cold + reuses != self.accesses:
            raise MeasurementError(
                f"profile {self.name!r} loses mass: cold {self.cold} + "
                f"reuses {reuses} != accesses {self.accesses}"
            )
        los = [b.lo for b in self.bins]
        if los != sorted(set(los)):
            raise MeasurementError(
                f"profile {self.name!r} bins must be strictly ascending"
            )

    # -- construction -----------------------------------------------------

    @classmethod
    def from_recorder(
        cls, recorder: ReuseDistanceRecorder, name: str, seed: int
    ) -> "ReuseProfile":
        return cls(
            name=name,
            seed=seed,
            accesses=recorder.accesses,
            cold=recorder.cold,
            bins=tuple(ReuseBin(*row) for row in recorder.bins()),
        )

    # -- derived quantities -----------------------------------------------

    @property
    def distinct_lines(self) -> int:
        """Distinct lines the workload touches (== cold misses)."""
        return self.cold

    def cdf(self) -> list[tuple[float, float]]:
        """``(mean distance, P[reuse distance <= d])`` points, ascending.

        The probability is over *all* accesses, so the curve tops out at
        ``1 - cold/accesses`` (cold misses have infinite distance).
        """
        points: list[tuple[float, float]] = []
        running = 0
        for b in self.bins:
            running += b.count
            points.append((b.mean_distance, running / self.accesses))
        return points

    def miss_ratio(self, capacity_lines: int) -> float:
        """Solo miss ratio on a fully-associative LRU cache of ``capacity_lines``.

        An access hits iff its reuse distance is strictly below the
        capacity; cold misses always miss.  (Set-associative caches with
        well-spread indices behave closely enough — the cross-validation
        tests pin the agreement against the explicit simulator.)
        """
        if capacity_lines <= 0:
            return 1.0
        missing = self.cold
        for b in self.bins:
            if b.mean_distance >= capacity_lines:
                missing += b.count
        return missing / self.accesses if self.accesses else 0.0

    def footprint(self, window: float) -> float:
        """Distinct lines touched in ``window`` consecutive accesses (est.).

        Uses the measured (mean gap -> mean distance) pairs as samples
        of the footprint function and interpolates monotonically between
        them; clamped by ``window`` itself (can't touch more lines than
        accesses) and by the workload's total distinct lines.  Cold
        accesses walk into new lines at the stream's cold rate, which
        the tail beyond the largest measured gap accounts for.
        """
        if window <= 0:
            return 0.0
        total = float(self.distinct_lines)
        bound = min(float(window), total)
        if not self.bins:
            # Every access is a first touch: the footprint is the window.
            return bound
        # Monotone envelope of (gap, distance) samples, ascending gap.
        points = sorted((b.mean_gap, b.mean_distance) for b in self.bins)
        best = 0.0
        envelope: list[tuple[float, float]] = []
        for gap, distance in points:
            if distance > best:
                best = distance
                envelope.append((gap, distance))
        prev_gap, prev_d = 0.0, 0.0
        for gap, distance in envelope:
            if window <= gap:
                if gap <= prev_gap:
                    return min(bound, distance)
                frac = (window - prev_gap) / (gap - prev_gap)
                return min(bound, prev_d + frac * (distance - prev_d))
            prev_gap, prev_d = gap, distance
        # Beyond the longest measured reuse interval, new lines arrive
        # at the stream's cold rate.
        tail = (window - prev_gap) * (self.cold / self.accesses)
        return min(bound, prev_d + tail)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "accesses": self.accesses,
            "cold": self.cold,
            "bins": [
                [b.lo, b.count, b.sum_distance, b.sum_gap] for b in self.bins
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReuseProfile":
        try:
            return cls(
                name=str(data["name"]),
                seed=int(data["seed"]),
                accesses=int(data["accesses"]),
                cold=int(data["cold"]),
                bins=tuple(
                    ReuseBin(int(lo), int(c), int(sd), int(sg))
                    for lo, c, sd, sg in data["bins"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise MeasurementError(f"malformed reuse profile: {exc}") from exc
