"""Plain-text rendering helpers for benchmark output.

The benchmark harness must "print the same rows/series the paper
reports" (Figures 2 and 8-10 are plots; Table I is a table).  These
helpers render small ASCII tables and line charts on stdout so each
bench's output can be compared to the paper's figure by eye.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` as a fixed-width table with a header rule.

    Cells are stringified with ``str``; columns are right-padded to the
    widest cell.  Returns the table as a single string (no trailing
    newline) so callers can ``print`` it.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i >= len(widths):
                widths.append(len(cell))
            else:
                widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    """Map ``value`` in [lo, hi] to an integer cell in [0, steps]."""
    if hi <= lo:
        return 0
    if log:
        value, lo, hi = math.log(value), math.log(lo), math.log(hi)
    frac = (value - lo) / (hi - lo)
    return min(steps, max(0, int(round(frac * steps))))


def ascii_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    x_label: str = "",
    y_label: str = "",
    title: str | None = None,
) -> str:
    """Render one or more y-series against shared x values.

    Each series is drawn with its own marker character; a legend maps
    markers back to series names.  Intended for the monotone, coarse
    curves of the paper's figures (cycles vs. size, bandwidth vs. size).
    """
    markers = "*o+x#@%&"
    finite_ys = [
        y
        for ys in series.values()
        for y in ys
        if y is not None and math.isfinite(y) and (not logy or y > 0)
    ]
    finite_xs = [x for x in xs if math.isfinite(x) and (not logx or x > 0)]
    if not finite_ys or not finite_xs:
        return "(no data)"
    ylo, yhi = min(finite_ys), max(finite_ys)
    xlo, xhi = min(finite_xs), max(finite_xs)
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for x, y in zip(xs, ys):
            if y is None or not math.isfinite(y):
                continue
            if (logx and x <= 0) or (logy and y <= 0):
                continue
            col = _scale(x, xlo, xhi, width, logx)
            row = height - _scale(y, ylo, yhi, height, logy)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    ytop = f"{yhi:.4g}"
    ybot = f"{ylo:.4g}"
    pad = max(len(ytop), len(ybot))
    for r, row in enumerate(grid):
        label = ytop if r == 0 else (ybot if r == height else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * (width + 1))
    xlabel_line = f"{xlo:.4g}".ljust(width - 6) + f"{xhi:.4g}"
    lines.append(" " * (pad + 2) + xlabel_line)
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    axes = " ".join(filter(None, [f"x: {x_label}" if x_label else "", f"y: {y_label}" if y_label else ""]))
    lines.append(" " * (pad + 2) + legend + ("   " + axes if axes else ""))
    return "\n".join(lines)
