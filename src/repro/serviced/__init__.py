"""The tuning daemon: the measure-once-serve-forever story at wire level.

:mod:`repro.service` answers tuning queries in-process;
this package puts a socket in front of it:

- :mod:`repro.serviced.protocol` — length-prefixed canonical-JSON
  frames; the typed query objects serialize losslessly.
- :mod:`repro.serviced.daemon` — :class:`TuningDaemon`: acceptor +
  worker pool with per-batch coalescing, atomically swapped report
  snapshots hot-reloaded from the registry, graceful drain, SLO
  metrics on the shared registry.
- :mod:`repro.serviced.client` — :class:`ServicedClient`: synchronous
  and pipelined queries plus the control verbs; backs
  ``servet query --remote``.

CLI: ``servet serve --listen HOST:PORT``.
"""

from .client import ServicedClient
from .daemon import TuningDaemon
from .protocol import (
    MAX_FRAME,
    REQUEST_KINDS,
    control_request,
    decode_query,
    encode_frame,
    encode_query,
    error_response,
    ok_response,
    query_request,
    read_frame,
)

__all__ = [
    "MAX_FRAME",
    "REQUEST_KINDS",
    "ServicedClient",
    "TuningDaemon",
    "control_request",
    "decode_query",
    "encode_frame",
    "encode_query",
    "error_response",
    "ok_response",
    "query_request",
    "read_frame",
]
