"""Wire protocol of the tuning daemon: length-prefixed JSON frames.

The daemon speaks a deliberately boring protocol so any language can
implement a client in an afternoon:

- **Framing.**  Every message is a 4-byte big-endian unsigned length
  followed by that many bytes of UTF-8 JSON.  Frames are bounded by
  :data:`MAX_FRAME` (a malformed or hostile length prefix is rejected
  before any allocation).  Frame payloads are encoded with the same
  canonical-JSON convention the fleet protocol uses (sorted keys,
  compact separators), so identical requests are identical bytes.

- **Requests.**  ``{"kind": ..., "id": ...}`` plus kind-specific
  fields.  ``kind`` is one of :data:`REQUEST_KINDS`:

  ======== ======================================================
  kind      meaning
  ======== ======================================================
  query     answer one typed tuning query (``query`` field)
  stats     SLO snapshot: daemon metrics + service cache metrics
  ping      liveness probe (also reports the served version)
  reload    force one registry hot-reload check right now
  drain     stop accepting, flush in-flight batches, shut down
  ======== ======================================================

- **Responses.**  ``{"id": ..., "ok": true, ...}`` on success —
  query responses carry ``answer`` plus the report ``version`` and
  the (short, 12-hex-char) ``digest`` that produced it, so a client
  can always tell *which* published report version answered (the
  hot-reload drill asserts every answer is internally consistent with
  exactly one version).  On failure ``{"id": ..., "ok": false,
  "error": "..."}``.

- **Queries on the wire.**  The typed query value objects of
  :mod:`repro.service.server` serialize as ``{"kind": ..., <fields>}``
  through :func:`encode_query`/:func:`decode_query`; the kind names
  match the ``servet query`` CLI (``tile``, ``matmul-tile``,
  ``streaming-cores``, ``aggregate``, ``bcast``, ``latency``).

Every protocol violation raises :class:`~repro.errors.ServicedError`
at the boundary — a malformed frame is diagnosed where it is read,
never as a ``KeyError`` deep inside the daemon.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Callable

from ..errors import ServicedError
from ..ioutils import canonical_json
from ..service.server import (
    AggregationQuery,
    BcastQuery,
    CoScheduleQuery,
    CommLatencyQuery,
    MatmulTileQuery,
    Query,
    StreamingCoresQuery,
    TileQuery,
)

__all__ = [
    "MAX_FRAME",
    "REQUEST_KINDS",
    "decode_query",
    "encode_frame",
    "encode_query",
    "error_response",
    "ok_response",
    "pack_body",
    "query_request",
    "read_frame",
]

#: Hard ceiling on one frame's payload size.  Tuning answers are a few
#: hundred bytes; anything near this limit is a protocol violation.
MAX_FRAME = 1 << 20

#: Request kinds the daemon understands.
REQUEST_KINDS: tuple[str, ...] = ("query", "stats", "ping", "reload", "drain")

_HEADER = struct.Struct(">I")

# -- framing ----------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """One wire frame: length prefix + canonical JSON bytes."""
    return pack_body(canonical_json(payload).encode("utf-8"))


def pack_body(body: bytes) -> bytes:
    """Frame pre-serialized JSON bytes (the daemon's hot send path)."""
    if len(body) > MAX_FRAME:
        raise ServicedError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def read_frame(read: Callable[[int], bytes]) -> dict | None:
    """Read one frame from a ``read(n)`` source (socket file object).

    Returns ``None`` on a clean end-of-stream (EOF exactly between
    frames); raises :class:`ServicedError` for a stream that dies
    mid-frame, an oversized length prefix, or a payload that is not a
    JSON object.
    """
    header = read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ServicedError("connection closed mid-frame (short length prefix)")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ServicedError(
            f"frame length {length} exceeds the {MAX_FRAME}-byte limit"
        )
    body = read(length)
    if len(body) < length:
        raise ServicedError("connection closed mid-frame (short payload)")
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServicedError(f"malformed frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServicedError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# -- query codec ------------------------------------------------------------

#: kind -> (query class, decoder building the typed object from fields).
_DECODERS: dict[str, tuple[type, Callable[[dict], Query]]] = {
    "tile": (
        TileQuery,
        lambda d: TileQuery(
            level=int(d["level"]),
            n_arrays=int(d.get("n_arrays", 1)),
            elem_size=int(d.get("elem_size", 8)),
        ),
    ),
    "matmul-tile": (
        MatmulTileQuery,
        lambda d: MatmulTileQuery(
            level=int(d["level"]), elem_size=int(d.get("elem_size", 8))
        ),
    ),
    "streaming-cores": (
        StreamingCoresQuery,
        lambda d: StreamingCoresQuery(
            group_index=int(d.get("group_index", 0)),
            efficiency_floor=float(d.get("efficiency_floor", 0.5)),
        ),
    ),
    "aggregate": (
        AggregationQuery,
        lambda d: AggregationQuery(
            core_a=int(d["core_a"]),
            core_b=int(d["core_b"]),
            n_messages=int(d["n_messages"]),
            message_size=int(d["message_size"]),
        ),
    ),
    "bcast": (
        BcastQuery,
        lambda d: BcastQuery(
            placement=tuple(int(c) for c in d["placement"]),
            nbytes=int(d["nbytes"]),
            root=int(d.get("root", 0)),
        ),
    ),
    "latency": (
        CommLatencyQuery,
        lambda d: CommLatencyQuery(
            core_a=int(d["core_a"]),
            core_b=int(d["core_b"]),
            nbytes=int(d["nbytes"]),
        ),
    ),
    "co-schedule": (
        CoScheduleQuery,
        lambda d: CoScheduleQuery(
            workloads=tuple(str(w) for w in d["workloads"]),
            seed=int(d.get("seed", 0)),
            level=int(d["level"]) if d.get("level") is not None else None,
            instances=(
                int(d["instances"]) if d.get("instances") is not None else None
            ),
            top=int(d.get("top", 3)),
        ),
    ),
}

_KIND_OF: dict[type, str] = {cls: kind for kind, (cls, _) in _DECODERS.items()}


def encode_query(query: Query) -> dict:
    """Serialize a typed query object to its wire dict."""
    kind = _KIND_OF.get(type(query))
    if kind is None:
        raise ServicedError(
            f"query type {type(query).__name__} has no wire encoding"
        )
    fields = {
        name: (list(value) if isinstance(value, tuple) else value)
        for name, value in vars(query).items()
    }
    return {"kind": kind, **fields}


def decode_query(data: dict) -> Query:
    """Rebuild the typed query object a wire dict names."""
    if not isinstance(data, dict):
        raise ServicedError(
            f"query must be a JSON object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    entry = _DECODERS.get(kind)
    if entry is None:
        raise ServicedError(
            f"unknown query kind {kind!r} (expected one of "
            f"{', '.join(sorted(_DECODERS))})"
        )
    _, decode = entry
    try:
        return decode(data)
    except KeyError as exc:
        raise ServicedError(f"query kind {kind!r} needs field {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ServicedError(f"query kind {kind!r} has a bad field: {exc}") from exc


# -- request / response helpers ---------------------------------------------


def query_request(query: Query, request_id: int) -> dict:
    """A ``query`` request frame payload."""
    return {"kind": "query", "id": int(request_id), "query": encode_query(query)}


def control_request(kind: str, request_id: int = 0) -> dict:
    """A control request frame payload (stats / ping / reload / drain)."""
    if kind not in REQUEST_KINDS or kind == "query":
        raise ServicedError(f"not a control request kind: {kind!r}")
    return {"kind": kind, "id": int(request_id)}


def ok_response(request_id, **fields) -> dict:
    """A success response frame payload."""
    return {"id": request_id, "ok": True, **fields}


def error_response(request_id, error: str) -> dict:
    """A failure response frame payload."""
    return {"id": request_id, "ok": False, "error": str(error)}
