"""The tuning daemon: a batching, hot-reloading socket front end.

:class:`TuningDaemon` promotes the in-process
:class:`~repro.service.server.TuningService` to a network service.
The moving parts, and the invariants each one keeps:

- **Acceptor + readers.**  One acceptor thread hands each connection
  to a reader thread that decodes frames (see
  :mod:`repro.serviced.protocol`) and pushes query requests onto a
  shared queue.  Control requests (``stats``/``ping``/``reload``/
  ``drain``) are answered inline by the reader — they must work even
  when the query queue is saturated.

- **Worker pool with micro-batching.**  Each worker blocks for one
  request, then drains up to ``batch_max - 1`` more without blocking.
  The whole batch is answered against a *single* report snapshot:
  identical queries inside the batch are grouped so one service lookup
  answers all of them (the coalesce counter tracks how many requests
  rode along), and responses are written back one ``sendall`` per
  connection.  Cross-worker duplicate suppression is delegated to the
  service's bounded per-key single-flight table, so a fresh key is
  computed once no matter how batches interleave.

- **Read-mostly snapshot, atomically swapped.**  The served report
  lives in an immutable ``_Snapshot`` (service + registry version +
  digest) reached through a single attribute read.  The registry
  watcher polls :meth:`~repro.service.registry.ReportRegistry.latest_version`
  — a stat-based probe that never deserializes payloads — and on a new
  version builds a complete replacement snapshot *before* publishing it
  with one reference assignment.  Readers therefore never block on a
  refresh and can never observe a torn answer: every response's
  ``(answer, version)`` pair comes from one snapshot.

- **Graceful drain.**  ``SIGTERM`` (wired up by the CLI), the
  ``drain`` control request, or :meth:`drain` stop the acceptor,
  refuse new queries with a ``draining`` error, flush every request
  already queued, then close connections and stop all threads.  The
  CLI exits 0 after a drain.

- **SLO accounting.**  Request counters, windowed latency histograms,
  batch-occupancy and coalesce metrics ride the shared
  :class:`~repro.obs.metrics.MetricsRegistry` and are exported through
  the ``stats`` control request.  ``instrument=False`` disables all
  daemon-side measurement — the load bench asserts the instrumented
  daemon stays within a few percent of that ceiling (the LIKWID
  lightweight-measurement discipline).
"""

from __future__ import annotations

import json
import queue
import socket
import threading
import time
from collections.abc import Callable

from ..core.report import ServetReport
from ..errors import ReproError, ServicedError
from ..obs.metrics import MetricsRegistry
from ..service.registry import ReportRegistry
from ..service.server import TuningService
from .protocol import (
    decode_query,
    encode_frame,
    error_response,
    ok_response,
    pack_body,
    read_frame,
)

__all__ = ["TuningDaemon"]


class _Snapshot:
    """One immutable serving state: the service plus its provenance."""

    __slots__ = ("service", "digest", "version")

    def __init__(self, service: TuningService, digest: str, version: int) -> None:
        self.service = service
        self.digest = digest
        self.version = version


class _Connection:
    """A client socket plus the write lock serializing its responses."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.rfile = sock.makefile("rb")
        self.wlock = threading.Lock()
        self.alive = True

    def send(self, payloads: list[dict]) -> None:
        """Encode and write response payloads (see :meth:`send_raw`)."""
        self.send_raw([encode_frame(p) for p in payloads])

    def send_raw(self, frames: list[bytes]) -> None:
        """Write pre-encoded frames with one ``sendall`` (best effort).

        A client that disappeared mid-conversation is not an error the
        daemon can do anything about: the connection is marked dead and
        later responses to it are dropped.
        """
        if not self.alive:
            return
        try:
            with self.wlock:
                self.sock.sendall(b"".join(frames))
        except OSError:
            self.alive = False

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class TuningDaemon:
    """Serve tuning queries over a socket (see the module docstring).

    Exactly one of ``report`` / ``registry`` must be given.  With a
    registry the daemon resolves ``spec`` once at startup and then
    *watches*: every ``poll_interval`` seconds it probes for a newer
    published version of the same fingerprint and hot-swaps the
    snapshot.  With a bare report there is nothing to watch and the
    served version is 0.
    """

    def __init__(
        self,
        report: ServetReport | None = None,
        registry: ReportRegistry | None = None,
        spec: str = "latest",
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        batch_max: int = 64,
        poll_interval: float = 0.5,
        capacity: int = 4096,
        ttl: float | None = None,
        metrics: MetricsRegistry | None = None,
        instrument: bool = True,
        timer: Callable[[], float] = time.perf_counter,
    ) -> None:
        if (report is None) == (registry is None):
            raise ServicedError("give exactly one of report= or registry=")
        if workers < 1:
            raise ServicedError("daemon needs workers >= 1")
        if batch_max < 1:
            raise ServicedError("daemon needs batch_max >= 1")
        self.host = host
        self.port = port
        self.workers = workers
        self.batch_max = batch_max
        self.poll_interval = poll_interval
        self._capacity = capacity
        self._ttl = ttl
        self._instrument = instrument
        self._timer = timer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._registry = registry
        if registry is not None:
            digest = registry.resolve(spec)
            version = registry.latest_version(digest)
            report = registry.get(digest)
        else:
            digest, version = "file", 0
        self._digest = digest
        self._snapshot = _Snapshot(self._make_service(report), digest, version)

        self._queue: queue.Queue = queue.Queue()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: list[_Connection] = []
        self._conns_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._draining = False
        self._started = False
        self._stop_watch = threading.Event()
        self._stopped = threading.Event()

        if instrument:
            m = self.metrics
            self._req_query = m.counter("serviced.requests", kind="query")
            self._req_control = {
                kind: m.counter("serviced.requests", kind=kind)
                for kind in ("stats", "ping", "reload", "drain")
            }
            self._resp_ok = m.counter("serviced.responses", status="ok")
            self._resp_error = m.counter("serviced.responses", status="error")
            self._latency = m.histogram("serviced.request_latency_seconds")
            self._batch_size = m.histogram("serviced.batch_size")
            self._coalesced = m.counter("serviced.coalesced_requests")
            self._reloads = m.counter("serviced.reloads")
            self._reload_errors = m.counter("serviced.reload_errors")
            self._accepted = m.counter("serviced.connections", event="accepted")

    def _make_service(self, report: ServetReport) -> TuningService:
        # The service metrics ride the daemon's registry so counters
        # accumulate across hot-reloads (get-or-create semantics); with
        # instrumentation off each service keeps a private registry.
        return TuningService(
            report,
            capacity=self._capacity,
            ttl=self._ttl,
            metrics=self.metrics if self._instrument else None,
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TuningDaemon":
        """Bind, spin up acceptor/workers/watcher, return immediately."""
        if self._started:
            raise ServicedError("daemon already started")
        self._started = True
        self._listener = socket.create_server(
            (self.host, self.port), backlog=128, reuse_port=False
        )
        self.host, self.port = self._listener.getsockname()[:2]
        self._spawn(self._acceptor_loop, "serviced-acceptor")
        for index in range(self.workers):
            self._spawn(self._worker_loop, f"serviced-worker-{index}")
        if self._registry is not None:
            self._spawn(self._watcher_loop, "serviced-watcher")
        return self

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def drain(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Stop accepting, flush in-flight work, shut everything down.

        Idempotent; with ``wait=True`` (default) blocks until the
        daemon has fully stopped.
        """
        with self._drain_lock:
            first = not self._draining
            self._draining = True
        if first:
            threading.Thread(
                target=self._shutdown, name="serviced-shutdown", daemon=True
            ).start()
        if wait:
            self.wait(timeout)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the daemon has stopped (True) or timeout (False)."""
        return self._stopped.wait(timeout)

    @property
    def draining(self) -> bool:
        return self._draining

    def _shutdown(self) -> None:
        if self._listener is not None:
            # Closing alone does not wake a thread blocked in accept();
            # shutdown() does on Linux, and the no-op connect below
            # covers platforms where it raises instead.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                try:
                    with socket.create_connection(
                        (self.host, self.port), timeout=0.2
                    ):
                        pass
                except OSError:
                    pass
            try:
                self._listener.close()
            except OSError:
                pass
        # Everything already queued is answered before the workers stop:
        # join() returns only once each enqueued request was task_done'd
        # (which happens after its response bytes were written).
        self._queue.join()
        for _ in range(self.workers):
            self._queue.put(None)
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        self._stop_watch.set()
        for thread in list(self._threads):
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        self._stopped.set()

    def __enter__(self) -> "TuningDaemon":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.drain(wait=True)

    # -- serving state -------------------------------------------------------

    @property
    def report(self) -> ServetReport:
        """The currently served report (snapshot read, never blocks)."""
        return self._snapshot.service.report

    @property
    def version(self) -> int:
        return self._snapshot.version

    @property
    def digest(self) -> str:
        return self._snapshot.digest

    def check_reload(self) -> bool:
        """Hot-swap the snapshot if the registry published a newer version.

        The probe is stat-based (no payload read); only an actual new
        version pays for deserializing the report and building the
        replacement service.  Returns True when a swap happened.
        Readers are never blocked: they keep answering from the old
        snapshot until the single reference assignment below.
        """
        if self._registry is None:
            return False
        if self._registry.latest_version(self._digest) <= self._snapshot.version:
            return False
        with self._reload_lock:
            latest = self._registry.latest_version(self._digest)
            if latest <= self._snapshot.version:
                return False
            report = self._registry.get(self._digest)
            # get() may have quarantined the newest file(s) and fallen
            # back; trust the entry it actually served.
            entry = self._registry.get_entry(self._digest)
            if entry.version <= self._snapshot.version:
                return False
            snapshot = _Snapshot(self._make_service(report), self._digest, entry.version)
            self._snapshot = snapshot
        if self._instrument:
            self._reloads.inc()
        return True

    def stats(self) -> dict:
        """The ``stats`` control response body."""
        snap = self._snapshot
        body = {
            "digest": snap.digest,
            "version": snap.version,
            "draining": self._draining,
            "service": snap.service.metrics(),
        }
        if self._instrument:
            body["daemon"] = self.metrics.as_dict()
        return body

    # -- threads -------------------------------------------------------------

    def _acceptor_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed (drain)
            if self._draining:
                sock.close()
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(sock)
            with self._conns_lock:
                self._conns.append(conn)
            if self._instrument:
                self._accepted.inc()
            self._spawn_reader(conn)

    def _spawn_reader(self, conn: _Connection) -> None:
        thread = threading.Thread(
            target=self._reader_loop, args=(conn,), name="serviced-reader", daemon=True
        )
        thread.start()
        self._threads.append(thread)

    def _reader_loop(self, conn: _Connection) -> None:
        close_on_exit = True
        try:
            while conn.alive:
                try:
                    frame = read_frame(conn.rfile.read)
                except ServicedError as exc:
                    # Unknown protocol state: diagnose, then hang up.
                    conn.send([error_response(None, str(exc))])
                    break
                except OSError:
                    break
                if frame is None:
                    break
                verdict = self._handle_frame(conn, frame)
                if verdict is None:
                    # Drain ack: stop reading but leave the socket open
                    # so responses to already-queued queries still get
                    # out; the shutdown sequence closes it after the
                    # queue is flushed.
                    close_on_exit = False
                    break
                if not verdict:
                    break
        finally:
            if close_on_exit:
                conn.close()

    def _handle_frame(self, conn: _Connection, frame: dict) -> bool | None:
        """Dispatch one request.

        Returns True to keep reading, False to stop and close, None to
        stop reading but keep the connection open (drain ack).
        """
        kind = frame.get("kind")
        rid = frame.get("id")
        if kind == "query":
            if self._instrument:
                self._req_query.inc()
            if self._draining:
                self._respond_error(conn, rid, "daemon is draining")
                return True
            try:
                query = decode_query(frame.get("query"))
            except ServicedError as exc:
                self._respond_error(conn, rid, str(exc))
                return True
            arrival = self._timer() if self._instrument else 0.0
            self._queue.put((conn, rid, query, arrival))
            return True
        if kind in ("stats", "ping", "reload", "drain"):
            if self._instrument:
                self._req_control[kind].inc()
            if kind == "stats":
                self._respond_ok(conn, rid, stats=self.stats())
                return True
            if kind == "ping":
                snap = self._snapshot
                self._respond_ok(
                    conn,
                    rid,
                    version=snap.version,
                    digest=snap.digest,
                    draining=self._draining,
                )
                return True
            if kind == "reload":
                try:
                    reloaded = self.check_reload()
                except ReproError as exc:
                    self._respond_error(conn, rid, str(exc))
                    return True
                self._respond_ok(conn, rid, reloaded=reloaded, version=self.version)
                return True
            # drain: acknowledge first, then stop reading this
            # connection; queued queries still get their answers before
            # the shutdown sequence closes the socket.
            self._respond_ok(conn, rid, draining=True)
            self.drain(wait=False)
            return None
        self._respond_error(conn, rid, f"unknown request kind {kind!r}")
        return True

    def _respond_ok(self, conn: _Connection, rid, **fields) -> None:
        conn.send([ok_response(rid, **fields)])
        if self._instrument:
            self._resp_ok.inc()

    def _respond_error(self, conn: _Connection, rid, message: str) -> None:
        conn.send([error_response(rid, message)])
        if self._instrument:
            self._resp_error.inc()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            batch = [item]
            while len(batch) < self.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    # A shutdown sentinel grabbed early; hand it back
                    # for the blocking get of whichever worker it was
                    # meant to stop.
                    self._queue.task_done()
                    self._queue.put(None)
                    break
                batch.append(extra)
            self._process_batch(batch)

    def _process_batch(self, batch: list) -> None:
        # One snapshot answers the whole batch: every response's
        # (answer, version, digest) triple is internally consistent even
        # while the watcher swaps in a newer report mid-run.
        snap = self._snapshot
        groups: dict[object, list] = {}
        for item in batch:
            groups.setdefault(item[2], []).append(item)
        per_conn: dict[int, tuple[_Connection, list[bytes]]] = {}
        errors = 0
        for query, waiters in groups.items():
            try:
                answer = snap.service.query(query)
                failure = None
            except Exception as exc:  # keep the worker alive, always
                answer, failure = None, str(exc)
            if failure is None:
                # Serialize the group's answer once; only the id differs
                # between the coalesced waiters, so it is spliced into a
                # shared tail instead of re-encoding the whole payload.
                tail = json.dumps(
                    {
                        "answer": answer,
                        "digest": snap.digest[:12],
                        "ok": True,
                        "version": snap.version,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")[1:]
            for conn, rid, _query, _arrival in waiters:
                if failure is None:
                    frame = pack_body(
                        b'{"id":' + json.dumps(rid).encode("utf-8") + b"," + tail
                    )
                else:
                    frame = encode_frame(error_response(rid, failure))
                    errors += 1
                slot = per_conn.get(id(conn))
                if slot is None:
                    per_conn[id(conn)] = (conn, [frame])
                else:
                    slot[1].append(frame)
        for conn, frames in per_conn.values():
            conn.send_raw(frames)
        if self._instrument:
            done = self._timer()
            self._batch_size.observe(len(batch))
            self._coalesced.inc(len(batch) - len(groups))
            self._resp_ok.inc(len(batch) - errors)
            if errors:
                self._resp_error.inc(errors)
            self._latency.observe_many([done - item[3] for item in batch])
        for _ in batch:
            self._queue.task_done()

    def _watcher_loop(self) -> None:
        while not self._stop_watch.wait(self.poll_interval):
            try:
                self.check_reload()
            except ReproError:
                if self._instrument:
                    self._reload_errors.inc()
