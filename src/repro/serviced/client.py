"""Client for the tuning daemon's wire protocol.

:class:`ServicedClient` is the reference client: synchronous typed
queries (:meth:`query`), a pipelined batch path (:meth:`query_many`)
that writes every request frame before reading any response, and the
control verbs (:meth:`stats`, :meth:`ping`, :meth:`reload`,
:meth:`drain`).  It backs ``servet query --remote`` and the load
generator in ``benchmarks/bench_serviced_load.py``.

Failure is always :class:`~repro.errors.ServicedError` with a message
naming what went wrong — connection refused, connection closed
mid-frame, a malformed response, or an error the daemon reported —
so the CLI can turn any of it into a clean ``error:`` exit.
"""

from __future__ import annotations

import socket
from collections.abc import Sequence

from ..errors import ServicedError
from ..service.server import Query
from .protocol import control_request, encode_frame, query_request, read_frame

__all__ = ["ServicedClient"]


class ServicedClient:
    """One connection to a :class:`~repro.serviced.daemon.TuningDaemon`."""

    def __init__(self, host: str, port: int, timeout: float | None = 10.0) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServicedError(
                f"cannot connect to tuning daemon at {host}:{port}: {exc}"
            ) from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise ServicedError(f"cannot send to daemon: {exc}") from exc

    def _read_response(self) -> dict:
        try:
            frame = read_frame(self._rfile.read)
        except OSError as exc:
            raise ServicedError(f"cannot read from daemon: {exc}") from exc
        if frame is None:
            raise ServicedError("daemon closed the connection")
        return frame

    def _roundtrip(self, payload: dict) -> dict:
        self._send(encode_frame(payload))
        response = self._read_response()
        if response.get("id") != payload["id"]:
            raise ServicedError(
                f"daemon answered request {response.get('id')!r} "
                f"out of order (expected {payload['id']})"
            )
        if not response.get("ok"):
            raise ServicedError(
                str(response.get("error", "daemon reported an unnamed error"))
            )
        return response

    # -- queries -------------------------------------------------------------

    def query(self, query: Query) -> dict:
        """Answer one typed query (the answer dict alone)."""
        return self._roundtrip(query_request(query, self._take_id()))["answer"]

    def query_versioned(self, query: Query) -> tuple[dict, int]:
        """One answer plus the report version that produced it."""
        response = self._roundtrip(query_request(query, self._take_id()))
        return response["answer"], int(response["version"])

    def query_many(self, queries: Sequence[Query]) -> list[tuple[dict, int]]:
        """Pipelined batch: send every frame, then collect every answer.

        Responses may arrive in any order (server-side batches are
        drained by a worker pool); they are matched back to their
        request by id, so the returned list lines up with ``queries``.
        """
        ids = [self._take_id() for _ in queries]
        self._send(
            b"".join(
                encode_frame(query_request(q, i)) for q, i in zip(queries, ids)
            )
        )
        by_id: dict[int, dict] = {}
        for _ in queries:
            response = self._read_response()
            by_id[response.get("id")] = response
        results: list[tuple[dict, int]] = []
        for query, request_id in zip(queries, ids):
            response = by_id.get(request_id)
            if response is None:
                raise ServicedError(f"daemon never answered request {request_id}")
            if not response.get("ok"):
                raise ServicedError(
                    f"query {type(query).__name__} failed: "
                    f"{response.get('error', 'unnamed error')}"
                )
            results.append((response["answer"], int(response["version"])))
        return results

    # -- control -------------------------------------------------------------

    def stats(self) -> dict:
        """The daemon's SLO snapshot (metrics + served version)."""
        return self._roundtrip(control_request("stats", self._take_id()))["stats"]

    def ping(self) -> dict:
        """Liveness probe: served version/digest and drain state."""
        return self._roundtrip(control_request("ping", self._take_id()))

    def reload(self) -> bool:
        """Force one hot-reload check; True when a swap happened."""
        return bool(
            self._roundtrip(control_request("reload", self._take_id()))["reloaded"]
        )

    def drain(self) -> None:
        """Ask the daemon to drain and shut down (acknowledged)."""
        self._roundtrip(control_request("drain", self._take_id()))

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServicedClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
