"""Autotuning consumers of a Servet report.

Section V of the paper lists the optimizations the measured parameters
enable; this package implements them against :class:`ServetReport`:

- :mod:`tiling` — tile-size selection from the detected cache sizes
  (blocked matrix multiply model included).
- :mod:`mapping` — process placement minimizing communication and
  memory-contention cost over the measured layers/groups.
- :mod:`aggregation` — message aggregation on poorly scalable
  interconnects ("sending concurrently N messages of size S usually
  costs more than sending one message of size N*S").
- :mod:`advisor` — one façade over all of the above.
"""

from .tiling import (
    TilePlan,
    matmul_plan,
    matmul_tile_side,
    matmul_traffic,
    tile_elements,
)
from .mapping import (
    PlacementResult,
    bandwidth_aware_placement,
    compact_placement,
    scatter_placement,
    placement_cost,
    optimize_placement,
)
from .aggregation import AggregationAdvice, aggregation_advice
from .collectives import (
    CollectiveChoice,
    choose_bcast,
    locality_groups,
    predict_flat_bcast,
    predict_hierarchical_bcast,
)
from .advisor import Advisor

__all__ = [
    "TilePlan",
    "matmul_plan",
    "matmul_tile_side",
    "tile_elements",
    "matmul_traffic",
    "PlacementResult",
    "bandwidth_aware_placement",
    "compact_placement",
    "scatter_placement",
    "placement_cost",
    "optimize_placement",
    "AggregationAdvice",
    "aggregation_advice",
    "CollectiveChoice",
    "choose_bcast",
    "locality_groups",
    "predict_flat_bcast",
    "predict_hierarchical_bcast",
    "Advisor",
]
