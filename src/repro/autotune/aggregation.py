"""Message aggregation on poorly scalable interconnects.

Section III-D: "Sending concurrently N messages of size S usually costs
more than sending one message of size N*S.  Thus, it is possible to
optimize the communication performance by gathering messages in poorly
scalable systems."

The decision an autotuned code actually faces: a rank holds N pieces of
data bound for the same destination (or the ranks of one node hold
pieces bound for another node).  It can issue N separate sends — each
paying the per-message latency, at the *measured* small-message
bandwidth of the layer — or pack them into one N*S-byte message that
amortizes the latency and rides the layer's larger-message bandwidth,
at the cost of a packing copy per piece.  Both sides of the comparison
come straight from the layer's Fig. 10c/d characterization curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.report import CommLayerReport, ServetReport
from ..errors import ReproError


@dataclass
class AggregationAdvice:
    """Outcome of the aggregate-or-not comparison for one layer."""

    layer_index: int
    n_messages: int
    message_size: int
    #: Estimated time for N separate sends (sequential from the source).
    separate_time: float
    #: Estimated time for one aggregated message of N * size bytes
    #: (plus a per-message packing overhead).
    aggregated_time: float
    #: Slowdown multiplier applied when the layer is congested.
    congestion: float = 1.0

    @property
    def aggregate(self) -> bool:
        """True when gathering the messages is predicted to win."""
        return self.aggregated_time < self.separate_time

    @property
    def speedup(self) -> float:
        """Separate time over aggregated time (>1 favours gathering)."""
        if self.aggregated_time == 0.0:
            return float("inf")
        return self.separate_time / self.aggregated_time


def aggregation_advice(
    layer: CommLayerReport,
    n_messages: int,
    message_size: int,
    packing_overhead: float = 2e-7,
    concurrent_senders: int = 1,
) -> AggregationAdvice:
    """Compare N separate sends against one aggregated message.

    ``packing_overhead`` models the copy cost of gathering each piece
    into the aggregation buffer (seconds per piece; a memcpy of a few
    KB).  ``concurrent_senders`` applies the layer's measured
    concurrency slowdown to both alternatives (with C senders the
    un-aggregated scheme keeps C messages in flight and the aggregated
    one C bigger messages, so the factor applies to both transfer
    estimates — but the aggregated scheme pays it on far fewer
    latencies).
    """
    if n_messages < 1 or message_size < 1:
        raise ReproError("n_messages and message_size must be positive")
    if concurrent_senders < 1:
        raise ReproError("concurrent_senders must be >= 1")
    congestion = layer.slowdown_at(concurrent_senders)
    separate = n_messages * layer.estimate_latency(message_size) * congestion
    aggregated = (
        layer.estimate_latency(n_messages * message_size) * congestion
        + packing_overhead * n_messages
    )
    return AggregationAdvice(
        layer_index=layer.index,
        n_messages=n_messages,
        message_size=message_size,
        separate_time=separate,
        aggregated_time=aggregated,
        congestion=congestion,
    )


def advise_all_layers(
    report: ServetReport, n_messages: int, message_size: int
) -> list[AggregationAdvice]:
    """Aggregation advice for every measured layer of a report."""
    return [
        aggregation_advice(layer, n_messages, message_size)
        for layer in report.comm_layers
    ]
