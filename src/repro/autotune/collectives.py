"""Collective-algorithm selection from a Servet report.

The collective-tuning literature the paper cites ([5]-[7]) shows that
SMP clusters want hierarchical collectives: cross the slow interconnect
once per node, fan out locally.  Whether that wins — and how the groups
should be formed — depends on the measured layer structure, which is
exactly what a Servet report contains.

The selection works the way a serious autotuner does:

1. derive locality groups from the measured layers (no topology
   documentation involved);
2. **fit** a per-layer cost model (Hockney-style alpha/beta plus a
   concurrency factor) to the report's characterization and
   scalability curves;
3. **simulate** each candidate algorithm's schedule on the fitted model
   (reusing the :mod:`repro.simmpi` event engine) and pick the winner.

The tests and benches validate the predictions against actual execution
on the real (non-fitted) substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.clustering import groups_from_pairs
from ..core.report import CommLayerReport, ServetReport
from ..errors import ReproError
from ..netsim.model import LayerParams
from ..units import KiB


def locality_groups(
    report: ServetReport, placement: Sequence[int]
) -> list[list[int]]:
    """Partition ranks into groups connected by faster-than-worst layers.

    Two ranks belong to one group when their cores' measured layer is
    not the slowest one — on a cluster that means "same node" without
    ever being told what a node is.  Singleton groups are kept for
    ranks with no fast neighbour.
    """
    if not report.comm_layers:
        return [[r] for r in range(len(placement))]
    slowest = max(layer.latency for layer in report.comm_layers)
    pairs = []
    n = len(placement)
    for i in range(n):
        for j in range(i + 1, n):
            layer = report.comm_layer_of(placement[i], placement[j])
            if layer.latency < slowest:
                pairs.append((i, j))
    groups = groups_from_pairs(pairs)
    grouped = {r for g in groups for r in g}
    for r in range(n):
        if r not in grouped:
            groups.append([r])
    return sorted(groups)


def fit_layer_params(layer: CommLayerReport) -> LayerParams:
    """Fit Hockney-style parameters to a layer's measured curves.

    ``alpha`` and ``beta`` come from a least-squares affine fit of
    latency against message size over the characterization sweep;
    ``gamma`` from the mean per-message slope of the scalability curve.
    The eager threshold is not observable from these measurements; the
    common 64 KB middleware default is assumed.
    """
    if not layer.characterization:
        return LayerParams(
            name=f"layer{layer.index}",
            base_latency=layer.latency,
            bandwidth=1e9,
        )
    sizes = np.array([s for s, _, _ in layer.characterization], dtype=np.float64)
    times = np.array([t for _, t, _ in layer.characterization], dtype=np.float64)
    # The sweep is log-spaced: a plain least-squares line is dominated
    # by the largest messages and drives the intercept negative.  Take
    # the transfer slope from the tail (bandwidth-bound) and the base
    # latency from the smallest points (latency-bound).
    if len(sizes) >= 3:
        slope = float((times[-1] - times[-3]) / (sizes[-1] - sizes[-3]))
    else:
        slope = float((times[-1] - times[0]) / max(sizes[-1] - sizes[0], 1.0))
    slope = max(slope, 1e-12)
    head = min(3, len(sizes))
    alpha = max(float(np.mean(times[:head] - slope * sizes[:head])), 0.0)
    gamma = 0.0
    if layer.scalability:
        slopes = [
            (factor - 1.0) / (n - 1) for n, _, factor in layer.scalability if n > 1
        ]
        if slopes:
            gamma = max(float(np.mean(slopes)), 0.0)
    return LayerParams(
        name=f"layer{layer.index}",
        base_latency=alpha,
        bandwidth=1.0 / slope,
        eager_threshold=64 * KiB,
        rendezvous_latency=0.0,
        contention_factor=gamma,
    )


class ReportCommModel:
    """A CommConfig-compatible model backed by fitted report layers."""

    def __init__(self, report: ServetReport) -> None:
        self.report = report
        self._fitted = {
            layer.index: fit_layer_params(layer) for layer in report.comm_layers
        }

    def params_for_pair(self, cluster, a: int, b: int) -> LayerParams:
        """Fitted parameters of the measured layer serving cores a, b."""
        layer = self.report.comm_layer_of(a, b)
        return self._fitted[layer.index]


class _ReportCluster:
    """Minimal cluster stand-in so the event runtime can bounds-check."""

    def __init__(self, report: ServetReport) -> None:
        self.n_cores = report.n_cores
        self.name = report.system


def _simulate(report: ServetReport, placement: Sequence[int], program) -> float:
    from ..simmpi.comm import World

    world = World(_ReportCluster(report), ReportCommModel(report), list(placement))
    world.spawn_all(program)
    return world.run().makespan


def predict_flat_bcast(
    report: ServetReport,
    placement: Sequence[int],
    nbytes: int,
    root: int = 0,
) -> float:
    """Predicted completion time of the binomial-tree broadcast."""

    def program(rank):
        yield from rank.bcast(root, nbytes)

    return _simulate(report, placement, program)


def predict_hierarchical_bcast(
    report: ServetReport,
    placement: Sequence[int],
    nbytes: int,
    groups: list[list[int]],
    root: int = 0,
) -> float:
    """Predicted completion time of the two-level broadcast."""
    from ..simmpi.collectives import hierarchical_bcast

    if not any(root in g for g in groups):
        raise ReproError("groups must cover the root rank")

    def program(rank):
        yield from hierarchical_bcast(rank, root, nbytes, groups)

    return _simulate(report, placement, program)


@dataclass
class CollectiveChoice:
    """Outcome of the flat-vs-hierarchical comparison."""

    algorithm: str  # "flat" | "hierarchical"
    flat_time: float
    hierarchical_time: float
    groups: list[list[int]]

    @property
    def predicted_speedup(self) -> float:
        """Flat over chosen time (>= 1 when hierarchical wins)."""
        chosen = min(self.flat_time, self.hierarchical_time)
        return self.flat_time / chosen if chosen > 0 else 1.0


def choose_bcast(
    report: ServetReport,
    placement: Sequence[int],
    nbytes: int,
    root: int = 0,
) -> CollectiveChoice:
    """Pick the broadcast algorithm for this placement and size."""
    groups = locality_groups(report, placement)
    flat = predict_flat_bcast(report, placement, nbytes, root)
    if len(groups) <= 1:
        return CollectiveChoice("flat", flat, float("inf"), groups)
    hierarchical = predict_hierarchical_bcast(report, placement, nbytes, groups, root)
    algorithm = "hierarchical" if hierarchical < flat else "flat"
    return CollectiveChoice(algorithm, flat, hierarchical, groups)
