"""One façade over the autotuning helpers.

``Advisor`` is what an autotuned application links against: it loads
the report Servet stored at installation time (Section IV-E) and
answers the questions Section V enumerates — tile sizes, placements,
core throttling and message aggregation.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Sequence

import numpy as np

from ..core.report import ServetReport
from ..errors import ReproError
from .aggregation import AggregationAdvice, aggregation_advice
from .collectives import CollectiveChoice, choose_bcast
from .mapping import (
    PlacementResult,
    bandwidth_aware_placement,
    optimize_placement,
    placement_cost,
)
from .tiling import TilePlan, matmul_plan, matmul_tile_side, tile_elements


class Advisor:
    """Autotuning decisions backed by one Servet report."""

    def __init__(self, report: ServetReport) -> None:
        self.report = report

    @classmethod
    def from_file(cls, path: str | Path) -> "Advisor":
        """Load the report Servet stored at installation time."""
        return cls(ServetReport.load(path))

    # -- tiling -------------------------------------------------------------

    def tile_elements(self, level: int, n_arrays: int, elem_size: int) -> int:
        """Elements per tile for ``n_arrays`` arrays in cache ``level``."""
        return tile_elements(self.report, level, n_arrays, elem_size)

    def matmul_tiles(self, elem_size: int = 8) -> TilePlan:
        """Blocked-matmul tile sides for every cache level."""
        return matmul_plan(self.report, elem_size)

    def matmul_tile(self, level: int, elem_size: int = 8) -> int:
        """Blocked-matmul tile side for one cache level."""
        return matmul_tile_side(self.report, level, elem_size)

    # -- placement ----------------------------------------------------------

    def place(
        self,
        comm_matrix: np.ndarray,
        candidate_cores: Sequence[int] | None = None,
        message_size: int | None = None,
        memory_weight: float = 0.0,
    ) -> PlacementResult:
        """Optimized rank-to-core placement for a communication matrix."""
        return optimize_placement(
            self.report,
            comm_matrix,
            candidate_cores=candidate_cores,
            message_size=message_size,
            memory_weight=memory_weight,
        )

    def placement_cost(
        self,
        placement: Sequence[int],
        comm_matrix: np.ndarray,
        message_size: int | None = None,
    ) -> float:
        """Modelled cost of an explicit placement."""
        return placement_cost(self.report, placement, comm_matrix, message_size)

    def streaming_placement(
        self, n_ranks: int, candidate_cores: Sequence[int] | None = None
    ) -> list[int]:
        """Cores for bandwidth-bound ranks, avoiding measured contention."""
        return bandwidth_aware_placement(self.report, n_ranks, candidate_cores)

    # -- collectives ----------------------------------------------------------

    def choose_bcast(
        self, placement: Sequence[int], nbytes: int, root: int = 0
    ) -> CollectiveChoice:
        """Flat vs hierarchical broadcast for a placement and size."""
        return choose_bcast(self.report, placement, nbytes, root=root)

    # -- core throttling ------------------------------------------------------

    def max_useful_streaming_cores(
        self, group_index: int = 0, efficiency_floor: float = 0.5
    ) -> int:
        """How many cores of an overhead group are worth using for
        bandwidth-bound work.

        "autotuning could optimize codes by limiting the number of cores
        accessing to memory if a poorly scalable memory system is
        detected" (Section III-C).  Returns the largest k whose
        aggregate bandwidth still grows by at least ``efficiency_floor``
        of one isolated core's bandwidth per added core.
        """
        if not self.report.memory_levels:
            return self.report.n_cores
        try:
            level = self.report.memory_levels[group_index]
        except IndexError:
            raise ReproError(f"no memory overhead level {group_index}") from None
        curve = level.scalability
        if not curve:
            return self.report.n_cores
        ref = self.report.memory_reference
        best_k = 1
        for k in range(2, len(curve) + 1):
            aggregate_prev = curve[k - 2] * (k - 1)
            aggregate = curve[k - 1] * k
            if aggregate - aggregate_prev >= efficiency_floor * ref:
                best_k = k
            else:
                break
        return best_k

    # -- aggregation ----------------------------------------------------------

    def should_aggregate(
        self, core_a: int, core_b: int, n_messages: int, message_size: int
    ) -> AggregationAdvice:
        """Aggregate-or-not for traffic between two specific cores."""
        layer = self.report.comm_layer_of(core_a, core_b)
        return aggregation_advice(layer, n_messages, message_size)

    # -- co-scheduling --------------------------------------------------------

    def co_schedule(
        self,
        workloads: Sequence[str],
        seed: int = 0,
        level: int | None = None,
        instances: int | None = None,
        top: int = 5,
    ):
        """Rank placements of workloads onto the detected sharing topology.

        Each workload is a canonical spec string (see
        :func:`repro.workload.parse_workload`); the returned
        :class:`~repro.workload.coschedule.CoScheduleAdvice` ranks the
        ways of packing them onto the report's shared-cache instances
        by predicted contention.  Imported lazily so reports without a
        shared cache don't pay for the workload model.
        """
        from ..workload import co_schedule

        return co_schedule(
            self.report,
            workloads,
            seed=seed,
            level=level,
            instances=instances,
            top=top,
        )
