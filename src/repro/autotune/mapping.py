"""Process placement driven by measured communication layers.

The mapping optimizations the paper cites (MPIPP, Mercier &
Clet-Ortega) need per-pair communication costs; they read them from
machine specifications, which Servet replaces with measurements.  This
module closes the loop: given a Servet report and an application
communication matrix, it evaluates and optimizes rank-to-core
placements.

Cost model: every (i, j) message pays the measured latency of the layer
serving the core pair, interpolated at the message size
(:meth:`CommLayerReport.estimate_latency`); concurrent memory pressure
adds a penalty when two ranks land in the same measured overhead group.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.report import ServetReport
from ..errors import ReproError


def _check_matrix(comm_matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(comm_matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ReproError("communication matrix must be square")
    if (matrix < 0).any():
        raise ReproError("communication matrix must be non-negative")
    return matrix


def compact_placement(n_procs: int) -> list[int]:
    """Ranks packed onto consecutive cores (the common MPI default)."""
    return list(range(n_procs))


def scatter_placement(n_procs: int, n_cores: int) -> list[int]:
    """Ranks spread as far apart as possible (round-robin by stride)."""
    if n_procs > n_cores:
        raise ReproError(f"cannot place {n_procs} ranks on {n_cores} cores")
    stride = max(1, n_cores // n_procs)
    cores = [(i * stride) % n_cores for i in range(n_procs)]
    # Resolve collisions deterministically.
    seen: set[int] = set()
    out: list[int] = []
    for core in cores:
        while core in seen:
            core = (core + 1) % n_cores
        seen.add(core)
        out.append(core)
    return out


def placement_cost(
    report: ServetReport,
    placement: Sequence[int],
    comm_matrix: np.ndarray,
    message_size: int | None = None,
    memory_weight: float = 0.0,
) -> float:
    """Modelled cost (seconds) of one iteration under ``placement``.

    ``comm_matrix[i, j]`` is the number of messages rank i sends to
    rank j per iteration; each costs the measured layer latency at
    ``message_size`` (default: the report's probe size).  When
    ``memory_weight > 0``, pairs of ranks inside one measured memory
    overhead group add ``memory_weight * (1 - BW_group/BW_ref)`` each —
    the bandwidth-loss signal of Fig. 6.
    """
    matrix = _check_matrix(comm_matrix)
    n = matrix.shape[0]
    if len(placement) != n:
        raise ReproError("placement length must match the matrix dimension")
    if len(set(placement)) != n:
        raise ReproError("placement maps two ranks to one core")
    size = message_size if message_size is not None else report.comm_probe_size
    cost = 0.0
    for i in range(n):
        for j in range(n):
            if i == j or matrix[i, j] == 0.0:
                continue
            layer = report.comm_layer_of(placement[i], placement[j])
            cost += matrix[i, j] * layer.estimate_latency(size)
    if memory_weight > 0.0 and report.memory_reference > 0.0:
        for i in range(n):
            for j in range(i + 1, n):
                level = report.memory_level_of(placement[i], placement[j])
                if level is not None:
                    loss = 1.0 - level.bandwidth / report.memory_reference
                    cost += memory_weight * max(loss, 0.0)
    return cost


def bandwidth_aware_placement(
    report: ServetReport,
    n_ranks: int,
    candidate_cores: Sequence[int] | None = None,
) -> list[int]:
    """Place bandwidth-bound ranks to minimize memory contention.

    Greedy: repeatedly pick the core whose addition hurts the aggregate
    the least, judged by the *measured* overhead levels — a pair inside
    a lower-bandwidth group costs more than a pair inside a higher one,
    and cores sharing no group cost nothing.  This is the capability
    P-Ray lacks ("it assumes a uniform cost in the intra-node memory
    access", Section II): without the Fig. 6 measurements every
    placement looks the same.
    """
    cores = (
        list(candidate_cores)
        if candidate_cores is not None
        else list(range(report.n_cores))
    )
    if n_ranks > len(cores):
        raise ReproError(f"cannot place {n_ranks} ranks on {len(cores)} cores")
    if report.memory_reference <= 0:
        return cores[:n_ranks]

    def pair_penalty(a: int, b: int) -> float:
        level = report.memory_level_of(a, b)
        if level is None:
            return 0.0
        return 1.0 - level.bandwidth / report.memory_reference

    chosen: list[int] = []
    for _ in range(n_ranks):
        best_core = None
        best_cost = None
        for core in cores:
            if core in chosen:
                continue
            cost = sum(pair_penalty(core, other) for other in chosen)
            if best_cost is None or cost < best_cost - 1e-12:
                best_core, best_cost = core, cost
        chosen.append(best_core)  # type: ignore[arg-type]
    return chosen


@dataclass
class PlacementResult:
    """An optimized placement and its modelled cost."""

    placement: list[int]
    cost: float
    baseline_cost: float
    iterations: int

    @property
    def improvement(self) -> float:
        """Relative cost reduction vs the starting placement."""
        if self.baseline_cost == 0.0:
            return 0.0
        return 1.0 - self.cost / self.baseline_cost


def optimize_placement(
    report: ServetReport,
    comm_matrix: np.ndarray,
    candidate_cores: Sequence[int] | None = None,
    message_size: int | None = None,
    memory_weight: float = 0.0,
    max_rounds: int = 20,
    seed: int | None = None,
) -> PlacementResult:
    """Hill-climbing placement optimizer (pairwise swaps + relocations).

    Starts from the compact placement and repeatedly applies the best
    improving move: swapping the cores of two ranks, or relocating a
    rank to an unused candidate core.  Deterministic for a given seed;
    guaranteed never to return something worse than compact.
    """
    matrix = _check_matrix(comm_matrix)
    n = matrix.shape[0]
    cores = (
        list(candidate_cores)
        if candidate_cores is not None
        else list(range(report.n_cores))
    )
    if n > len(cores):
        raise ReproError(f"cannot place {n} ranks on {len(cores)} cores")
    placement = [cores[i] for i in range(n)]
    baseline = placement_cost(
        report, placement, matrix, message_size, memory_weight
    )

    def cost_of(p: Sequence[int]) -> float:
        return placement_cost(report, p, matrix, message_size, memory_weight)

    current = baseline
    rounds = 0
    rng = np.random.default_rng(seed)
    for rounds in range(1, max_rounds + 1):
        improved = False
        # Pairwise swaps.
        for i in range(n):
            for j in range(i + 1, n):
                trial = list(placement)
                trial[i], trial[j] = trial[j], trial[i]
                c = cost_of(trial)
                if c < current - 1e-15:
                    placement, current, improved = trial, c, True
        # Relocations onto free cores.
        free = [c for c in cores if c not in placement]
        rng.shuffle(free)
        for i in range(n):
            for core in free:
                trial = list(placement)
                trial[i] = core
                c = cost_of(trial)
                if c < current - 1e-15:
                    placement, current, improved = trial, c, True
                    free = [c2 for c2 in cores if c2 not in placement]
                    break
        if not improved:
            break
    return PlacementResult(
        placement=placement,
        cost=current,
        baseline_cost=baseline,
        iterations=rounds,
    )
