"""Tile-size selection from detected cache sizes.

"Tiling is one of the most widely used optimization techniques and our
suite can help to this technique by providing all the cache sizes in a
portable way" (Section V).  The classic rule: the working set of one
tile iteration — every array block the kernel touches — must fit in a
*fraction* of the target cache (leaving room for other data, and
because a physically indexed cache under random paging thrashes well
before 100% utilization: the very effect Servet's Fig. 3 models).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.report import ServetReport
from ..errors import ReproError

#: Fraction of a cache a tile working set should use.  2/3 mirrors the
#: shared-cache benchmark's observation that (2/3)*CS already conflicts.
DEFAULT_FILL_FRACTION: float = 0.5


def tile_elements(
    report: ServetReport,
    level: int,
    n_arrays: int,
    elem_size: int,
    fill_fraction: float = DEFAULT_FILL_FRACTION,
) -> int:
    """Elements per array tile so ``n_arrays`` tiles fit in cache ``level``.

    >>> # report with a 32 KB L1, two arrays of float64:
    >>> # 32768 * 0.5 / (2 * 8) = 1024 elements per tile
    """
    if n_arrays < 1 or elem_size < 1:
        raise ReproError("n_arrays and elem_size must be positive")
    if not (0.0 < fill_fraction <= 1.0):
        raise ReproError("fill_fraction must be in (0, 1]")
    for cache in report.caches:
        if cache.level == level:
            budget = cache.size * fill_fraction
            return max(1, int(budget // (n_arrays * elem_size)))
    raise ReproError(f"report has no cache level {level}")


def matmul_tile_side(
    report: ServetReport,
    level: int,
    elem_size: int = 8,
    fill_fraction: float | None = None,
) -> int:
    """Square tile side ``b`` for blocked matmul targeting cache ``level``.

    One iteration touches three ``b x b`` blocks (A, B and C).  With an
    explicit ``fill_fraction`` the classic rule applies:
    ``3 * b^2 * elem_size <= fill_fraction * CS``.

    By default (``fill_fraction=None``) the choice is **conflict-aware**
    when the report carries the level's associativity (a free by-product
    of the probabilistic detection): under random page placement a
    physically indexed cache thrashes well before full occupancy, so
    the best tile balances streaming traffic (``~1/b``) against the
    binomial conflict-miss probability of the working set — computed
    from the *measured* size and associativity with the same model the
    detector fits (see :func:`conflict_aware_tile`).  Without a
    measured associativity the classic half-capacity rule is used.
    """
    if fill_fraction is not None:
        per_array = tile_elements(report, level, 3, elem_size, fill_fraction)
        return max(1, int(math.isqrt(per_array)))
    cache = _cache_level(report, level)
    if cache.ways is not None:
        return conflict_aware_tile(report, level, elem_size)
    per_array = tile_elements(report, level, 3, elem_size, DEFAULT_FILL_FRACTION)
    return max(1, int(math.isqrt(per_array)))


def _cache_level(report: ServetReport, level: int):
    for cache in report.caches:
        if cache.level == level:
            return cache
    raise ReproError(f"report has no cache level {level}")


def conflict_aware_tile(
    report: ServetReport,
    level: int,
    elem_size: int = 8,
    line_size: int = 64,
) -> int:
    """Tile side minimizing modelled traffic + conflict refetches.

    Cost of tile ``b`` per block interaction, in cache lines:
    ``3 b^2 / L  +  m(b) * (2 b^2 (b-1) + b^2) / L`` where ``m(b)`` is
    the working set's conflict-miss probability from the binomial
    page-color model — evaluated with the report's measured size and
    associativity.  All quantities come from measurements; no ground
    truth is consulted.
    """
    import numpy as np

    from ..core.probabilistic import predicted_miss_rate

    cache = _cache_level(report, level)
    if cache.ways is None:
        raise ReproError(
            f"L{level} has no measured associativity; use fill_fraction"
        )
    line_elems = max(line_size // elem_size, 1)
    colors = max(cache.size // (cache.ways * report.page_size), 1)
    max_side = int(math.isqrt(cache.size // (3 * elem_size)))
    best_side, best_cost = 1, float("inf")
    side = 16
    while side <= max_side:
        ws_bytes = 3 * side * side * elem_size
        n_pages = max(ws_bytes // report.page_size, 1)
        miss = float(
            predicted_miss_rate(
                np.array([n_pages], dtype=np.float64), cache.ways, 1.0 / colors
            )[0]
        )
        streaming = 3.0 * side * side / line_elems
        refetch = miss * (2.0 * side * side * (side - 1) + side * side) / line_elems
        # Normalize per multiply-add (b^3) so sides are comparable.
        cost = (streaming + refetch) / side**3
        if cost < best_cost:
            best_side, best_cost = side, cost
        side += 16 if side < 256 else 32
    return best_side


@dataclass
class TilePlan:
    """Tile sides per cache level for a blocked matmul."""

    sides: dict[int, int]

    def innermost(self) -> int:
        """Tile side for the smallest (L1) level."""
        return self.sides[min(self.sides)]

    def outermost(self) -> int:
        """Tile side for the largest cache level."""
        return self.sides[max(self.sides)]


def matmul_plan(
    report: ServetReport, elem_size: int = 8, fill_fraction: float = DEFAULT_FILL_FRACTION
) -> TilePlan:
    """Tile sides for every detected cache level (multi-level blocking)."""
    return TilePlan(
        sides={
            cache.level: matmul_tile_side(
                report, cache.level, elem_size, fill_fraction
            )
            for cache in report.caches
        }
    )


def matmul_traffic(n: int, tile: int | None, line_elems: int = 8) -> float:
    """Modelled cache-line traffic of an ``n x n`` matmul (lines fetched).

    The standard blocking analysis (e.g. Hennessy & Patterson):

    - untiled (``tile=None``): every element of B is refetched for each
      of the n iterations of i — ``n^3 / line_elems`` line fetches
      dominate (A streams, C accumulates in registers).
    - tiled with side ``b``: each of the ``(n/b)^3`` block interactions
      refetches two ``b x b`` blocks — ``2 n^3 / (b * line_elems)``
      plus the compulsory ``3 n^2 / line_elems``.

    Used by the tiling example to show the measured cache sizes turning
    into a traffic reduction; not a timing model.
    """
    if n <= 0:
        raise ReproError("matrix dimension must be positive")
    compulsory = 3 * n * n / line_elems
    if tile is None or tile >= n:
        return n**3 / line_elems + compulsory
    if tile < 1:
        raise ReproError("tile side must be >= 1")
    return 2 * n**3 / (tile * line_elems) + compulsory
