"""Deterministic random-number handling.

The probabilistic part of Servet's cache detection relies on the OS
assigning *random* physical pages.  The simulator reproduces that with
NumPy generators; this module provides the single place where seeds are
normalized so every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

#: Default seed used by builders and benchmarks when none is given.
DEFAULT_SEED: int = 0x5E27E7  # "SErVET"


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    - ``None``       -> a generator seeded with :data:`DEFAULT_SEED`
    - ``int``        -> a fresh ``default_rng(seed)``
    - ``Generator``  -> returned unchanged (shared state)
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used when a benchmark runs per-core measurements that must not share
    random streams (e.g. each core's page allocations are independent).
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
