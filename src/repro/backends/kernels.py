"""Measurement kernels for the native backend.

Two implementations of the mcalibrator inner loop:

- :func:`pointer_chase` — the paper's Fig. 1 kernel, verbatim: the
  array itself stores the stride ("using values read from an array as
  stride, thus avoiding aggressive compiler optimizations"), and the
  loop follows ``j = j + A[j]``.  In CPython the interpreter dominates
  each step, which is exactly the repro-band caveat — but the kernel is
  the real one, and its *relative* curve still moves with the memory
  hierarchy on large arrays.
- :func:`gather_traverse` — a vectorized NumPy equivalent whose
  per-access overhead is ~100x lower, used by default for the native
  probe's shape measurements.

Both return seconds per access.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import MeasurementError


def build_chase_array(array_bytes: int, stride: int) -> np.ndarray:
    """The Fig. 1 array: each visited slot holds the stride in elements.

    Elements are int64 (8 bytes); slot ``j`` is visited when ``j`` is a
    multiple of ``stride // 8``; every visited slot stores
    ``stride // 8`` so the traversal ``j += A[j]`` walks the array in
    stride-sized hops, exactly like the pseudo-code.
    """
    if stride % 8 != 0 or stride <= 0:
        raise MeasurementError("stride must be a positive multiple of 8 bytes")
    n = max(array_bytes // 8, 1)
    arr = np.zeros(n, dtype=np.int64)
    hop = stride // 8
    arr[::hop] = hop
    return arr


def pointer_chase(arr: np.ndarray, repeats: int = 1) -> float:
    """Seconds per access of the Fig. 1 loop over a chase array."""
    if repeats < 1:
        raise MeasurementError("repeats must be >= 1")
    n = len(arr)
    data = arr.tolist()  # plain list: avoids numpy scalar boxing per step
    # Warm-up revolution.
    aux = 0
    j = 0
    accesses = 0
    while j < n:
        step = data[j]
        aux += n
        j += step
        accesses += 1
    start = time.perf_counter()
    for _ in range(repeats):
        j = 0
        while j < n:
            step = data[j]
            aux += n
            j += step
    elapsed = time.perf_counter() - start
    if aux < 0:  # pragma: no cover - keeps `aux` alive like the paper's
        raise AssertionError
    return elapsed / (repeats * accesses)


def gather_traverse(arr: np.ndarray, idx: np.ndarray, repeats: int = 1) -> float:
    """Seconds per access of a vectorized strided gather."""
    if repeats < 1:
        raise MeasurementError("repeats must be >= 1")
    arr[idx].sum()  # warm up
    start = time.perf_counter()
    for _ in range(repeats):
        arr[idx].sum()
    elapsed = time.perf_counter() - start
    return elapsed / (repeats * len(idx))
