"""The measurement interface Servet's algorithms are written against."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

from ..topology.machine import CorePair


@dataclass(frozen=True)
class ConcurrentLatency:
    """Latencies when several messages share an interconnect."""

    mean: float
    worst: float


class Backend(abc.ABC):
    """Everything a Servet benchmark may ask of the system under test.

    All methods return *measurements* (with whatever noise the system
    produces); none of them leaks topology ground truth.  Measurement
    cost is accounted in :attr:`virtual_time` so the suite can report
    Table I-style execution times.
    """

    #: Human-readable system name (used in reports).
    name: str
    #: Number of cores a benchmark may pin work to.
    n_cores: int
    #: OS page size in bytes (available to user code via sysconf in the
    #: real suite, so not considered hidden information).
    page_size: int
    #: True when measurements cost real wall-clock time (native
    #: backends): the measurement planner may then overlap independent
    #: probes on a worker pool.  Virtual-time backends stay False so
    #: serial execution keeps their RNG streams and virtual-time
    #: accounting deterministic.
    wall_clock_bound: bool = False

    @abc.abstractmethod
    def traversal_cycles(
        self,
        arrays: Sequence[tuple[int, int]],
        stride: int,
    ) -> dict[int, float]:
        """Run mcalibrator traversals concurrently, one per entry.

        ``arrays`` is a sequence of ``(core, array_bytes)``; all listed
        cores traverse their private arrays simultaneously with the
        given ``stride``.  Returns average cycles per access, per core.
        """

    @abc.abstractmethod
    def copy_bandwidth(self, cores: Sequence[int]) -> dict[int, float]:
        """STREAM-copy bandwidth (bytes/s) per core, run concurrently."""

    @abc.abstractmethod
    def message_latency(self, core_a: int, core_b: int, nbytes: int) -> float:
        """One-way message latency (seconds) between two pinned cores."""

    @abc.abstractmethod
    def concurrent_message_latency(
        self, pairs: Sequence[CorePair], nbytes: int
    ) -> ConcurrentLatency:
        """Per-message latency when every pair exchanges simultaneously."""

    # -- measurement-cost accounting --------------------------------------

    #: Accumulated virtual seconds spent measuring (Table I accounting).
    virtual_time: float = 0.0

    def charge(self, seconds: float) -> None:
        """Add measurement cost to the virtual clock."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.virtual_time += seconds

    def take_virtual_time(self) -> float:
        """Return the accumulated virtual time and reset the clock."""
        elapsed, self.virtual_time = self.virtual_time, 0.0
        return elapsed
