"""The measurement interface Servet's algorithms are written against."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

from ..topology.machine import CorePair


@dataclass(frozen=True)
class ConcurrentLatency:
    """Latencies when several messages share an interconnect."""

    mean: float
    worst: float


class Backend(abc.ABC):
    """Everything a Servet benchmark may ask of the system under test.

    All methods return *measurements* (with whatever noise the system
    produces); none of them leaks topology ground truth.  Measurement
    cost is accounted in :attr:`virtual_time` so the suite can report
    Table I-style execution times.
    """

    #: Human-readable system name (used in reports).
    name: str
    #: Number of cores a benchmark may pin work to.
    n_cores: int
    #: OS page size in bytes (available to user code via sysconf in the
    #: real suite, so not considered hidden information).
    page_size: int
    #: True when measurements cost real wall-clock time (native
    #: backends): the measurement planner may then overlap independent
    #: probes on a worker pool.  Virtual-time backends stay False so
    #: serial execution keeps their RNG streams and virtual-time
    #: accounting deterministic.
    wall_clock_bound: bool = False

    @abc.abstractmethod
    def traversal_cycles(
        self,
        arrays: Sequence[tuple[int, int]],
        stride: int,
    ) -> dict[int, float]:
        """Run mcalibrator traversals concurrently, one per entry.

        ``arrays`` is a sequence of ``(core, array_bytes)``; all listed
        cores traverse their private arrays simultaneously with the
        given ``stride``.  Returns average cycles per access, per core.
        """

    @abc.abstractmethod
    def copy_bandwidth(self, cores: Sequence[int]) -> dict[int, float]:
        """STREAM-copy bandwidth (bytes/s) per core, run concurrently."""

    @abc.abstractmethod
    def message_latency(self, core_a: int, core_b: int, nbytes: int) -> float:
        """One-way message latency (seconds) between two pinned cores."""

    @abc.abstractmethod
    def concurrent_message_latency(
        self, pairs: Sequence[CorePair], nbytes: int
    ) -> ConcurrentLatency:
        """Per-message latency when every pair exchanges simultaneously."""

    # -- measurement-cost accounting --------------------------------------

    #: Accumulated virtual seconds spent measuring (Table I accounting).
    virtual_time: float = 0.0

    def charge(self, seconds: float) -> None:
        """Add measurement cost to the virtual clock."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.virtual_time += seconds

    def take_virtual_time(self) -> float:
        """Return the accumulated virtual time and reset the clock."""
        elapsed, self.virtual_time = self.virtual_time, 0.0
        return elapsed


#: The four measurement entry points every backend exposes — the hook
#: surface :func:`instrument_backend` wraps.
MEASUREMENT_METHODS: tuple[str, ...] = (
    "traversal_cycles",
    "copy_bandwidth",
    "message_latency",
    "concurrent_message_latency",
)


def instrument_backend(backend: Backend, tracer=None, metrics=None) -> Backend:
    """Attach observability to a backend *instance* (idempotent).

    Wraps the measurement methods so every call emits a
    ``backend.<method>`` span (when a tracer is given) and increments a
    ``backend.calls{method=...}`` counter plus a virtual-seconds
    histogram (when a metrics registry is given).  Works on raw
    backends and on the resilience wrappers alike — the wrapper is
    installed on whatever object the suite actually calls, so retries
    inside :class:`~repro.resilience.HardenedBackend` count as one
    call, matching what a phase asked for.

    Re-instrumenting an already-instrumented backend only swaps the
    sinks (tracer/metrics), so a backend reused across suite runs
    reports to the run that is currently driving it.

    Backends exposing a ``bind_metrics(metrics)`` hook (directly or via
    a delegating resilience wrapper) are handed the registry so they
    can export internal counters — e.g. the simulated backend's
    traversal outcome cache hits/misses.  Counter and histogram objects
    are resolved here, once, not per call: the wrapper sits on the
    hottest path in the suite and must not pay a registry lookup per
    probe.
    """
    if metrics is not None:
        call_counters = {
            m: metrics.counter("backend.calls", method=m)
            for m in MEASUREMENT_METHODS
        }
        call_histograms = {
            m: metrics.histogram("backend.call_virtual_seconds", method=m)
            for m in MEASUREMENT_METHODS
        }
        bind = getattr(backend, "bind_metrics", None)
        if bind is not None:
            bind(metrics)
    else:
        call_counters = call_histograms = None
    backend._obs_sinks = (tracer, call_counters, call_histograms)
    if getattr(backend, "_obs_instrumented", False):
        return backend
    for method_name in MEASUREMENT_METHODS:
        original = getattr(backend, method_name)

        def wrapper(*args, _original=original, _name=method_name, **kwargs):
            sink_tracer, counters, histograms = backend._obs_sinks
            if counters is not None:
                counters[_name].inc()
            before = getattr(backend, "virtual_time", 0.0)
            if sink_tracer is None:
                result = _original(*args, **kwargs)
            else:
                with sink_tracer.span(f"backend.{_name}"):
                    result = _original(*args, **kwargs)
            if histograms is not None:
                elapsed = getattr(backend, "virtual_time", 0.0) - before
                if elapsed > 0:
                    histograms[_name].observe(elapsed)
            return result

        setattr(backend, method_name, wrapper)
    backend._obs_instrumented = True
    return backend
