"""Backend driving the simulated substrate.

Couples the analytic memory simulator, the bandwidth allocator and the
discrete-event MPI runtime behind the :class:`Backend` interface, adds
multiplicative Gaussian measurement noise (real benchmarks are never
exact), and charges a calibrated virtual cost per measurement so the
suite can report Table I-style execution times.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..errors import MeasurementError
from ..ioutils import sha256_hex
from ..memsim.outcome import GLOBAL_COMM_CACHE, GLOBAL_OUTCOME_CACHE
from ..memsim.paging import PagePolicy, RandomPaging
from ..memsim.prefetch import PrefetchModel
from ..memsim.stream import stream_copy_bandwidth
from ..memsim.traversal import Traversal, TraversalEngine
from ..netsim.model import CommConfig
from ..netsim.presets import default_comm_config
from ..rng import ensure_rng
from ..simmpi.primitives import concurrent_exchanges, pingpong_latency
from ..topology.machine import Cluster, CorePair, Machine
from .base import Backend, ConcurrentLatency


@dataclass(frozen=True)
class MeasurementCosts:
    """Virtual-time cost model of one measurement of each kind.

    Calibrated to land in the regime of the paper's Table I: each
    measurement pays a setup overhead (process launch, pinning, MPI
    synchronization) plus a minimum sampling duration (benchmarks repeat
    their kernels until timings stabilize).
    """

    traversal_setup: float = 0.1
    traversal_min_sample: float = 0.4
    traversal_rounds: int = 8
    pair_traversal_setup: float = 0.1
    pair_traversal_min_sample: float = 0.15
    stream_setup: float = 0.3
    stream_min_sample: float = 3.5
    message_setup: float = 3.0
    message_repetitions: int = 1000


class SimulatedBackend(Backend):
    """Measurements against the simulated multicore cluster.

    Parameters
    ----------
    system:
        A :class:`Machine` (wrapped as a 1-node cluster) or a
        :class:`Cluster`.
    comm_config:
        Communication cost model; defaults to the system's preset.
    paging:
        Page-placement policy for the memory simulator (the page-coloring
        ablation swaps this).
    prefetch:
        Hardware prefetcher model.
    noise:
        Relative standard deviation of multiplicative measurement noise
        (0 disables noise).
    seed:
        RNG seed for noise and page placement.
    sim_cache:
        When True (default) the traversal engine answers repeated
        simulations from the process-wide outcome cache; False is the
        hard bypass (every probe re-simulates).  Semantically
        transparent either way — cached results are byte-identical —
        but the knob keeps baselines honest and is recorded in the
        suite checkpoint fingerprint.
    """

    def __init__(
        self,
        system: Machine | Cluster,
        comm_config: CommConfig | None = None,
        paging: PagePolicy | None = None,
        prefetch: PrefetchModel | None = None,
        noise: float = 0.01,
        seed: int | None = None,
        costs: MeasurementCosts | None = None,
        sim_cache: bool = True,
    ) -> None:
        if isinstance(system, Machine):
            system = Cluster(system.name, system, n_nodes=1)
        self.cluster = system
        self.machine = system.node
        self.comm_config = (
            comm_config if comm_config is not None else default_comm_config(system)
        )
        self.comm_config.validate_against(system)
        self.engine = TraversalEngine(
            self.machine,
            paging=paging if paging is not None else RandomPaging(),
            prefetch=prefetch,
            outcome_cache=GLOBAL_OUTCOME_CACHE if sim_cache else None,
        )
        if noise < 0:
            raise MeasurementError("noise must be >= 0")
        self.noise = noise
        self.rng = ensure_rng(seed)
        self.costs = costs if costs is not None else MeasurementCosts()
        self.name = system.name
        self.n_cores = system.n_cores
        self.page_size = self.machine.page_size
        self.virtual_time = 0.0
        # The communication substrate is RNG-free: a ping-pong or
        # concurrent exchange is a pure function of this token plus the
        # probe parameters, so repeats skip the event loop entirely.
        self._comm_token = sha256_hex(
            f"{self.cluster!r}|{self.comm_config.canonical()}"
        )
        self._comm_cache = GLOBAL_COMM_CACHE if sim_cache else None
        self._comm_hits = None
        self._comm_misses = None

    # -- outcome cache ------------------------------------------------------

    @property
    def sim_cache(self) -> bool:
        """Whether the traversal engine consults the outcome cache."""
        return self.engine.outcome_cache is not None

    def set_sim_cache(self, enabled: bool) -> None:
        """Toggle the outcome caches (the ``--no-sim-cache`` knob)."""
        self.engine.outcome_cache = GLOBAL_OUTCOME_CACHE if enabled else None
        self._comm_cache = GLOBAL_COMM_CACHE if enabled else None

    def bind_metrics(self, metrics) -> None:
        """Export cache counters through ``metrics`` (see
        :func:`repro.backends.base.instrument_backend`)."""
        self.engine.bind_metrics(metrics)
        self._comm_hits = metrics.counter("simmpi.comm.hits")
        self._comm_misses = metrics.counter("simmpi.comm.misses")

    # -- noise -------------------------------------------------------------

    def _noisy(self, value: float) -> float:
        if self.noise == 0.0:
            return value
        factor = float(self.rng.normal(1.0, self.noise))
        return value * max(factor, 0.5)  # clip pathological draws

    # -- Backend API --------------------------------------------------------

    def traversal_cycles(
        self,
        arrays: Sequence[tuple[int, int]],
        stride: int,
    ) -> dict[int, float]:
        if not arrays:
            raise MeasurementError("traversal_cycles needs at least one array")
        for core, _ in arrays:
            if self.cluster.node_of(core) != self.cluster.node_of(arrays[0][0]):
                raise MeasurementError(
                    "concurrent traversals must share one node (memory is "
                    "not shared across nodes)"
                )
        local = [
            Traversal(self.cluster.local_core(core), nbytes, stride)
            for core, nbytes in arrays
        ]
        result = self.engine.run(local, rng=self.rng)
        costs = self.costs
        setup = (
            costs.traversal_setup if len(arrays) == 1 else costs.pair_traversal_setup
        )
        min_sample = (
            costs.traversal_min_sample
            if len(arrays) == 1
            else costs.pair_traversal_min_sample
        )
        round_secs = max(result.seconds_per_round.values())
        self.charge(setup + max(min_sample, costs.traversal_rounds * round_secs))
        out: dict[int, float] = {}
        for (core, _), trav in zip(arrays, local):
            out[core] = self._noisy(result.cycles_per_access[trav.core])
        return out

    def copy_bandwidth(self, cores: Sequence[int]) -> dict[int, float]:
        if not cores:
            raise MeasurementError("copy_bandwidth needs at least one core")
        nodes = {self.cluster.node_of(c) for c in cores}
        if len(nodes) > 1:
            # Cores on different nodes do not share memory: measure each
            # node's group independently (no interference, like reality).
            out: dict[int, float] = {}
            for node in nodes:
                group = [c for c in cores if self.cluster.node_of(c) == node]
                out.update(self.copy_bandwidth(group))
            return out
        local = {self.cluster.local_core(c): c for c in cores}
        bw = stream_copy_bandwidth(self.machine, list(local))
        self.charge(self.costs.stream_setup + self.costs.stream_min_sample)
        return {local[lc]: self._noisy(v) for lc, v in bw.items()}

    def message_latency(self, core_a: int, core_b: int, nbytes: int) -> float:
        cache, key = self._comm_cache, None
        latency = None
        if cache is not None:
            key = (self._comm_token, "pingpong", core_a, core_b, nbytes)
            latency = cache.get(key)
            counter = self._comm_misses if latency is None else self._comm_hits
            if counter is not None:
                counter.inc()
        if latency is None:
            latency = pingpong_latency(
                self.cluster, self.comm_config, core_a, core_b, nbytes,
                repetitions=4,
            )
            if key is not None:
                cache.put(key, latency)
        self.charge(
            self.costs.message_setup
            + 2 * self.costs.message_repetitions * latency
        )
        return self._noisy(latency)

    def concurrent_message_latency(
        self, pairs: Sequence[CorePair], nbytes: int
    ) -> ConcurrentLatency:
        cache, key = self._comm_cache, None
        cached = None
        if cache is not None:
            key = (self._comm_token, "concurrent", tuple(pairs), nbytes)
            cached = cache.get(key)
            counter = self._comm_misses if cached is None else self._comm_hits
            if counter is not None:
                counter.inc()
        if cached is None:
            result = concurrent_exchanges(
                self.cluster, self.comm_config, pairs, nbytes
            )
            cached = (result.mean, result.worst)
            if key is not None:
                cache.put(key, cached)
        mean, worst = cached
        self.charge(
            self.costs.message_setup + self.costs.message_repetitions * worst
        )
        return ConcurrentLatency(mean=self._noisy(mean), worst=self._noisy(worst))
