"""Measurement backends.

The Servet benchmark algorithms (:mod:`repro.core`) are written against
the :class:`Backend` protocol and never see the machine model directly —
they must *measure* everything, exactly like the real suite.  Two
implementations exist:

- :class:`SimulatedBackend` — drives the :mod:`repro.memsim` /
  :mod:`repro.netsim` / :mod:`repro.simmpi` substrate, with calibrated
  measurement noise and virtual-time accounting (for Table I).
- :class:`NativeBackend` — best-effort real timings on the host
  machine with NumPy/threads.  Provided for completeness; CPython
  interpreter overhead masks cache effects (the reason this
  reproduction simulates — see DESIGN.md §2).
"""

from .base import Backend, ConcurrentLatency
from .simulated import SimulatedBackend
from .native import NativeBackend

__all__ = ["Backend", "ConcurrentLatency", "SimulatedBackend", "NativeBackend"]
