"""Best-effort native backend (real timings on the host).

The calibration note for this reproduction is explicit: CPython
interpreter overhead masks cache effects, which is why the accuracy
experiments all run against :class:`SimulatedBackend`.  This backend
still implements the full :class:`Backend` interface with real
measurements so the suite can be pointed at actual hardware — results
are indicative at best (L1-level effects are invisible from Python; a C
extension would be needed to reproduce the paper natively).

Implementation notes:

- Traversals use NumPy fancy-gather over a strided index vector;
  reported "cycles" are nanoseconds per access scaled by a nominal
  1 GHz clock (relative shape is what the detectors use).
- Bandwidth uses ``np.copyto`` on arrays far larger than any cache,
  concurrently via threads (NumPy releases the GIL for large copies).
- Message latency uses ``multiprocessing.Pipe`` ping-pong between
  processes pinned with ``os.sched_setaffinity`` where available.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Sequence

import numpy as np

from ..errors import MeasurementError
from ..topology.machine import CorePair
from .base import Backend, ConcurrentLatency

_NOMINAL_HZ = 1e9  # "cycles" = nanoseconds; only relative shape matters


def _pin(core: int) -> None:
    """Pin the calling thread/process to ``core`` if the OS allows."""
    try:
        os.sched_setaffinity(0, {core})
    except (AttributeError, OSError):
        pass


def _traverse_once(arr: np.ndarray, idx: np.ndarray, repeats: int) -> float:
    """Seconds per access of a strided gather traversal."""
    # Warm up, then measure.
    arr[idx].sum()
    start = time.perf_counter()
    for _ in range(repeats):
        arr[idx].sum()
    elapsed = time.perf_counter() - start
    return elapsed / (repeats * len(idx))


def _pingpong_child(conn, core: int, nbytes: int, reps: int) -> None:
    _pin(core)
    payload = conn.recv_bytes()
    for _ in range(reps):
        conn.send_bytes(payload)
        payload = conn.recv_bytes()
    conn.send_bytes(payload)


class NativeBackend(Backend):
    """Real measurements on the host machine (best effort).

    ``kernel`` selects the traversal implementation: ``"gather"``
    (vectorized NumPy, the default — lowest interpreter overhead) or
    ``"chase"`` (the paper's Fig. 1 pointer-chase loop, verbatim; two
    orders of magnitude slower per access under CPython but faithful).
    """

    #: Real measurements pay wall-clock time, so the measurement
    #: planner is allowed to overlap core-disjoint probes (--jobs).
    wall_clock_bound = True

    def __init__(self, repeats: int = 8, kernel: str = "gather") -> None:
        if kernel not in ("gather", "chase"):
            raise MeasurementError(f"unknown kernel {kernel!r}")
        self.name = f"native:{os.uname().nodename}" if hasattr(os, "uname") else "native"
        self.n_cores = os.cpu_count() or 1
        self.page_size = (
            os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
        )
        self.repeats = repeats
        self.kernel = kernel
        self.virtual_time = 0.0

    def traversal_cycles(
        self,
        arrays: Sequence[tuple[int, int]],
        stride: int,
    ) -> dict[int, float]:
        if stride % 8 != 0:
            raise MeasurementError("native traversal needs a stride multiple of 8")
        start_wall = time.perf_counter()

        def one(core: int, nbytes: int) -> float:
            from .kernels import build_chase_array, pointer_chase

            _pin(core)
            if self.kernel == "chase":
                arr = build_chase_array(nbytes, stride)
                return pointer_chase(arr, self.repeats) * _NOMINAL_HZ
            n = max(nbytes // 8, 1)
            arr = np.zeros(n, dtype=np.int64)
            idx = np.arange(0, n, stride // 8, dtype=np.int64)
            secs = _traverse_once(arr, idx, self.repeats)
            return secs * _NOMINAL_HZ

        if len(arrays) == 1:
            core, nbytes = arrays[0]
            result = {core: one(core, nbytes)}
        else:
            with ThreadPoolExecutor(max_workers=len(arrays)) as pool:
                futures = {
                    core: pool.submit(one, core, nbytes) for core, nbytes in arrays
                }
                result = {core: f.result() for core, f in futures.items()}
        self.charge(time.perf_counter() - start_wall)
        return result

    def copy_bandwidth(self, cores: Sequence[int]) -> dict[int, float]:
        start_wall = time.perf_counter()
        nbytes = 64 << 20  # 64 MB defeats any realistic cache

        def one(core: int) -> float:
            _pin(core)
            src = np.zeros(nbytes // 8, dtype=np.float64)
            dst = np.empty_like(src)
            np.copyto(dst, src)  # warm-up / page fault
            start = time.perf_counter()
            for _ in range(3):
                np.copyto(dst, src)
            elapsed = time.perf_counter() - start
            return 3 * 2 * nbytes / elapsed  # read + write traffic

        if len(cores) == 1:
            result = {cores[0]: one(cores[0])}
        else:
            with ThreadPoolExecutor(max_workers=len(cores)) as pool:
                futures = {core: pool.submit(one, core) for core in cores}
                result = {core: f.result() for core, f in futures.items()}
        self.charge(time.perf_counter() - start_wall)
        return result

    def message_latency(self, core_a: int, core_b: int, nbytes: int) -> float:
        start_wall = time.perf_counter()
        reps = 32
        parent, child = mp.Pipe()
        proc = mp.Process(
            target=_pingpong_child, args=(child, core_b, nbytes, reps)
        )
        proc.start()
        _pin(core_a)
        payload = b"\0" * max(nbytes, 1)
        parent.send_bytes(payload)  # hand the payload over; child echoes
        start = time.perf_counter()
        for _ in range(reps):
            payload = parent.recv_bytes()
            parent.send_bytes(payload)
        parent.recv_bytes()
        elapsed = time.perf_counter() - start
        proc.join()
        self.charge(time.perf_counter() - start_wall)
        return elapsed / (2 * (reps + 1))

    def concurrent_message_latency(
        self, pairs: Sequence[CorePair], nbytes: int
    ) -> ConcurrentLatency:
        start_wall = time.perf_counter()
        times: list[float] = []
        with ThreadPoolExecutor(max_workers=len(pairs)) as pool:
            futures = [
                pool.submit(self.message_latency, a, b, nbytes) for a, b in pairs
            ]
            times = [f.result() for f in futures]
        # message_latency already charged inner costs; only the overlap
        # bookkeeping is added here.
        self.charge(max(0.0, time.perf_counter() - start_wall - sum(times)))
        return ConcurrentLatency(mean=float(np.mean(times)), worst=float(np.max(times)))
