"""Ground-truth recovery: run the suite blind, score every parameter.

The harness runs the full :class:`~repro.core.suite.ServetSuite` against
a :class:`~repro.backends.simulated.SimulatedBackend` built from a zoo
machine (``noise=0`` by default — the generator families are designed so
that a correct detector recovers their observables *exactly*), then
compares the report against the machine's frozen
:class:`~repro.zoo.families.GroundTruth`.

Each parameter gets one of four verdicts:

``match``
    The detector reported the observable value exactly.
``tolerated``
    Within the parameter's declared tolerance (or the parameter is
    marked ``soft`` and the method is known to approximate it).
``undetectable``
    The parameter is declared unobservable by these probes and the
    detector stayed honest: it reported nothing — with an explicit
    provenance reason where the report has a field for the parameter.
``WRONG``
    The detector reported a value that contradicts the truth, or
    claimed to detect something declared undetectable.  Any WRONG fails
    the sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..backends.simulated import SimulatedBackend
from ..core.report import ServetReport
from ..core.suite import ServetSuite
from ..fleet.spec import stable_seed
from .families import GeneratedMachine, GroundTruth, ParamTruth

MATCH = "match"
TOLERATED = "tolerated"
UNDETECTABLE = "undetectable"
WRONG = "WRONG"


@dataclass(frozen=True)
class ParamVerdict:
    """Scored outcome for one ground-truth parameter."""

    parameter: str
    verdict: str
    expected: object
    detected: object
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "parameter": self.parameter,
            "verdict": self.verdict,
            "expected": self.expected,
            "detected": self.detected,
            "reason": self.reason,
        }


@dataclass
class MachineRecovery:
    """Recovery outcome for one generated machine."""

    family: str
    seed: int
    machine_name: str
    verdicts: list[ParamVerdict]
    wall_seconds: float

    @property
    def wrong(self) -> list[ParamVerdict]:
        return [v for v in self.verdicts if v.verdict == WRONG]

    @property
    def ok(self) -> bool:
        return not self.wrong

    def counts(self) -> dict[str, int]:
        out = {MATCH: 0, TOLERATED: 0, UNDETECTABLE: 0, WRONG: 0}
        for v in self.verdicts:
            out[v.verdict] += 1
        return out

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "seed": self.seed,
            "machine_name": self.machine_name,
            "wall_seconds": self.wall_seconds,
            "counts": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


@dataclass
class ZooRecoveryReport:
    """Aggregate of a recovery sweep."""

    results: list[MachineRecovery] = field(default_factory=list)

    @property
    def machines(self) -> int:
        return len(self.results)

    @property
    def families(self) -> list[str]:
        return sorted({r.family for r in self.results})

    @property
    def wrong_total(self) -> int:
        return sum(len(r.wrong) for r in self.results)

    @property
    def ok(self) -> bool:
        return self.wrong_total == 0

    def per_family(self) -> dict[str, dict[str, float]]:
        """Per-family verdict counts plus machine count and wall time."""
        out: dict[str, dict[str, float]] = {}
        for r in self.results:
            agg = out.setdefault(
                r.family,
                {
                    "machines": 0,
                    "wall_seconds": 0.0,
                    MATCH: 0,
                    TOLERATED: 0,
                    UNDETECTABLE: 0,
                    WRONG: 0,
                },
            )
            agg["machines"] += 1
            agg["wall_seconds"] += r.wall_seconds
            for verdict, n in r.counts().items():
                agg[verdict] += n
        return out

    def to_dict(self) -> dict:
        return {
            "machines": self.machines,
            "families": self.families,
            "wrong_total": self.wrong_total,
            "per_family": self.per_family(),
            "results": [r.to_dict() for r in self.results],
        }

    def summary(self) -> str:
        lines = [
            f"zoo recovery: {self.machines} machines, "
            f"{len(self.families)} families, {self.wrong_total} WRONG"
        ]
        for family, agg in sorted(self.per_family().items()):
            lines.append(
                f"  {family}: {agg['machines']} machines, "
                f"{agg[MATCH]} match / {agg[TOLERATED]} tolerated / "
                f"{agg[UNDETECTABLE]} undetectable / {agg[WRONG]} WRONG "
                f"({agg['wall_seconds']:.2f}s)"
            )
        for r in self.results:
            for v in r.wrong:
                lines.append(
                    f"  WRONG {r.machine_name} {v.parameter}: "
                    f"expected {v.expected!r}, detected {v.detected!r}"
                )
        return "\n".join(lines)


# -- scoring --------------------------------------------------------------


def _close(a: float, b: float, rel: float) -> bool:
    if a == b:
        return True
    if rel <= 0.0:
        return False
    scale = max(abs(a), abs(b))
    return scale > 0 and abs(a - b) <= rel * scale


def _numeric_verdict(truth: ParamTruth, detected: float) -> ParamVerdict:
    expected = truth.observable
    if detected == expected:
        return ParamVerdict(truth.parameter, MATCH, expected, detected)
    if _close(float(detected), float(expected), truth.tolerance):
        return ParamVerdict(
            truth.parameter,
            TOLERATED,
            expected,
            detected,
            reason=f"within tolerance {truth.tolerance}",
        )
    if truth.soft:
        return ParamVerdict(
            truth.parameter,
            TOLERATED,
            expected,
            detected,
            reason="soft parameter: method is a declared approximation",
        )
    return ParamVerdict(truth.parameter, WRONG, expected, detected)


def _norm_groups(groups) -> list[list[int]]:
    return sorted(sorted(int(c) for c in g) for g in groups if len(g) > 1)


def _score_cache_level(
    truth: ParamTruth, report: ServetReport, level: int, kind: str
) -> ParamVerdict:
    if level > len(report.caches):
        return ParamVerdict(
            truth.parameter,
            WRONG,
            truth.observable,
            None,
            reason=f"report has only {len(report.caches)} cache levels",
        )
    cache = report.caches[level - 1]
    if kind == "size":
        return _numeric_verdict(truth, cache.size)
    if kind == "sharing":
        detected = _norm_groups(cache.sharing_groups)
        expected = _norm_groups(truth.observable)
        verdict = MATCH if detected == expected else WRONG
        return ParamVerdict(truth.parameter, verdict, expected, detected)
    # kind == "ways": declared undetectable on every zoo level (the
    # sharp virtually-indexed cliffs are read positionally, which
    # carries no associativity estimate).  An emitted number that
    # happens to equal the truth still counts as a match.
    detected = cache.ways
    if detected is None:
        return ParamVerdict(
            truth.parameter,
            UNDETECTABLE,
            None,
            None,
            reason=truth.note,
        )
    if detected == truth.true_value:
        return ParamVerdict(truth.parameter, MATCH, truth.true_value, detected)
    if truth.soft:
        return ParamVerdict(
            truth.parameter,
            TOLERATED,
            truth.true_value,
            detected,
            reason="soft parameter",
        )
    return ParamVerdict(
        truth.parameter,
        WRONG,
        None,
        detected,
        reason="claimed an associativity for an undetectable level",
    )


def _score_memory(truth: ParamTruth, report: ServetReport) -> ParamVerdict:
    expected = truth.observable
    detected = [
        {
            "bandwidth": float(lvl.bandwidth),
            "groups": _norm_groups(lvl.groups),
        }
        for lvl in report.memory_levels
    ]
    detected.sort(key=lambda e: e["bandwidth"])
    exp = [
        {"bandwidth": float(e["bandwidth"]), "groups": _norm_groups(e["groups"])}
        for e in expected
    ]
    exp.sort(key=lambda e: e["bandwidth"])
    if len(detected) != len(exp):
        return ParamVerdict(
            truth.parameter,
            WRONG,
            exp,
            detected,
            reason=f"expected {len(exp)} memory levels, detected {len(detected)}",
        )
    exact = True
    for d, e in zip(detected, exp):
        if d["groups"] != e["groups"]:
            return ParamVerdict(
                truth.parameter, WRONG, exp, detected, reason="group mismatch"
            )
        if d["bandwidth"] != e["bandwidth"]:
            exact = False
            if not _close(d["bandwidth"], e["bandwidth"], truth.tolerance):
                return ParamVerdict(
                    truth.parameter,
                    WRONG,
                    exp,
                    detected,
                    reason="bandwidth outside tolerance",
                )
    verdict = MATCH if exact else TOLERATED
    return ParamVerdict(truth.parameter, verdict, exp, detected)


def _score_comm(truth: ParamTruth, report: ServetReport) -> ParamVerdict:
    expected = truth.observable
    detected = [
        {
            "pairs": sorted([sorted(int(c) for c in p) for p in layer.pairs]),
            "latency": float(layer.latency),
        }
        for layer in report.comm_layers
    ]
    detected.sort(key=lambda e: (e["latency"], e["pairs"]))
    exp = [
        {
            "pairs": sorted([sorted(int(c) for c in p) for p in e["pairs"]]),
            "latency": float(e["latency"]),
        }
        for e in expected
    ]
    exp.sort(key=lambda e: (e["latency"], e["pairs"]))
    if len(detected) != len(exp):
        return ParamVerdict(
            truth.parameter,
            WRONG,
            exp,
            detected,
            reason=f"expected {len(exp)} comm layers, detected {len(detected)}",
        )
    exact = True
    for d, e in zip(detected, exp):
        if d["pairs"] != e["pairs"]:
            return ParamVerdict(
                truth.parameter, WRONG, exp, detected, reason="pair partition mismatch"
            )
        if d["latency"] != e["latency"]:
            exact = False
            if not _close(d["latency"], e["latency"], truth.tolerance):
                return ParamVerdict(
                    truth.parameter,
                    WRONG,
                    exp,
                    detected,
                    reason="layer latency outside tolerance",
                )
    verdict = MATCH if exact else TOLERATED
    return ParamVerdict(truth.parameter, verdict, exp, detected)


def _score_tlb(truth: ParamTruth, report: ServetReport) -> ParamVerdict:
    detected = report.tlb_entries
    if truth.observable is None:
        if detected is not None:
            return ParamVerdict(
                truth.parameter,
                WRONG,
                None,
                detected,
                reason="claimed TLB entries on a machine without a bounded TLB",
            )
        record = report.provenance.get("tlb.entries")
        method = record.get("method") if isinstance(record, dict) else None
        if method != "undetectable":
            return ParamVerdict(
                truth.parameter,
                WRONG,
                None,
                detected,
                reason=(
                    "give-up not recorded: expected an 'undetectable' "
                    "provenance entry explaining why no TLB was found"
                ),
            )
        return ParamVerdict(
            truth.parameter,
            UNDETECTABLE,
            None,
            None,
            reason=str(record.get("note", "")),
        )
    return _numeric_verdict(truth, detected)


def score_report(report: ServetReport, truth: GroundTruth) -> list[ParamVerdict]:
    """Compare a suite report against a machine's ground truth."""
    verdicts: list[ParamVerdict] = []
    for param in truth.params:
        name = param.parameter
        if name == "cache.levels":
            verdicts.append(_numeric_verdict(param, len(report.caches)))
        elif name.startswith("cache.L"):
            level = int(name.split(".")[1][1:])
            kind = name.split(".")[2]
            verdicts.append(_score_cache_level(param, report, level, kind))
        elif name == "memory.levels":
            verdicts.append(_score_memory(param, report))
        elif name == "comm.layers":
            verdicts.append(_score_comm(param, report))
        elif name == "tlb.entries":
            verdicts.append(_score_tlb(param, report))
        elif param.observable is None:
            # Parameters outside the suite's detection surface (victim
            # entries, sector tags, NIC rails...): the report has no
            # field that could even state them, so honesty is structural
            # and the family's note records why.
            verdicts.append(
                ParamVerdict(name, UNDETECTABLE, None, None, reason=param.note)
            )
        else:
            verdicts.append(
                ParamVerdict(
                    name,
                    WRONG,
                    param.observable,
                    None,
                    reason="ground truth names a parameter the harness cannot score",
                )
            )
    return verdicts


def recover_machine(
    gm: GeneratedMachine,
    noise: float = 0.0,
    backend_seed: int | None = None,
) -> MachineRecovery:
    """Run the blind suite on one zoo machine and score the report."""
    seed = (
        backend_seed
        if backend_seed is not None
        else stable_seed("zoo.recover", gm.family, gm.seed)
    )
    backend = SimulatedBackend(
        gm.cluster, comm_config=gm.comm, noise=noise, seed=seed
    )
    suite = ServetSuite(backend)
    start = time.perf_counter()
    report = suite.run()
    wall = time.perf_counter() - start
    return MachineRecovery(
        family=gm.family,
        seed=gm.seed,
        machine_name=gm.truth.machine_name,
        verdicts=score_report(report, gm.truth),
        wall_seconds=wall,
    )


def recover_all(
    machines: list[GeneratedMachine],
    noise: float = 0.0,
    progress=None,
) -> ZooRecoveryReport:
    """Recover every machine; ``progress(done, total, result)`` optional."""
    out = ZooRecoveryReport()
    total = len(machines)
    for i, gm in enumerate(machines, start=1):
        result = recover_machine(gm, noise=noise)
        out.results.append(result)
        if progress is not None:
            progress(i, total, result)
    return out
