"""Seeded generation of zoo machines.

``generate_machine(family, seed)`` is a pure function: the same
``(family, seed)`` always produces a byte-identical machine (same
serialized dict, same repr) because the builder consumes a
``random.Random`` seeded from a SHA-256 of the coordinates — never the
process hash seed or wall clock.  That determinism is what makes the
recovery sweep reproducible and lets CI pin its quick-mode seeds.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from ..fleet.spec import stable_seed
from .families import GeneratedMachine, family_builder, family_names

#: Namespace mixed into every zoo seed so zoo streams never collide
#: with fleet job seeds derived from the same integers.
ZOO_NAMESPACE = "repro.zoo"


def generate_machine(family: str, seed: int) -> GeneratedMachine:
    """Build one machine of ``family`` from ``seed``, with ground truth."""
    builder = family_builder(family)
    rng = random.Random(stable_seed(ZOO_NAMESPACE, family, seed))
    return builder(rng, seed)


def generate_zoo(
    families: Sequence[str] | None = None,
    seeds: int | Iterable[int] = 24,
) -> list[GeneratedMachine]:
    """Generate ``seeds`` machines per family (all families by default).

    ``seeds`` may be a count (uses ``range(count)``) or an explicit
    iterable of seed integers.  Machines come out grouped by family in
    sorted family order, seeds ascending — a stable sweep order.
    """
    if families is None:
        families = family_names()
    seed_list = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
    return [
        generate_machine(family, seed)
        for family in families
        for seed in seed_list
    ]
