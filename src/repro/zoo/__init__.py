"""repro.zoo: seeded machine generator + ground-truth recovery harness.

The four paper machines prove the suite can rediscover hardware the
model was built from.  The zoo asks the harder question: does detection
still hold on machines the suite has *never seen*?  Each family bends
one architectural assumption (exclusive and victim caches, sectored
lines, odd associativity, sub-NUMA clustering, heterogeneous cores,
multi-rail and oversubscribed interconnects) while recording frozen
ground truth, and the recovery harness runs the blind suite against
every generated machine, scoring each parameter ``match``,
``tolerated``, ``undetectable`` (with the reason) or ``WRONG``.
"""

from .families import (
    FAMILIES,
    GeneratedMachine,
    GroundTruth,
    ParamTruth,
    family_builder,
    family_names,
)
from .generate import ZOO_NAMESPACE, generate_machine, generate_zoo
from .recover import (
    MATCH,
    TOLERATED,
    UNDETECTABLE,
    WRONG,
    MachineRecovery,
    ParamVerdict,
    ZooRecoveryReport,
    recover_all,
    recover_machine,
    score_report,
)

__all__ = [
    "FAMILIES",
    "GeneratedMachine",
    "GroundTruth",
    "ParamTruth",
    "family_builder",
    "family_names",
    "ZOO_NAMESPACE",
    "generate_machine",
    "generate_zoo",
    "MATCH",
    "TOLERATED",
    "UNDETECTABLE",
    "WRONG",
    "MachineRecovery",
    "ParamVerdict",
    "ZooRecoveryReport",
    "recover_all",
    "recover_machine",
    "score_report",
]
