"""Machine families the paper never saw, with frozen ground truth.

Each family builder derives one valid :class:`Machine` (plus its
communication model) from a seeded ``random.Random`` and records a
:class:`GroundTruth`: every parameter the suite claims to detect, with
the value a *correct* detector should report.  Two values appear per
parameter:

- ``true_value`` — the architectural fact (e.g. an exclusive L2 really
  has 480 KB of SRAM);
- ``observable`` — what Servet-style strided/pairwise probes can
  resolve (the same L2 *observes* as 512 KB, because probes see the
  combined L1+L2 capacity).  ``observable is None`` declares the
  parameter undetectable by this suite's methods; the recovery harness
  then requires the detectors to stay silent about it — explicitly,
  with a provenance reason where the report has a field for it — and
  scores any emitted number as ``WRONG``.

Families keep themselves inside the detectable regime on purpose:
observable cache capacities land exactly on the mcalibrator probe
schedule, communication layers stay separated beyond the 15 %
clustering tolerance at the L1-sized probe, and bandwidth domains are
water-filling-exact.  What is *not* arranged to be detectable is
declared undetectable instead — that honesty is the point of the zoo
(Cooper & Xu's hidden-hierarchy argument).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..netsim.layers import true_layers
from ..netsim.model import CommConfig, LayerParams
from ..topology.cache import (
    CacheLevel,
    CacheOrganization,
    CacheSpec,
    Indexing,
    grouped,
    private_groups,
)
from ..topology.machine import (
    BandwidthDomain,
    Cluster,
    CoreClass,
    Machine,
    partition_by,
)
from ..units import KiB, MiB

GB_S = 1e9
US = 1e-6


# -- ground truth records ------------------------------------------------


@dataclass(frozen=True)
class ParamTruth:
    """One detectable (or declared-undetectable) parameter."""

    parameter: str
    true_value: object
    #: What a correct detector should report; ``None`` = undetectable.
    observable: object
    #: Relative tolerance for numeric comparison (0.0 = exact).
    tolerance: float = 0.0
    #: Soft parameters score ``tolerated`` instead of ``WRONG`` on a
    #: mismatch (used for estimates the method is known to approximate).
    soft: bool = False
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "parameter": self.parameter,
            "true_value": self.true_value,
            "observable": self.observable,
            "tolerance": self.tolerance,
            "soft": self.soft,
            "note": self.note,
        }


@dataclass(frozen=True)
class GroundTruth:
    """Frozen record of everything the suite should recover."""

    family: str
    seed: int
    machine_name: str
    params: tuple[ParamTruth, ...]

    def param(self, name: str) -> ParamTruth:
        for p in self.params:
            if p.parameter == name:
                return p
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "seed": self.seed,
            "machine_name": self.machine_name,
            "params": [p.to_dict() for p in self.params],
        }


@dataclass(frozen=True)
class GeneratedMachine:
    """A generated cluster plus its communication model and truth."""

    family: str
    seed: int
    cluster: Cluster
    comm: CommConfig
    truth: GroundTruth

    @property
    def machine(self) -> Machine:
        return self.cluster.node


# -- shared construction helpers -----------------------------------------


@dataclass(frozen=True)
class _ObsLevel:
    """One level of the *observable* cache hierarchy."""

    size: int
    true_size: int | None = None          # None: same as observable
    groups: tuple = ()                    # sharing groups (>= 2 cores)
    ways_true: int | None = None
    size_note: str = ""
    ways_note: str = (
        "level read positionally (virtually indexed / page-colored "
        "cliff); the positional method carries no associativity estimate"
    )


def _shm_layer(name: str, rank: int, jitter_us: float) -> LayerParams:
    """Rank-ordered shared-memory layer (same scheme as the presets).

    At the L1-sized probe the transfer term dominates, so both the base
    and the bandwidth must spread with rank to keep consecutive layers
    more than the comm benchmark's 15 % clustering tolerance apart.
    """
    return LayerParams(
        name=name,
        base_latency=(0.3 + 0.7 * rank + jitter_us) * US,
        bandwidth=(3.0 - 0.4 * rank) * GB_S,
    )


def _inter_layer(
    rng: random.Random, nic_count: int = 1, gamma: float = 0.3
) -> LayerParams:
    return LayerParams(
        name="inter-node",
        base_latency=rng.choice([6.0, 8.0, 10.0]) * US,
        bandwidth=1.25 * GB_S,
        contention_factor=gamma,
        nic_count=nic_count,
    )


def _uniform_root(n_cores: int, core_bw: float, factor: float) -> BandwidthDomain:
    """One shared bus constraining every concurrent pair to factor/2."""
    return BandwidthDomain(
        "bus", capacity=factor * core_bw, cores=frozenset(range(n_cores))
    )


def _bus_tree(
    n_cores: int,
    core_bw: float,
    bus_size: int,
    bus_factor: float,
    cell_size: int | None = None,
) -> BandwidthDomain:
    """Root (unconstraining) over optional cells over small buses."""
    buses = tuple(
        BandwidthDomain(f"bus{i}", capacity=bus_factor * core_bw, cores=cores)
        for i, cores in enumerate(partition_by(range(n_cores), bus_size))
    )
    if cell_size is None:
        children = buses
    else:
        children = tuple(
            BandwidthDomain(
                f"cell{i}",
                capacity=2.5 * core_bw,
                cores=cores,
                children=tuple(b for b in buses if b.cores <= cores),
            )
            for i, cores in enumerate(partition_by(range(n_cores), cell_size))
        )
    return BandwidthDomain(
        "node",
        capacity=n_cores * core_bw,
        cores=frozenset(range(n_cores)),
        children=children,
    )


def _comm_truth(cluster: Cluster, comm: CommConfig, probe_size: int) -> list[dict]:
    """Expected comm layers (pair partition + model latency), ascending."""
    partition = true_layers(cluster, comm, cores=list(cluster.cores))
    entries = []
    for name, pairs in partition.items():
        params = comm.params_for_relationship(name.split("|")[0])
        entries.append(
            {
                "pairs": sorted([list(p) for p in pairs]),
                "latency": params.latency(probe_size),
            }
        )
    entries.sort(key=lambda e: (e["latency"], e["pairs"]))
    return entries


def _finish(
    family: str,
    seed: int,
    cluster: Cluster,
    comm: CommConfig,
    obs_levels: list[_ObsLevel],
    memory_levels: list[dict],
    extras: list[ParamTruth],
) -> GeneratedMachine:
    """Assemble the GroundTruth shared by every family."""
    params: list[ParamTruth] = [
        ParamTruth(
            parameter="cache.levels",
            true_value=len(obs_levels),
            observable=len(obs_levels),
            note="number of cache levels the strided probe can resolve",
        )
    ]
    for i, lvl in enumerate(obs_levels, start=1):
        true_size = lvl.true_size if lvl.true_size is not None else lvl.size
        params.append(
            ParamTruth(
                parameter=f"cache.L{i}.size",
                true_value=true_size,
                observable=lvl.size,
                note=lvl.size_note or "capacity cliff on the probe schedule",
            )
        )
        params.append(
            ParamTruth(
                parameter=f"cache.L{i}.sharing",
                true_value=sorted([sorted(g) for g in lvl.groups]),
                observable=sorted([sorted(g) for g in lvl.groups]),
                note="pairwise thrash ratio above 2 marks sharing",
            )
        )
        params.append(
            ParamTruth(
                parameter=f"cache.L{i}.ways",
                true_value=lvl.ways_true,
                observable=None,
                note=lvl.ways_note,
            )
        )
    params.append(
        ParamTruth(
            parameter="memory.levels",
            true_value=memory_levels,
            observable=memory_levels,
            tolerance=1e-9,
            note=(
                "water-filling allocation through the bandwidth-domain "
                "tree; a pair behind a domain of capacity C gets C/2 each"
            ),
        )
    )
    params.append(
        ParamTruth(
            parameter="tlb.entries",
            true_value=None,
            observable=None,
            note=(
                "the machine models an effectively unbounded TLB; the "
                "one-line-per-page sweep must find no undiscounted cliff "
                "and record an explicit undetectable provenance entry"
            ),
        )
    )
    probe_size = obs_levels[0].size
    params.append(
        ParamTruth(
            parameter="comm.layers",
            true_value=_comm_truth(cluster, comm, probe_size),
            observable=_comm_truth(cluster, comm, probe_size),
            tolerance=1e-6,
            note=(
                f"latency clustering at the L1-sized probe "
                f"({probe_size} B); layers with equal cost parameters "
                "merge, exactly as on Finis Terrae"
            ),
        )
    )
    params.extend(extras)
    truth = GroundTruth(
        family=family,
        seed=seed,
        machine_name=cluster.name,
        params=tuple(params),
    )
    return GeneratedMachine(
        family=family, seed=seed, cluster=cluster, comm=comm, truth=truth
    )


def _base_scalars(rng: random.Random) -> tuple[float, float, float]:
    """(core_bw, mem_latency, jitter_us) palette shared by the families."""
    core_bw = rng.choice([2.5, 3.0, 3.5]) * GB_S
    mem_latency = rng.choice([220.0, 250.0, 280.0])
    jitter_us = rng.choice([0.0, 0.05, 0.1, 0.15])
    return core_bw, mem_latency, jitter_us


def _l1(size: int, ways: int, n_cores: int) -> CacheLevel:
    return CacheLevel(
        CacheSpec(1, size, ways=ways, indexing=Indexing.VIRTUAL, latency=3.0),
        private_groups(n_cores),
    )


def _machine(
    name: str,
    n_cores: int,
    levels: tuple[CacheLevel, ...],
    root: BandwidthDomain,
    core_bw: float,
    mem_latency: float,
    processors=None,
    cells=None,
    core_classes=None,
) -> Machine:
    cores = frozenset(range(n_cores))
    return Machine(
        name=name,
        n_cores=n_cores,
        levels=levels,
        processors=processors if processors is not None else (cores,),
        cells=cells if cells is not None else (cores,),
        page_size=4 * KiB,
        mem_latency=mem_latency,
        clock_hz=2.0e9,
        core_stream_bw=core_bw,
        bandwidth_root=root,
        core_classes=core_classes,
    )


def _uniform_memory_truth(n_cores: int, core_bw: float, factor: float) -> list[dict]:
    return [
        {
            "bandwidth": factor * core_bw / 2.0,
            "groups": [list(range(n_cores))],
        }
    ]


# -- the families --------------------------------------------------------


def _family_exclusive_l2(rng: random.Random, seed: int) -> GeneratedMachine:
    """AMD-style exclusive L2: probes observe S1 + S2, not S2."""
    n = 4
    core_bw, mem_latency, jitter = _base_scalars(rng)
    w2 = rng.choice([7, 15, 31])
    s1 = 32 * KiB
    s2 = w2 * 512 * 64          # 512 sets keeps extra ways integral
    levels = (
        _l1(s1, 8, n),
        CacheLevel(
            CacheSpec(
                2,
                s2,
                ways=w2,
                indexing=Indexing.VIRTUAL,
                latency=rng.choice([12.0, 14.0, 16.0]),
                organization=CacheOrganization.EXCLUSIVE,
            ),
            private_groups(n),
        ),
    )
    factor = rng.choice([1.2, 1.4, 1.6])
    machine = _machine(
        f"zoo-exclusive_l2-{seed:04d}",
        n,
        levels,
        _uniform_root(n, core_bw, factor),
        core_bw,
        mem_latency,
    )
    cluster = Cluster(machine.name, machine)
    comm = CommConfig({"same-node": _shm_layer("same-node", 0, jitter)})
    obs = [
        _ObsLevel(size=s1, ways_true=8),
        _ObsLevel(
            size=s1 + s2,
            true_size=s2,
            ways_true=w2,
            size_note=(
                f"exclusive L2 of {s2} B observes as {s1 + s2} B: the "
                "cyclic working set enjoys the combined L1+L2 capacity"
            ),
        ),
    ]
    extras = [
        ParamTruth(
            parameter="cache.L2.organization",
            true_value="exclusive",
            observable=None,
            note=(
                "the fill discipline leaves no signature of its own at "
                "noise=0; only the inflated capacity cliff (scored under "
                "cache.L2.size) betrays it"
            ),
        )
    ]
    return _finish(
        "exclusive_l2",
        seed,
        cluster,
        comm,
        obs,
        _uniform_memory_truth(n, core_bw, factor),
        extras,
    )


def _family_victim_cache(rng: random.Random, seed: int) -> GeneratedMachine:
    """Jouppi victim buffer between L1 and L2: invisible to the probes."""
    n = 4
    core_bw, mem_latency, jitter = _base_scalars(rng)
    entries = rng.choice([8, 16])
    s1 = rng.choice([32 * KiB, 64 * KiB])
    l1_ways = 8
    pairs = [[0, 1], [2, 3]]
    levels = (
        _l1(s1, l1_ways, n),
        CacheLevel(
            CacheSpec(
                2,
                entries * 64,
                ways=entries,
                indexing=Indexing.VIRTUAL,
                latency=2.0,
                organization=CacheOrganization.VICTIM,
            ),
            private_groups(n),
        ),
        CacheLevel(
            CacheSpec(
                3,
                2 * MiB,
                ways=8,
                indexing=Indexing.VIRTUAL,
                latency=rng.choice([14.0, 16.0]),
            ),
            grouped(pairs),
        ),
    )
    factor = rng.choice([1.2, 1.4, 1.6])
    machine = _machine(
        f"zoo-victim_cache-{seed:04d}",
        n,
        levels,
        _uniform_root(n, core_bw, factor),
        core_bw,
        mem_latency,
        processors=grouped(pairs),
    )
    cluster = Cluster(machine.name, machine)
    comm = CommConfig(
        {
            "shared-l3": _shm_layer("shared-l3", 0, jitter),
            "same-node": _shm_layer("same-node", 1, jitter),
        }
    )
    obs = [
        _ObsLevel(size=s1, ways_true=l1_ways),
        _ObsLevel(
            size=2 * MiB,
            ways_true=8,
            groups=tuple(tuple(p) for p in pairs),
            size_note="the main L2 observes as the second level",
        ),
    ]
    extras = [
        ParamTruth(
            parameter="cache.victim.entries",
            true_value=entries,
            observable=None,
            note=(
                f"fully-associative victim buffer of {entries} lines "
                f"({entries * 64} B total) holds fewer lines than the "
                "1 KiB-strided working set at the L1 cliff; it absorbs "
                "nothing the probe can see"
            ),
        )
    ]
    return _finish(
        "victim_cache",
        seed,
        cluster,
        comm,
        obs,
        _uniform_memory_truth(n, core_bw, factor),
        extras,
    )


def _family_sectored(rng: random.Random, seed: int) -> GeneratedMachine:
    """Sectored L2 (one tag per 2-4 lines): capacity reads true."""
    n = 4
    core_bw, mem_latency, jitter = _base_scalars(rng)
    # The L2 size scales with the sector count so the tag capacity
    # (size / line / sector_lines = 16384 here) stays above the 8192
    # pages of the TLB sweep; a smaller sectored cache would show a
    # tag-capacity cliff at page stride that mimics a TLB.
    s2, sector_lines = rng.choice([(2 * MiB, 2), (4 * MiB, 4)])
    s1 = rng.choice([16 * KiB, 32 * KiB])
    l1_ways = 8 if s1 == 32 * KiB else 4
    levels = (
        _l1(s1, l1_ways, n),
        CacheLevel(
            CacheSpec(
                2,
                s2,
                ways=8,
                indexing=Indexing.VIRTUAL,
                latency=rng.choice([12.0, 14.0]),
                sector_lines=sector_lines,
            ),
            private_groups(n),
        ),
    )
    factor = rng.choice([1.2, 1.4, 1.6])
    machine = _machine(
        f"zoo-sectored-{seed:04d}",
        n,
        levels,
        _uniform_root(n, core_bw, factor),
        core_bw,
        mem_latency,
    )
    cluster = Cluster(machine.name, machine)
    comm = CommConfig({"same-node": _shm_layer("same-node", 0, jitter)})
    obs = [
        _ObsLevel(size=s1, ways_true=l1_ways),
        _ObsLevel(size=s2, ways_true=8),
    ]
    extras = [
        ParamTruth(
            parameter="cache.L2.sector_lines",
            true_value=sector_lines,
            observable=None,
            note=(
                f"sector tags cover {sector_lines * 64} B, below the "
                "1 KiB probe stride, so every access claims a fresh "
                "sector and the tag math is invisible; capacity still "
                "reads true"
            ),
        )
    ]
    return _finish(
        "sectored",
        seed,
        cluster,
        comm,
        obs,
        _uniform_memory_truth(n, core_bw, factor),
        extras,
    )


def _family_odd_assoc(rng: random.Random, seed: int) -> GeneratedMachine:
    """Non-power-of-two associativity (3/6/12-way) shared L2."""
    n = 4
    core_bw, mem_latency, jitter = _base_scalars(rng)
    s1 = rng.choice([16 * KiB, 32 * KiB, 64 * KiB])
    l1_ways = {16 * KiB: 4, 32 * KiB: 8, 64 * KiB: 8}[s1]
    # Pairs chosen so the first probe size past the cliff (the +1 MB
    # grid point) loads every touched set uniformly: the miss is then
    # total, the cliff single-point, and the positional read exact.
    # 6 MB with only 3 ways fails that (7 MB spreads 7168 lines over
    # 2048 sets non-uniformly), so it stays out of the palette.
    s2, w2 = rng.choice(
        [
            (3 * MiB, 3),
            (3 * MiB, 6),
            (3 * MiB, 12),
            (6 * MiB, 6),
            (6 * MiB, 12),
        ]
    )
    pairs = [[0, 1], [2, 3]]
    levels = (
        _l1(s1, l1_ways, n),
        CacheLevel(
            CacheSpec(
                2,
                s2,
                ways=w2,
                indexing=Indexing.VIRTUAL,
                latency=rng.choice([16.0, 18.0]),
            ),
            grouped(pairs),
        ),
    )
    factor = rng.choice([1.2, 1.4, 1.6])
    machine = _machine(
        f"zoo-odd_assoc-{seed:04d}",
        n,
        levels,
        _uniform_root(n, core_bw, factor),
        core_bw,
        mem_latency,
        processors=grouped(pairs),
    )
    cluster = Cluster(machine.name, machine)
    comm = CommConfig(
        {
            "shared-l2": _shm_layer("shared-l2", 0, jitter),
            "same-node": _shm_layer("same-node", 1, jitter),
        }
    )
    obs = [
        _ObsLevel(size=s1, ways_true=l1_ways),
        _ObsLevel(
            size=s2,
            ways_true=w2,
            groups=tuple(tuple(p) for p in pairs),
            size_note=(
                f"{w2}-way associativity is not a power of two, but the "
                "capacity cliff still lands exactly at the size"
            ),
        ),
    ]
    return _finish(
        "odd_assoc",
        seed,
        cluster,
        comm,
        obs,
        _uniform_memory_truth(n, core_bw, factor),
        [],
    )


def _family_snc(rng: random.Random, seed: int) -> GeneratedMachine:
    """Sub-NUMA clustering: two cells, per-pair memory buses, two
    distinct shared-memory communication layers."""
    n = 8
    core_bw, mem_latency, jitter = _base_scalars(rng)
    s1 = rng.choice([16 * KiB, 32 * KiB])
    l1_ways = 4 if s1 == 16 * KiB else 8
    levels = (
        _l1(s1, l1_ways, n),
        CacheLevel(
            CacheSpec(
                2,
                rng.choice([256 * KiB, 512 * KiB]),
                ways=8,
                indexing=Indexing.VIRTUAL,
                latency=10.0,
            ),
            private_groups(n),
        ),
    )
    bus_factor = rng.choice([1.2, 1.4])
    root = _bus_tree(n, core_bw, bus_size=2, bus_factor=bus_factor, cell_size=4)
    machine = _machine(
        f"zoo-snc-{seed:04d}",
        n,
        levels,
        root,
        core_bw,
        mem_latency,
        processors=partition_by(range(n), 2),
        cells=partition_by(range(n), 4),
    )
    cluster = Cluster(machine.name, machine)
    comm = CommConfig(
        {
            "same-cell": _shm_layer("same-cell", 0, jitter),
            "same-node": _shm_layer("same-node", 1, jitter),
        }
    )
    obs = [
        _ObsLevel(size=s1, ways_true=l1_ways),
        _ObsLevel(size=levels[1].spec.size, ways_true=8),
    ]
    memory = [
        {
            "bandwidth": bus_factor * core_bw / 2.0,
            "groups": [[c, c + 1] for c in range(0, n, 2)],
        }
    ]
    extras = [
        ParamTruth(
            parameter="topology.snc_cells",
            true_value=2,
            observable=None,
            note=(
                "the report has no cell-count field; sub-NUMA clustering "
                "surfaces only through the same-cell communication layer "
                "and the bus-level memory groups, scored above"
            ),
        )
    ]
    return _finish("snc", seed, cluster, comm, obs, memory, extras)


def _family_big_little(rng: random.Random, seed: int) -> GeneratedMachine:
    """Heterogeneous cores: 4 big + 4 little, per-cluster shared L2."""
    n = 8
    core_bw, mem_latency, jitter = _base_scalars(rng)
    scale = rng.choice([1.25, 1.4, 1.6])
    clusters = [[0, 1, 2, 3], [4, 5, 6, 7]]
    levels = (
        _l1(32 * KiB, 8, n),
        CacheLevel(
            CacheSpec(
                2,
                2 * MiB,
                ways=8,
                indexing=Indexing.VIRTUAL,
                latency=rng.choice([14.0, 16.0]),
            ),
            grouped(clusters),
        ),
    )
    factor = rng.choice([1.2, 1.4, 1.6])
    core_classes = (
        CoreClass("big", frozenset(clusters[0]), cycle_scale=1.0),
        CoreClass("little", frozenset(clusters[1]), cycle_scale=scale),
    )
    machine = _machine(
        f"zoo-big_little-{seed:04d}",
        n,
        levels,
        _uniform_root(n, core_bw, factor),
        core_bw,
        mem_latency,
        processors=grouped(clusters),
        core_classes=core_classes,
    )
    cluster = Cluster(machine.name, machine)
    comm = CommConfig(
        {
            "shared-l2": _shm_layer("shared-l2", 0, jitter),
            "same-node": _shm_layer("same-node", 1, jitter),
        }
    )
    obs = [
        _ObsLevel(size=32 * KiB, ways_true=8),
        _ObsLevel(
            size=2 * MiB,
            ways_true=8,
            groups=tuple(tuple(c) for c in clusters),
        ),
    ]
    extras = [
        ParamTruth(
            parameter="core_classes.little_scale",
            true_value=scale,
            observable=None,
            note=(
                f"little cores burn {scale}x cycles per access, but every "
                "detector is ratio-based (gradients, thrash ratios) or "
                "runs on core 0, so the heterogeneity normalizes away; "
                "the report has no per-core speed field"
            ),
        )
    ]
    return _finish(
        "big_little",
        seed,
        cluster,
        comm,
        obs,
        _uniform_memory_truth(n, core_bw, factor),
        extras,
    )


def _family_multi_nic(rng: random.Random, seed: int) -> GeneratedMachine:
    """Two nodes with a multi-rail interconnect (2 or 4 NICs)."""
    n = 4
    core_bw, mem_latency, jitter = _base_scalars(rng)
    nic_count = rng.choice([2, 4])
    levels = (
        _l1(32 * KiB, 8, n),
        CacheLevel(
            CacheSpec(
                2,
                2 * MiB,
                ways=8,
                indexing=Indexing.VIRTUAL,
                latency=14.0,
            ),
            grouped([[0, 1, 2, 3]]),
        ),
    )
    factor = rng.choice([1.2, 1.4, 1.6])
    machine = _machine(
        f"zoo-multi_nic-{seed:04d}",
        n,
        levels,
        _uniform_root(n, core_bw, factor),
        core_bw,
        mem_latency,
    )
    cluster = Cluster(machine.name, machine, n_nodes=2)
    comm = CommConfig(
        {
            "shared-l2": _shm_layer("shared-l2", 0, jitter),
            "inter-node": _inter_layer(rng, nic_count=nic_count, gamma=0.5),
        }
    )
    obs = [
        _ObsLevel(size=32 * KiB, ways_true=8),
        _ObsLevel(
            size=2 * MiB, ways_true=8, groups=((0, 1, 2, 3),)
        ),
    ]
    extras = [
        ParamTruth(
            parameter="comm.inter-node.nic_count",
            true_value=nic_count,
            observable=None,
            note=(
                f"{nic_count} rails only change *concurrent* transfer "
                "inflation (ceil(N/nics) per rail); the layer detector "
                "measures one pair at a time, where every rail count "
                "behaves identically"
            ),
        )
    ]
    return _finish(
        "multi_nic",
        seed,
        cluster,
        comm,
        obs,
        _uniform_memory_truth(n, core_bw, factor),
        extras,
    )


def _family_fat_tree(rng: random.Random, seed: int) -> GeneratedMachine:
    """Two nodes behind an oversubscribed fat-tree uplink."""
    n = 4
    core_bw, mem_latency, jitter = _base_scalars(rng)
    gamma = rng.choice([0.6, 0.9])
    pairs = [[0, 1], [2, 3]]
    levels = (
        _l1(32 * KiB, 8, n),
        CacheLevel(
            CacheSpec(
                2,
                2 * MiB,
                ways=8,
                indexing=Indexing.VIRTUAL,
                latency=14.0,
            ),
            grouped(pairs),
        ),
    )
    factor = rng.choice([1.2, 1.4, 1.6])
    machine = _machine(
        f"zoo-fat_tree-{seed:04d}",
        n,
        levels,
        _uniform_root(n, core_bw, factor),
        core_bw,
        mem_latency,
        processors=grouped(pairs),
    )
    cluster = Cluster(machine.name, machine, n_nodes=2)
    comm = CommConfig(
        {
            "shared-l2": _shm_layer("shared-l2", 0, jitter),
            "same-node": _shm_layer("same-node", 1, jitter),
            "inter-node": _inter_layer(rng, nic_count=1, gamma=gamma),
        }
    )
    obs = [
        _ObsLevel(size=32 * KiB, ways_true=8),
        _ObsLevel(
            size=2 * MiB,
            ways_true=8,
            groups=tuple(tuple(p) for p in pairs),
        ),
    ]
    extras = [
        ParamTruth(
            parameter="comm.inter-node.contention_factor",
            true_value=gamma,
            observable=None,
            note=(
                f"the oversubscribed uplink (gamma={gamma}) inflates only "
                "concurrent transfers; single-pair latency probes cannot "
                "separate it from a non-blocking fabric"
            ),
        )
    ]
    return _finish(
        "fat_tree",
        seed,
        cluster,
        comm,
        obs,
        _uniform_memory_truth(n, core_bw, factor),
        extras,
    )


#: Family registry: name -> builder(rng, seed).
FAMILIES: dict[str, object] = {
    "exclusive_l2": _family_exclusive_l2,
    "victim_cache": _family_victim_cache,
    "sectored": _family_sectored,
    "odd_assoc": _family_odd_assoc,
    "snc": _family_snc,
    "big_little": _family_big_little,
    "multi_nic": _family_multi_nic,
    "fat_tree": _family_fat_tree,
}


def family_names() -> list[str]:
    """Names accepted by the generator (and the CLI)."""
    return sorted(FAMILIES)


def family_builder(name: str):
    """The builder for ``name``, with a helpful error for typos."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown zoo family {name!r}; available: {', '.join(family_names())}"
        ) from None
