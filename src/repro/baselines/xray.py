"""X-Ray-style positional cache detection (baseline).

X-Ray (Yotov, Pingali & Stodghill) and its multicore successor P-Ray
estimate every cache level positionally: run a strided traversal over
growing array sizes and read each level's size off the position of the
corresponding jump in the cycles curve.  That is exact for virtually
indexed caches and for physically indexed caches *when the working set
is physically contiguous* (the superpage requirement the paper
criticizes as non-portable) — and systematically wrong under random
page placement, where the conflict smear starts well before the
capacity and the steepest gradient sits below the true size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.base import Backend
from ..core.cache_size import MIN_RISE, _extend_region, _gradient_regions
from ..core.mcalibrator import MAX_CACHE, MIN_CACHE, STRIDE, McalibratorResult, run_mcalibrator
from ..errors import DetectionError


@dataclass
class XRayResult:
    """Positional estimates, L1 first."""

    sizes: list[int]
    mcalibrator: McalibratorResult


def xray_cache_sizes(
    backend: Backend,
    core: int = 0,
    min_cache: int = MIN_CACHE,
    max_cache: int = MAX_CACHE,
    stride: int = STRIDE,
    samples: int = 5,
) -> XRayResult:
    """Estimate every cache level positionally (the X-Ray approach).

    Each significant gradient region contributes one level whose size
    is the array size at the region's steepest gradient.  No
    probabilistic correction is applied — this is the baseline the
    paper improves on.
    """
    mres = run_mcalibrator(
        backend,
        core=core,
        min_cache=min_cache,
        max_cache=max_cache,
        stride=stride,
        samples=samples,
    )
    gradients = mres.gradients
    regions = _gradient_regions(gradients)
    if not regions:
        raise DetectionError("no gradient peaks in the probed range")
    sizes: list[int] = []
    for i, (lo, hi) in enumerate(regions):
        lo_bound = regions[i - 1][1] + 1 if i > 0 else 0
        hi_bound = (
            regions[i + 1][0] - 1 if i + 1 < len(regions) else len(gradients) - 1
        )
        xlo, xhi = _extend_region(gradients, lo, hi, lo_bound, hi_bound)
        if mres.cycles[xhi + 1] / mres.cycles[xlo] < MIN_RISE:
            continue
        peak = int(np.argmax(gradients[lo : hi + 1])) + lo
        sizes.append(int(mres.sizes[peak]))
    if not sizes:
        raise DetectionError("no significant rises in the probed range")
    return XRayResult(sizes=sizes, mcalibrator=mres)
