"""Prior-work baseline detectors the paper compares against.

Section II positions Servet against X-Ray/P-Ray (Yotov et al.;
Duchateau et al.): those suites read cache sizes *positionally* from
the cycles curve, which requires the OS to color pages or provide
superpages — exactly the portability problem the probabilistic
algorithm solves.  This package implements that baseline faithfully so
the comparison benchmarks can regenerate the paper's argument.
"""

from .xray import XRayResult, xray_cache_sizes

__all__ = ["XRayResult", "xray_cache_sizes"]
