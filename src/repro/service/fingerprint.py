"""Deterministic machine fingerprints: the tuning service's key space.

A :class:`MachineFingerprint` identifies *what a stored report is a
report of*: the full topology model (:func:`cluster_to_dict`), the
communication model if the backend carries one, the suite options that
shaped the measurements (core selections, TLB probing, prune mode), and
the report schema version.  Hashing the canonical JSON of those inputs
gives a digest that is stable across processes and dict orderings —
reports land in the registry under it, and the staleness analysis diffs
the stored inputs against a live fingerprint to decide which suite
phases must be re-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ServiceError
from ..ioutils import canonical_json, sha256_hex
from ..netsim.model import CommConfig
from ..topology.machine import Cluster, Machine
from ..topology.serialization import cluster_to_dict, comm_config_to_dict

#: Version of the fingerprint input layout itself.  Bump when the
#: structure of :attr:`MachineFingerprint.inputs` changes, so digests
#: from incompatible layouts can never collide.
FINGERPRINT_VERSION = 1

#: Version of the report payload schema the registry stores.  Version 1
#: is the bare ``ServetReport.to_dict()`` JSON that ``ServetReport.save``
#: has always written (no envelope, no checksum); version 2 wraps the
#: payload in the registry envelope.  Lives here — not in registry.py —
#: because the schema version is part of a report's *identity*: a
#: report saved under an older schema is a different artifact even on
#: identical hardware.
REPORT_SCHEMA_VERSION = 2

#: Suite options that participate in the fingerprint, with the
#: defaults :class:`~repro.core.suite.ServetSuite` applies.
DEFAULT_OPTIONS: dict[str, Any] = {
    "node_cores": None,
    "comm_cores": None,
    "probe_tlb": True,
    "prune": "off",
}


def normalize_options(options: dict | None = None, **overrides) -> dict:
    """Fill in suite-option defaults and normalize value types.

    Unknown keys are rejected: a typo'd option would otherwise silently
    produce a fresh digest and orphan every stored report.
    """
    merged = dict(DEFAULT_OPTIONS)
    for source in (options or {}), overrides:
        for key, value in source.items():
            if key not in DEFAULT_OPTIONS:
                raise ServiceError(
                    f"unknown suite option {key!r} (expected one of "
                    f"{sorted(DEFAULT_OPTIONS)})"
                )
            merged[key] = value
    for key in ("node_cores", "comm_cores"):
        if merged[key] is not None:
            merged[key] = [int(c) for c in merged[key]]
    merged["probe_tlb"] = bool(merged["probe_tlb"])
    merged["prune"] = str(merged["prune"])
    return merged


@dataclass(frozen=True)
class MachineFingerprint:
    """A digest plus the exact inputs that produced it.

    Keeping the inputs next to the digest is what makes incremental
    re-measurement possible: the registry stores them, and
    :mod:`repro.service.staleness` diffs stored against live inputs to
    name the changed parameters.
    """

    digest: str
    inputs: dict

    @property
    def short(self) -> str:
        """Abbreviated digest for display (still unique in practice)."""
        return self.digest[:12]


def machine_fingerprint(
    system: Machine | Cluster,
    comm: CommConfig | None = None,
    options: dict | None = None,
) -> MachineFingerprint:
    """Fingerprint a machine/cluster model plus suite options."""
    if isinstance(system, Machine):
        system = Cluster(system.name, system, n_nodes=1)
    inputs = {
        "fingerprint_version": FINGERPRINT_VERSION,
        "schema_version": REPORT_SCHEMA_VERSION,
        "topology": cluster_to_dict(system),
        "comm": comm_config_to_dict(comm) if comm is not None else None,
        "options": normalize_options(options),
    }
    return MachineFingerprint(digest=sha256_hex(canonical_json(inputs)), inputs=inputs)


def fingerprint_of(backend, options: dict | None = None) -> MachineFingerprint:
    """Fingerprint a live backend (through any resilience wrappers).

    Requires the backend to expose a ``cluster`` topology model, as the
    simulated backends do; the communication model is included when the
    backend carries one.
    """
    cluster = getattr(backend, "cluster", None)
    if cluster is None:
        raise ServiceError(
            f"backend {getattr(backend, 'name', backend)!r} has no cluster "
            "topology model to fingerprint"
        )
    comm = getattr(backend, "comm_config", None)
    return machine_fingerprint(cluster, comm=comm, options=options)


# -- input diffing (consumed by repro.service.staleness) -----------------


def flatten_inputs(value, prefix: str = "") -> dict[str, str]:
    """Flatten a fingerprint's inputs into dotted leaf paths.

    Dicts recurse with ``.key``, lists with ``[i]``; every leaf value is
    rendered through :func:`canonical_json` so comparisons are exact.
    """
    flat: dict[str, str] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_inputs(value[key], child))
    elif isinstance(value, list):
        for i, item in enumerate(value):
            flat.update(flatten_inputs(item, f"{prefix}[{i}]"))
        if not value:
            flat[prefix] = "[]"
    else:
        flat[prefix] = canonical_json(value)
    return flat


def diff_inputs(stored: dict, live: dict) -> list[str]:
    """Paths whose values differ between two fingerprint inputs.

    Added and removed paths count as changed.  Returned sorted, so the
    staleness report (and its tests) are deterministic.
    """
    a, b = flatten_inputs(stored), flatten_inputs(live)
    changed = {path for path in a.keys() | b.keys() if a.get(path) != b.get(path)}
    return sorted(changed)
