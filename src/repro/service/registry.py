"""Versioned on-disk report store keyed by machine fingerprint.

Layout under the registry root::

    <root>/
      sequence                  # global put counter ("latest" ordering)
      <digest>/
        meta.json               # fingerprint inputs + display fields
        v000001.json            # envelope: schema_version/checksum/report
        v000002.json
        v000001.json.quarantined   # a corrupt file, moved aside

Every write is atomic (:func:`repro.ioutils.atomic_write_text`), every
envelope carries a SHA-256 checksum of the canonical report JSON, and a
version file that fails integrity checking is *quarantined* — renamed
``*.quarantined`` so the evidence survives — rather than crashing the
reader, which falls back to the newest intact version.

Schema migrations: version 1 is the bare ``ServetReport.to_dict()``
payload that loose ``servet run -o report.json`` files contain;
:func:`register_migration` hooks lift an envelope one version at a
time until it reaches :data:`REPORT_SCHEMA_VERSION`, so old reports
keep loading as the format evolves.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable

from ..core.report import ServetReport
from ..errors import RegistryError
from ..ioutils import atomic_write_text, canonical_json, sha256_hex
from ..obs.metrics import MetricsRegistry
from .fingerprint import REPORT_SCHEMA_VERSION, MachineFingerprint

#: Width of the zero-padded version number in file names.
_VERSION_DIGITS = 6

#: Schema migration hooks: ``from_version -> fn(envelope) -> envelope``
#: where the result is one version newer.  Applied in sequence until
#: :data:`REPORT_SCHEMA_VERSION` is reached.
_MIGRATIONS: dict[int, Callable[[dict], dict]] = {}


def register_migration(from_version: int):
    """Decorator registering a one-step schema migration hook."""

    def decorate(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
        _MIGRATIONS[int(from_version)] = fn
        return fn

    return decorate


def report_checksum(report_dict: dict) -> str:
    """Integrity checksum of a report payload (canonical-JSON SHA-256)."""
    return sha256_hex(canonical_json(report_dict))


@register_migration(1)
def _migrate_v1_to_v2(envelope: dict) -> dict:
    """v1 (bare report JSON, as ``ServetReport.save`` writes) -> v2.

    Wraps the payload in the envelope and computes the checksum it
    never had.  The payload itself is untouched, so a migrated report
    yields an identical ``measurement_dict()``.
    """
    report = envelope["report"]
    return {
        "schema_version": 2,
        "checksum": report_checksum(report),
        "report": report,
    }


def _migrate(envelope: dict, origin: str) -> dict:
    version = int(envelope.get("schema_version", 0))
    while version < REPORT_SCHEMA_VERSION:
        hook = _MIGRATIONS.get(version)
        if hook is None:
            raise RegistryError(
                f"{origin}: no migration from report schema v{version} "
                f"(current is v{REPORT_SCHEMA_VERSION})"
            )
        envelope = hook(envelope)
        new_version = int(envelope.get("schema_version", 0))
        if new_version <= version:
            raise RegistryError(
                f"{origin}: migration from v{version} did not advance "
                "the schema version"
            )
        version = new_version
    if version != REPORT_SCHEMA_VERSION:
        raise RegistryError(
            f"{origin}: report schema v{version} is newer than this "
            f"library understands (v{REPORT_SCHEMA_VERSION})"
        )
    return envelope


@dataclass(frozen=True)
class RegistryEntry:
    """One stored report version (metadata only; load via the registry)."""

    digest: str
    version: int
    seq: int
    created: float
    schema_version: int
    system: str
    n_cores: int
    path: Path

    @property
    def short(self) -> str:
        return self.digest[:12]


class ReportRegistry:
    """List/get/put/gc over fingerprint-keyed report versions.

    Parameters
    ----------
    root:
        Registry directory (created on first ``put``).
    clock:
        Source of the human-facing ``created`` timestamps (injectable
        so tests stay deterministic).  Ordering never relies on it —
        "latest" is decided by the monotonic ``sequence`` counter.
    metrics:
        Metrics registry for quarantine accounting.  Every file the
        registry quarantines increments ``registry.quarantine_events``
        (labelled with the digest), so corruption shows up in exported
        metrics instead of only in the ``get`` error detail.  A private
        registry is created when not given.
    """

    def __init__(
        self,
        root: str | Path,
        clock: Callable[[], float] = time.time,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.root = Path(root)
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- write side ---------------------------------------------------------

    def put(self, fingerprint: MachineFingerprint, report: ServetReport) -> RegistryEntry:
        """Store a report as the next version under its fingerprint."""
        digest_dir = self.root / fingerprint.digest
        digest_dir.mkdir(parents=True, exist_ok=True)
        meta_path = digest_dir / "meta.json"
        if not meta_path.exists():
            atomic_write_text(
                meta_path,
                json.dumps(
                    {
                        "digest": fingerprint.digest,
                        "inputs": fingerprint.inputs,
                        "system": report.system,
                        "n_cores": report.n_cores,
                    },
                    indent=2,
                ),
            )
        version = self._latest_version_number(digest_dir) + 1
        seq = self._next_seq()
        payload = report.to_dict()
        envelope = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "version": version,
            "seq": seq,
            "created": float(self._clock()),
            "checksum": report_checksum(payload),
            "report": payload,
        }
        path = digest_dir / self._version_name(version)
        atomic_write_text(path, json.dumps(envelope, indent=2))
        return self._entry_from_envelope(fingerprint.digest, path, envelope)

    def import_report(
        self, path: str | Path, fingerprint: MachineFingerprint
    ) -> RegistryEntry:
        """Adopt a loose report file (any supported schema version).

        This is how pre-registry ``servet run -o report.json`` output
        (schema v1) enters the registry: the file is parsed, migrated
        through the hooks, and stored as a fresh version.
        """
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"cannot import report {path}: {exc}") from exc
        if "schema_version" not in data:
            data = {"schema_version": 1, "report": data}
        envelope = _migrate(data, origin=str(path))
        return self.put(fingerprint, ServetReport.from_dict(envelope["report"]))

    def gc(self, keep: int = 1) -> list[Path]:
        """Drop all but the newest ``keep`` versions of every digest.

        Quarantined files are swept too — by the time gc runs they have
        served their diagnostic purpose.  Returns the removed paths.
        """
        if keep < 1:
            raise RegistryError("gc needs keep >= 1")
        removed: list[Path] = []
        for digest_dir in self._digest_dirs():
            for stale in sorted(digest_dir.glob("*.quarantined")):
                stale.unlink()
                removed.append(stale)
            versions = self._version_paths(digest_dir)
            for path in versions[:-keep] if len(versions) > keep else []:
                path.unlink()
                removed.append(path)
        return removed

    # -- read side ----------------------------------------------------------

    def entries(self, spec: str | None = None) -> list[RegistryEntry]:
        """All stored versions (of one digest spec, or everything).

        Sorted by global sequence — the last element is what ``latest``
        resolves to.  Unreadable version files are skipped here (they
        surface, and are quarantined, on :meth:`get`).
        """
        digests = [self.resolve(spec)] if spec is not None else [
            d.name for d in self._digest_dirs()
        ]
        found: list[RegistryEntry] = []
        for digest in digests:
            digest_dir = self.root / digest
            for path in self._version_paths(digest_dir):
                try:
                    envelope = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                found.append(self._entry_from_envelope(digest, path, envelope))
        return sorted(found, key=lambda e: e.seq)

    def get_entry(self, spec: str = "latest", version: int | None = None) -> RegistryEntry:
        """The entry a spec names (newest version unless pinned)."""
        digest = self.resolve(spec)
        entries = self.entries(digest)
        if version is not None:
            for entry in entries:
                if entry.version == version:
                    return entry
            raise RegistryError(f"registry has no version {version} of {digest[:12]}")
        if not entries:
            raise RegistryError(f"registry has no versions of {digest[:12]}")
        return entries[-1]

    def get(self, spec: str = "latest", version: int | None = None) -> ServetReport:
        """Load a report, verifying integrity and migrating its schema.

        A version file that is unreadable or fails its checksum is
        quarantined (renamed ``*.quarantined``) and the next-newest
        intact version is tried; only when none survives is
        :class:`RegistryError` raised.
        """
        digest = self.resolve(spec)
        digest_dir = self.root / digest
        candidates = self._version_paths(digest_dir)
        if version is not None:
            wanted = digest_dir / self._version_name(version)
            candidates = [p for p in candidates if p == wanted]
            if not candidates:
                raise RegistryError(
                    f"registry has no version {version} of {digest[:12]}"
                )
        quarantined: list[str] = []
        for path in reversed(candidates):
            report = self._load_verified(path, quarantined)
            if report is not None:
                return report
        detail = f" (quarantined: {', '.join(quarantined)})" if quarantined else ""
        raise RegistryError(
            f"registry has no intact report for {digest[:12]}{detail}"
        )

    def latest_version(self, digest: str) -> int:
        """Newest stored version number of a digest — no payload read.

        A pure directory-listing probe: version numbers live in the
        file *names*, so polling this in a watcher loop (the serving
        daemon does, every ``poll_interval``) costs one ``listdir``
        and zero JSON deserialization.  Accepts a full digest or a
        unique prefix; returns 0 when the digest has no versions (or
        no directory yet).  ``"latest"`` is deliberately unsupported —
        resolving it requires reading envelopes, which would defeat
        the cheapness this probe exists for.
        """
        if digest == "latest":
            raise RegistryError(
                "latest_version needs a digest or prefix; resolve 'latest' "
                "first (it requires reading stored envelopes)"
            )
        matches = [d for d in self._digest_dirs() if d.name.startswith(digest)]
        if not matches:
            return 0
        if len(matches) > 1:
            raise RegistryError(
                f"fingerprint prefix {digest!r} is ambiguous: "
                + ", ".join(m.name[:12] for m in sorted(matches))
            )
        return self._latest_version_number(matches[0])

    def fingerprint_inputs(self, spec: str = "latest") -> dict:
        """The stored fingerprint inputs of a digest (staleness baseline)."""
        digest = self.resolve(spec)
        meta_path = self.root / digest / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
            return dict(meta["inputs"])
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            raise RegistryError(
                f"registry metadata for {digest[:12]} is unreadable: {exc}"
            ) from exc

    def resolve(self, spec: str) -> str:
        """Resolve ``"latest"``, a full digest, or a unique prefix."""
        digests = [d.name for d in self._digest_dirs()]
        if spec == "latest":
            entries = []
            for digest in digests:
                entries.extend(self.entries(digest))
            if not entries:
                raise RegistryError(f"registry {self.root} is empty")
            return max(entries, key=lambda e: e.seq).digest
        matches = [d for d in digests if d.startswith(spec)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise RegistryError(
                f"registry has no report for fingerprint {spec!r}"
            )
        raise RegistryError(
            f"fingerprint prefix {spec!r} is ambiguous: "
            + ", ".join(m[:12] for m in sorted(matches))
        )

    # -- internals ----------------------------------------------------------

    def _load_verified(self, path: Path, quarantined: list[str]) -> ServetReport | None:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self._quarantine(path, quarantined)
            return None
        if "schema_version" not in data:
            data = {"schema_version": 1, "report": data}
        stored_checksum = data.get("checksum")
        try:
            envelope = _migrate(data, origin=str(path))
        except RegistryError:
            self._quarantine(path, quarantined)
            return None
        # v1 payloads had no checksum to verify; everything newer does.
        if stored_checksum is not None and stored_checksum != report_checksum(
            envelope["report"]
        ):
            self._quarantine(path, quarantined)
            return None
        try:
            return ServetReport.from_dict(envelope["report"])
        except Exception:
            self._quarantine(path, quarantined)
            return None

    def _quarantine(self, path: Path, quarantined: list[str]) -> None:
        target = path.with_name(path.name + ".quarantined")
        try:
            path.replace(target)
        except OSError:
            return
        quarantined.append(target.name)
        self.metrics.counter(
            "registry.quarantine_events", digest=path.parent.name[:12]
        ).inc()

    def quarantined_counts(self) -> dict[str, int]:
        """Quarantined files on disk, per digest (empty digests omitted).

        Counts what is *currently* sitting in quarantine — evidence from
        this or any earlier process — whereas the
        ``registry.quarantine_events`` counter counts what this registry
        instance quarantined itself.
        """
        counts: dict[str, int] = {}
        for digest_dir in self._digest_dirs():
            n = len(list(digest_dir.glob("*.quarantined")))
            if n:
                counts[digest_dir.name] = n
        return counts

    def _entry_from_envelope(
        self, digest: str, path: Path, envelope: dict
    ) -> RegistryEntry:
        # Tolerate hand-placed legacy files: a bare v1 payload has no
        # envelope fields, so fall back to the file name for the version
        # and neutral values for the rest.
        if "schema_version" not in envelope:
            report, schema_version = envelope, 1
        else:
            report = envelope.get("report", {})
            schema_version = int(envelope["schema_version"])
        return RegistryEntry(
            digest=digest,
            version=int(envelope.get("version", int(path.stem[1:]))),
            seq=int(envelope.get("seq", 0)),
            created=float(envelope.get("created", 0.0)),
            schema_version=schema_version,
            system=str(report.get("system", "?")),
            n_cores=int(report.get("n_cores", 0)),
            path=path,
        )

    def _digest_dirs(self) -> list[Path]:
        if not self.root.exists():
            return []
        return sorted(d for d in self.root.iterdir() if d.is_dir())

    @staticmethod
    def _version_name(version: int) -> str:
        return f"v{version:0{_VERSION_DIGITS}d}.json"

    @staticmethod
    def _version_paths(digest_dir: Path) -> list[Path]:
        return sorted(digest_dir.glob("v" + "[0-9]" * _VERSION_DIGITS + ".json"))

    def _latest_version_number(self, digest_dir: Path) -> int:
        versions = self._version_paths(digest_dir)
        if not versions:
            return 0
        return int(versions[-1].stem[1:])

    def _next_seq(self) -> int:
        seq_path = self.root / "sequence"
        try:
            current = int(seq_path.read_text())
        except (OSError, ValueError):
            current = 0
        atomic_write_text(seq_path, str(current + 1))
        return current + 1
