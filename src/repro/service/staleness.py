"""Staleness analysis and incremental re-measurement.

Measured parameters go stale as the platform changes (Cooper & Xu's
hidden-hierarchy observation); re-running the whole suite for every
change throws away everything that is still valid.  This module diffs a
live :class:`~repro.service.fingerprint.MachineFingerprint` against the
one stored with a report, maps each changed input path to the minimal
set of suite phases whose measurements it invalidates (closing over
phase dependencies — a new cache hierarchy invalidates the sharing,
TLB and communication phases that consumed it), and re-measures *only*
those phases by synthesizing a
:class:`~repro.resilience.SuiteCheckpoint` in which the still-fresh
phases are already "completed" and resuming the suite through the
normal :meth:`ServetSuite.run` path.  The merged report becomes a new
version in the registry under the live fingerprint.

The staleness -> phase table (see README "Tuning service"):

==============================  =========================================
changed input path prefix        re-measured phases
==============================  =========================================
``topology.node.levels``         cache_size (+ all dependents)
``topology.node.mem_latency``    cache_size (+ all dependents)
``topology.node.tlb``            cache_size (+ all dependents)
``topology.node.core_stream_bw`` memory_overhead
``topology.node.bandwidth``      memory_overhead
``topology.node.processors``     memory_overhead, communication_costs
``topology.node.cells``          memory_overhead, communication_costs
``comm``                         communication_costs
``options.comm_cores``           communication_costs
``options.node_cores``           all single-node phases
``options.probe_tlb``            tlb_detection
``options.prune``                nothing (measurements stay valid; the
                                 report is re-keyed under the new digest)
anything else                    everything (conservative fallback)
==============================  =========================================
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Sequence

from ..core.report import ServetReport
from ..core.suite import ServetSuite
from ..errors import ServiceError
from ..resilience.checkpoint import SuiteCheckpoint
from .fingerprint import (
    MachineFingerprint,
    diff_inputs,
    fingerprint_of,
    normalize_options,
)
from .registry import ReportRegistry

#: Every phase the suite can run, in canonical execution order.
ALL_PHASES: tuple[str, ...] = (
    "cache_size",
    "shared_caches",
    "tlb_detection",
    "memory_overhead",
    "communication_costs",
)

#: Phases whose inputs include another phase's output: invalidating the
#: key re-measures the whole closure.  shared_caches sizes its arrays
#: from the detected levels, tlb_detection steers its probe with them,
#: and communication_costs takes its probe size from the detected L1.
PHASE_DEPENDENTS: dict[str, frozenset[str]] = {
    "cache_size": frozenset(
        {"shared_caches", "tlb_detection", "communication_costs"}
    ),
}

_SINGLE_NODE = frozenset(
    {"cache_size", "shared_caches", "tlb_detection", "memory_overhead"}
)

#: Ordered (prefix, affected phases) rules; first match wins.  An empty
#: set means the change does not invalidate any measurement (the report
#: is merely re-keyed).  A changed path no rule matches re-measures
#: everything — the conservative default for inputs we cannot reason
#: about.
STALENESS_RULES: tuple[tuple[str, frozenset[str]], ...] = (
    ("options.probe_tlb", frozenset({"tlb_detection"})),
    ("options.node_cores", _SINGLE_NODE),
    ("options.comm_cores", frozenset({"communication_costs"})),
    # Prune mode changes how measurements are *scheduled*, not what the
    # machine is: stored measurements remain valid.
    ("options.prune", frozenset()),
    ("topology.node.levels", frozenset({"cache_size"})),
    ("topology.node.mem_latency", frozenset({"cache_size"})),
    ("topology.node.tlb", frozenset({"cache_size", "tlb_detection"})),
    ("topology.node.core_stream_bw", frozenset({"memory_overhead"})),
    ("topology.node.bandwidth", frozenset({"memory_overhead"})),
    (
        "topology.node.processors",
        frozenset({"memory_overhead", "communication_costs"}),
    ),
    ("topology.node.cells", frozenset({"memory_overhead", "communication_costs"})),
    ("comm", frozenset({"communication_costs"})),
)

#: How to erase a stale phase's contribution from a report dict before
#: the resumed suite re-measures it.
_SECTION_CLEARERS: dict[str, Callable[[dict], None]] = {
    "cache_size": lambda d: d.update(caches=[]),
    "shared_caches": lambda d: [
        c.update(shared_pairs=[], sharing_groups=[]) for c in d["caches"]
    ],
    "tlb_detection": lambda d: d.update(tlb_entries=None),
    "memory_overhead": lambda d: d.update(memory_reference=0.0, memory_levels=[]),
    "communication_costs": lambda d: d.update(comm_probe_size=0, comm_layers=[]),
}


@dataclass(frozen=True)
class StalenessReport:
    """What changed and which phases the change invalidates."""

    #: Dotted input paths that differ (sorted).
    changed: tuple[str, ...]
    #: Phases to re-measure, in canonical order (dependency-closed).
    affected: tuple[str, ...]

    @property
    def fresh(self) -> bool:
        """True when the stored measurements fully cover the live machine."""
        return not self.affected

    @property
    def full(self) -> bool:
        """True when nothing can be salvaged (re-run from scratch)."""
        return set(self.affected) == set(ALL_PHASES)

    def summary(self) -> str:
        if not self.changed:
            return "fingerprint unchanged; report is current"
        lines = [f"{len(self.changed)} changed input(s):"]
        lines += [f"  {path}" for path in self.changed]
        if self.fresh:
            lines.append("no measurements invalidated (re-key only)")
        else:
            lines.append(f"phases to re-measure: {', '.join(self.affected)}")
        return "\n".join(lines)


def affected_phases(changed: Sequence[str]) -> tuple[str, ...]:
    """Map changed input paths to the dependency-closed phase set."""
    affected: set[str] = set()
    for path in changed:
        for prefix, phases in STALENESS_RULES:
            if path == prefix or path.startswith(prefix + ".") or path.startswith(
                prefix + "["
            ):
                affected |= phases
                break
        else:
            return ALL_PHASES  # unknown input: distrust everything
    for phase in list(affected):
        affected |= PHASE_DEPENDENTS.get(phase, frozenset())
    return tuple(p for p in ALL_PHASES if p in affected)


def assess_staleness(stored_inputs: dict, live_inputs: dict) -> StalenessReport:
    """Diff stored fingerprint inputs against live ones."""
    changed = diff_inputs(stored_inputs, live_inputs)
    return StalenessReport(changed=tuple(changed), affected=affected_phases(changed))


@dataclass
class RefreshResult:
    """Outcome of :func:`incremental_refresh`."""

    report: ServetReport
    staleness: StalenessReport
    #: ``up_to_date`` (digest already stored), ``rekey`` (measurements
    #: reused verbatim under a new digest), ``incremental`` (stale
    #: phases re-measured), or ``full`` (everything re-measured).
    mode: str
    fingerprint: MachineFingerprint
    #: The registry entry written (None when up to date).
    entry: object | None = None


def incremental_refresh(
    registry: ReportRegistry,
    backend,
    base: str = "latest",
    options: dict | None = None,
    strict: bool = True,
    jobs: int = 1,
    checkpoint_dir: str | Path | None = None,
) -> RefreshResult:
    """Bring a stored report up to date with a live backend.

    Fingerprints the backend, diffs against the registry entry ``base``
    names, and re-measures only the affected phases by resuming the
    suite from a synthesized checkpoint in which every still-fresh
    phase is already completed.  The refreshed report is stored as a
    new version under the live fingerprint.

    With ``noise=0`` backends this is exact: the merged report's
    ``measurement_dict()`` is byte-identical to a from-scratch run on
    the changed machine, while issuing strictly fewer probes (the
    integration tests assert both).
    """
    opts = normalize_options(options)
    live = fingerprint_of(backend, options=opts)
    stored_inputs = registry.fingerprint_inputs(base)
    staleness = assess_staleness(stored_inputs, live.inputs)

    base_digest = registry.resolve(base)
    # Cheap existence probe (file names only) before any payload load:
    # a digest directory with metadata but no stored versions fails
    # here with a clear message instead of a deep registry error.
    if registry.latest_version(base_digest) == 0:
        raise ServiceError(
            f"registry has no stored versions of {base_digest[:12]} "
            "to refresh from"
        )
    if live.digest == base_digest:
        return RefreshResult(
            report=registry.get(base_digest),
            staleness=staleness,
            mode="up_to_date",
            fingerprint=live,
        )

    if staleness.fresh:
        report = registry.get(base_digest)
        entry = registry.put(live, report)
        return RefreshResult(
            report=report,
            staleness=staleness,
            mode="rekey",
            fingerprint=live,
            entry=entry,
        )

    suite = _build_suite(backend, opts, jobs)
    if staleness.full:
        report = suite.run(strict=strict)
        entry = registry.put(live, report)
        return RefreshResult(
            report=report,
            staleness=staleness,
            mode="full",
            fingerprint=live,
            entry=entry,
        )

    stale = set(staleness.affected)
    stored = registry.get(base_digest)
    checkpoint = _synthesize_checkpoint(suite, backend, stored, stale)
    fd, path = tempfile.mkstemp(
        prefix="servet-refresh-",
        suffix=".json",
        dir=str(checkpoint_dir) if checkpoint_dir is not None else None,
    )
    os.close(fd)
    try:
        checkpoint.save(path)
        report = suite.run(strict=strict, checkpoint=path, resume=True)
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
    entry = registry.put(live, report)
    return RefreshResult(
        report=report,
        staleness=staleness,
        mode="incremental",
        fingerprint=live,
        entry=entry,
    )


def _build_suite(backend, opts: dict, jobs: int) -> ServetSuite:
    return ServetSuite(
        backend,
        node_cores=opts["node_cores"],
        comm_cores=opts["comm_cores"],
        probe_tlb=opts["probe_tlb"],
        prune=opts["prune"],
        jobs=jobs,
    )


def _synthesize_checkpoint(
    suite: ServetSuite, backend, stored: ServetReport, stale: set[str]
) -> SuiteCheckpoint:
    """A checkpoint in which every still-fresh phase already finished.

    Resuming the suite from it re-measures exactly the stale phases and
    merges their sections into the preserved ones.
    """
    report_dict = stored.to_dict()
    # The header always reflects the live machine; when it materially
    # changed the staleness rules already forced a full re-run.
    report_dict["system"] = backend.name
    report_dict["n_cores"] = backend.n_cores
    report_dict["page_size"] = backend.page_size
    # The refreshed run accounts only its own probes: the stored
    # planner counters describe measurements we deliberately did not
    # repeat, so carrying them forward would hide the saving.
    report_dict["planner"] = {}
    for phase in stale:
        clearer = _SECTION_CLEARERS.get(phase)
        if clearer is None:
            raise ServiceError(f"no section clearer for phase {phase!r}")
        clearer(report_dict)
    completed = [
        p
        for p in ALL_PHASES
        if p in stored.phase_status and p not in stale
    ]
    if not completed:
        raise ServiceError(
            "stored report has no reusable phases; run the suite from scratch"
        )
    status = {p: stored.phase_status[p] for p in completed}
    errors = {
        p: stored.phase_errors[p] for p in completed if p in stored.phase_errors
    }
    timings = {
        p: stored.timings[p] for p in completed if p in stored.timings
    }
    report_dict["phase_status"] = dict(status)
    report_dict["phase_errors"] = dict(errors)
    report_dict["timings"] = {k: list(v) for k, v in timings.items()}
    return SuiteCheckpoint(
        fingerprint=suite._fingerprint(),
        completed=completed,
        status=status,
        errors=errors,
        report=report_dict,
        timings=timings,
        rng_state=None,
    )
