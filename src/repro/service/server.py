"""In-process tuning service: cached answers to ``Advisor`` queries.

LIKWID-style always-available query layer over one stored report.
Applications ask typed, hashable :class:`Query` value objects — tile
size, streaming-core throttling, message aggregation, collective
choice, point-to-point latency — and the service answers through an
LRU+TTL cache in front of the (comparatively expensive) autotuning
helpers.  Every answer is a plain dict of JSON scalars, so results can
be cached, compared, and shipped over any transport without caring
about the advisor's internal dataclasses.

Observability: per-query hit/miss/eviction/expiration counters and
latency percentiles (:meth:`TuningService.metrics`).

Correctness under load is proved, not assumed: :func:`run_harness`
drives thousands of queries from concurrent client threads, checks
every answer against an uncached reference advisor, and reports the
hit rate — the bench and the integration tests pin a warm hit rate
>= 90% with zero wrong answers.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from ..autotune import Advisor
from ..core.report import ServetReport
from ..errors import ServiceError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .fingerprint import normalize_options

#: Union of the query value objects the service answers.
Query = object


@dataclass(frozen=True)
class TileQuery:
    """Elements per tile for ``n_arrays`` arrays in cache ``level``."""

    level: int
    n_arrays: int = 1
    elem_size: int = 8


@dataclass(frozen=True)
class MatmulTileQuery:
    """Blocked-matmul tile side for one cache level."""

    level: int
    elem_size: int = 8


@dataclass(frozen=True)
class StreamingCoresQuery:
    """How many cores of an overhead group are worth streaming from."""

    group_index: int = 0
    efficiency_floor: float = 0.5


@dataclass(frozen=True)
class AggregationQuery:
    """Aggregate-or-not for N messages between two cores."""

    core_a: int
    core_b: int
    n_messages: int
    message_size: int


@dataclass(frozen=True)
class BcastQuery:
    """Flat vs hierarchical broadcast for a placement and size."""

    placement: tuple[int, ...]
    nbytes: int
    root: int = 0


@dataclass(frozen=True)
class CommLatencyQuery:
    """Estimated point-to-point latency for a pair and message size."""

    core_a: int
    core_b: int
    nbytes: int


@dataclass(frozen=True)
class CoScheduleQuery:
    """Ranked placements of workloads onto the detected sharing topology.

    ``workloads`` are canonical synthetic-workload specs (see
    :func:`repro.workload.parse_workload`); ``level``/``instances``
    default to the outermost shared level and every detected instance.
    """

    workloads: tuple[str, ...]
    seed: int = 0
    level: int | None = None
    instances: int | None = None
    top: int = 3


def answer(advisor: Advisor, query: Query) -> dict:
    """Compute one query's answer, uncached, as plain JSON scalars.

    This is the single source of truth the cache stores and the
    concurrent harness verifies against.
    """
    if isinstance(query, TileQuery):
        return {
            "elements": int(
                advisor.tile_elements(query.level, query.n_arrays, query.elem_size)
            )
        }
    if isinstance(query, MatmulTileQuery):
        return {"side": int(advisor.matmul_tile(query.level, query.elem_size))}
    if isinstance(query, StreamingCoresQuery):
        return {
            "cores": int(
                advisor.max_useful_streaming_cores(
                    query.group_index, query.efficiency_floor
                )
            )
        }
    if isinstance(query, AggregationQuery):
        advice = advisor.should_aggregate(
            query.core_a, query.core_b, query.n_messages, query.message_size
        )
        return {
            "aggregate": bool(advice.aggregate),
            "speedup": float(advice.speedup),
            "separate_time": float(advice.separate_time),
            "aggregated_time": float(advice.aggregated_time),
            "layer_index": int(advice.layer_index),
        }
    if isinstance(query, BcastQuery):
        choice = advisor.choose_bcast(
            list(query.placement), query.nbytes, root=query.root
        )
        return {
            "algorithm": str(choice.algorithm),
            "flat_time": float(choice.flat_time),
            "hierarchical_time": float(choice.hierarchical_time),
            "predicted_speedup": float(choice.predicted_speedup),
        }
    if isinstance(query, CommLatencyQuery):
        layer = advisor.report.comm_layer_of(query.core_a, query.core_b)
        return {
            "latency": float(layer.estimate_latency(query.nbytes)),
            "layer_index": int(layer.index),
        }
    if isinstance(query, CoScheduleQuery):
        advice = advisor.co_schedule(
            list(query.workloads),
            seed=query.seed,
            level=query.level,
            instances=query.instances,
            top=query.top,
        )
        return advice.to_dict()
    raise ServiceError(f"unknown query type {type(query).__name__}")


class LRUTTLCache:
    """Thread-safe LRU cache with optional per-entry time-to-live.

    ``ttl=None`` disables expiry (a report is immutable, so answers
    only go stale when the service is pointed at a new report — the
    TTL exists for deployments that hot-swap the registry underneath).
    """

    def __init__(
        self,
        capacity: int = 4096,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ServiceError("cache capacity must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ServiceError("cache ttl must be > 0 (or None)")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[object, tuple[float, object]] = OrderedDict()
        self.evictions = 0
        self.expirations = 0

    def get(self, key) -> tuple[bool, object]:
        """``(hit, value)``; expired entries count as misses."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False, None
            stored_at, value = entry
            if self.ttl is not None and self._clock() - stored_at > self.ttl:
                del self._entries[key]
                self.expirations += 1
                return False, None
            self._entries.move_to_end(key)
            return True, value

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self._clock(), value)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class SingleFlightTable:
    """Bounded per-key locks serializing concurrent misses on one key.

    The earlier implementation hashed every key onto a fixed stripe
    array, which meant (a) unrelated keys colliding on a stripe
    serialized each other's computations and (b) the natural fix —
    one lock per key — would grow without bound under a large keyset.
    This table gives each *in-flight* key its own lock and recycles
    the entry the moment its last holder releases, so memory is
    bounded by concurrent distinct misses, never by the total keys
    ever seen.  ``cap`` is a hard ceiling against pathological
    concurrency: once ``cap`` keys are simultaneously in flight, new
    keys degrade to a small fixed stripe array (correct, merely
    coarser) instead of growing the table.

    ``live()``/``peak``/``fallbacks`` expose the bound for tests and
    metrics.
    """

    def __init__(self, cap: int = 128, stripes: int = 16) -> None:
        if cap < 1 or stripes < 1:
            raise ServiceError("single-flight table needs cap >= 1, stripes >= 1")
        self.cap = cap
        self._lock = threading.Lock()
        #: key -> [per-key lock, holder/waiter count]
        self._entries: dict[object, list] = {}
        self._stripes = tuple(threading.Lock() for _ in range(stripes))
        self.peak = 0
        self.fallbacks = 0

    def live(self) -> int:
        """Entries currently in the table (== keys in flight)."""
        with self._lock:
            return len(self._entries)

    @contextmanager
    def flight(self, key):
        """Hold ``key``'s single-flight lock for the duration."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None and len(self._entries) < self.cap:
                entry = self._entries[key] = [threading.Lock(), 0]
                self.peak = max(self.peak, len(self._entries))
            if entry is None:
                self.fallbacks += 1
                lock = self._stripes[hash(key) % len(self._stripes)]
            else:
                entry[1] += 1
                lock = entry[0]
        try:
            with lock:
                yield
        finally:
            if entry is not None:
                with self._lock:
                    entry[1] -= 1
                    if entry[1] == 0:
                        del self._entries[key]


class TuningService:
    """Concurrent query answering over one report, with an answer cache.

    Parameters
    ----------
    report:
        The report to answer from (see :meth:`from_registry`).
    capacity / ttl / clock:
        Answer-cache shape (see :class:`LRUTTLCache`).
    timer:
        Latency clock for the per-query metrics (injectable for
        deterministic tests).
    metrics:
        Registry holding the service's counters and latency histogram
        (``service.queries{result=...}``, ``service.query_latency``);
        a private registry is created when not given, so
        :meth:`metrics` always works.
    tracer:
        Optional span collector; when given, every :meth:`query` emits
        a ``service.query`` span tagged with the query type and
        hit/miss outcome.
    single_flight_cap:
        Bound on the per-key miss-lock table (see
        :class:`SingleFlightTable`).
    """

    def __init__(
        self,
        report: ServetReport,
        capacity: int = 4096,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        timer: Callable[[], float] = time.perf_counter,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        single_flight_cap: int = 128,
    ) -> None:
        self.report = report
        self.advisor = Advisor(report)
        self.cache = LRUTTLCache(capacity=capacity, ttl=ttl, clock=clock)
        self._timer = timer
        self.metrics_registry = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self._hit_counter = self.metrics_registry.counter(
            "service.queries", result="hit"
        )
        self._miss_counter = self.metrics_registry.counter(
            "service.queries", result="miss"
        )
        self._latency = self.metrics_registry.histogram(
            "service.query_latency_seconds"
        )
        # Single-flight: concurrent misses on the same key serialize on
        # a per-key lock and re-check the cache, so a fresh key is
        # computed (and counted as a miss) exactly once no matter how
        # clients interleave.  The table is bounded: entries recycle as
        # soon as their key has no holder (see SingleFlightTable).
        self.single_flight = SingleFlightTable(cap=single_flight_cap)

    @classmethod
    def from_registry(
        cls, registry, spec: str = "latest", version: int | None = None, **kwargs
    ) -> "TuningService":
        """Serve the report a registry spec names (newest by default)."""
        return cls(registry.get(spec, version=version), **kwargs)

    def query(self, query: Query) -> dict:
        """Answer one query, cache-first."""
        start = self._timer()
        span_ctx = (
            self.tracer.span("service.query", query=type(query).__name__)
            if self.tracer is not None
            else None
        )
        with span_ctx if span_ctx is not None else nullcontext():
            hit, value = self.cache.get(query)
            if not hit:
                # Compute outside the cache lock but under the key's
                # single-flight lock: a racing client blocks here,
                # then finds the value on the re-check, so duplicate
                # work is avoided and hit/miss counts depend only on
                # the distinct-key set, not on thread interleaving.
                with self.single_flight.flight(query):
                    hit, value = self.cache.get(query)
                    if not hit:
                        value = answer(self.advisor, query)
                        self.cache.put(query, value)
            if span_ctx is not None:
                span_ctx.span.set(hit=bool(hit))
        elapsed = self._timer() - start
        (self._hit_counter if hit else self._miss_counter).inc()
        self._latency.observe(elapsed)
        return value

    def metrics(self) -> dict:
        """Hit/miss counters, cache occupancy, latency percentiles."""
        hits = int(self._hit_counter.value)
        misses = int(self._miss_counter.value)
        total = hits + misses
        return {
            "queries": total,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "evictions": self.cache.evictions,
            "expirations": self.cache.expirations,
            "cache_entries": len(self.cache),
            "latency_p50": self._latency.percentile(0.50),
            "latency_p90": self._latency.percentile(0.90),
            "latency_p99": self._latency.percentile(0.99),
        }


# -- deterministic concurrent-client harness -----------------------------


@dataclass
class HarnessResult:
    """Outcome of one concurrent-client drive of a service."""

    clients: int
    queries: int
    wall_seconds: float
    mismatches: int
    hit_rate: float
    metrics: dict = field(default_factory=dict)

    @property
    def queries_per_second(self) -> float:
        return self.queries / self.wall_seconds if self.wall_seconds > 0 else 0.0


def default_query_pool(report: ServetReport) -> list[Query]:
    """A representative query mix derived from what a report contains."""
    pool: list[Query] = []
    for cache in report.caches:
        for n_arrays in (1, 2, 3):
            pool.append(TileQuery(cache.level, n_arrays, 8))
        pool.append(MatmulTileQuery(cache.level, 8))
        pool.append(MatmulTileQuery(cache.level, 4))
    for index in range(len(report.memory_levels)):
        pool.append(StreamingCoresQuery(index, 0.5))
    for layer in report.comm_layers:
        if not layer.pairs:
            continue
        a, b = layer.pairs[0]
        for n_messages in (4, 16):
            for size in (1024, 8192):
                pool.append(AggregationQuery(a, b, n_messages, size))
        pool.append(CommLatencyQuery(a, b, 512))
        pool.append(CommLatencyQuery(a, b, 64 * 1024))
    if report.comm_layers and report.n_cores >= 4:
        pool.append(BcastQuery(tuple(range(4)), 64 * 1024, 0))
    if not pool:
        raise ServiceError(
            f"report for {report.system} holds nothing the service can answer"
        )
    return pool


def run_harness(
    service: TuningService,
    clients: int = 8,
    queries_per_client: int = 500,
    seed: int = 1234,
    pool: Sequence[Query] | None = None,
) -> HarnessResult:
    """Drive a service from concurrent clients and verify every answer.

    The query schedule is deterministic: one seeded RNG deals each
    client its own sequence of pool picks, so a given (report, seed,
    shape) always exercises the same traffic.  Every response is
    compared against an *uncached* reference advisor; any disagreement
    counts as a mismatch (and the caller should treat >0 as a bug).
    """
    if clients < 1 or queries_per_client < 1:
        raise ServiceError("harness needs clients >= 1 and queries >= 1")
    queries = list(pool) if pool is not None else default_query_pool(service.report)
    reference_advisor = Advisor(service.report)
    reference = {q: answer(reference_advisor, q) for q in queries}
    rng = random.Random(seed)
    schedules = [
        [queries[rng.randrange(len(queries))] for _ in range(queries_per_client)]
        for _ in range(clients)
    ]
    mismatches = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        barrier.wait()
        bad = 0
        for query in schedules[index]:
            if service.query(query) != reference[query]:
                bad += 1
        mismatches[index] = bad

    threads = [
        threading.Thread(target=client, args=(i,), name=f"tuning-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    metrics = service.metrics()
    return HarnessResult(
        clients=clients,
        queries=clients * queries_per_client,
        wall_seconds=wall,
        mismatches=sum(mismatches),
        hit_rate=metrics["hit_rate"],
        metrics=metrics,
    )


def query_from_spec(kind: str, report: ServetReport, **params) -> Query:
    """Build a query from CLI-ish string/keyword parameters."""
    kinds = {
        "tile": lambda: TileQuery(
            level=int(params.get("level", 1)),
            n_arrays=int(params.get("n_arrays", 1)),
            elem_size=int(params.get("elem_size", 8)),
        ),
        "matmul-tile": lambda: MatmulTileQuery(
            level=int(params.get("level", 1)),
            elem_size=int(params.get("elem_size", 8)),
        ),
        "streaming-cores": lambda: StreamingCoresQuery(
            group_index=int(params.get("group_index", 0)),
            efficiency_floor=float(params.get("efficiency_floor", 0.5)),
        ),
        "aggregate": lambda: AggregationQuery(
            core_a=int(params["core_a"]),
            core_b=int(params["core_b"]),
            n_messages=int(params.get("n_messages", 16)),
            message_size=int(params.get("message_size", 4096)),
        ),
        "bcast": lambda: BcastQuery(
            placement=tuple(int(c) for c in params["placement"]),
            nbytes=int(params.get("nbytes", 64 * 1024)),
            root=int(params.get("root", 0)),
        ),
        "latency": lambda: CommLatencyQuery(
            core_a=int(params["core_a"]),
            core_b=int(params["core_b"]),
            nbytes=int(params.get("nbytes", 4096)),
        ),
        "co-schedule": lambda: CoScheduleQuery(
            workloads=tuple(str(w) for w in params["workloads"]),
            seed=int(params.get("seed", 0)),
            level=(
                int(params["level"]) if params.get("level") is not None else None
            ),
            instances=(
                int(params["instances"])
                if params.get("instances") is not None
                else None
            ),
            top=int(params.get("top", 3)),
        ),
    }
    if kind not in kinds:
        raise ServiceError(
            f"unknown query kind {kind!r} (expected one of {sorted(kinds)})"
        )
    try:
        return kinds[kind]()
    except KeyError as exc:
        raise ServiceError(f"query {kind!r} needs parameter {exc}") from exc


# ``normalize_options`` is re-exported for CLI convenience: building a
# service from a live run needs the same option normalization the
# fingerprint uses.
__all__ = [
    "AggregationQuery",
    "BcastQuery",
    "CoScheduleQuery",
    "CommLatencyQuery",
    "HarnessResult",
    "LRUTTLCache",
    "MatmulTileQuery",
    "Query",
    "SingleFlightTable",
    "StreamingCoresQuery",
    "TileQuery",
    "TuningService",
    "answer",
    "default_query_pool",
    "normalize_options",
    "query_from_spec",
    "run_harness",
]
