"""The fingerprint-keyed tuning service (DESIGN.md §6).

The paper's deployment model is "run once at installation time, store
the report, consult it from applications" (Section IV-E).  This package
owns the consultation step:

- :mod:`repro.service.fingerprint` — deterministic machine identity
  (topology model + comm model + suite options + schema version).
- :mod:`repro.service.registry` — versioned on-disk report store with
  atomic writes, integrity checksums and schema-migration hooks.
- :mod:`repro.service.server` — :class:`TuningService`, a concurrent
  in-process query layer with an LRU+TTL answer cache, per-query
  metrics, and a deterministic concurrent-client harness.
- :mod:`repro.service.staleness` — diffs live against stored
  fingerprints and re-measures only the affected suite phases through
  the planner/checkpoint machinery.
"""

from .fingerprint import (
    FINGERPRINT_VERSION,
    REPORT_SCHEMA_VERSION,
    MachineFingerprint,
    diff_inputs,
    fingerprint_of,
    machine_fingerprint,
    normalize_options,
)
from .registry import (
    RegistryEntry,
    ReportRegistry,
    register_migration,
    report_checksum,
)
from .server import (
    AggregationQuery,
    BcastQuery,
    CoScheduleQuery,
    CommLatencyQuery,
    HarnessResult,
    LRUTTLCache,
    MatmulTileQuery,
    Query,
    StreamingCoresQuery,
    TileQuery,
    TuningService,
    answer,
    default_query_pool,
    query_from_spec,
    run_harness,
)
from .staleness import (
    ALL_PHASES,
    RefreshResult,
    StalenessReport,
    affected_phases,
    assess_staleness,
    incremental_refresh,
)

__all__ = [
    "ALL_PHASES",
    "AggregationQuery",
    "BcastQuery",
    "CoScheduleQuery",
    "CommLatencyQuery",
    "FINGERPRINT_VERSION",
    "HarnessResult",
    "LRUTTLCache",
    "MachineFingerprint",
    "MatmulTileQuery",
    "Query",
    "REPORT_SCHEMA_VERSION",
    "RefreshResult",
    "RegistryEntry",
    "ReportRegistry",
    "StalenessReport",
    "StreamingCoresQuery",
    "TileQuery",
    "TuningService",
    "affected_phases",
    "answer",
    "assess_staleness",
    "default_query_pool",
    "diff_inputs",
    "fingerprint_of",
    "incremental_refresh",
    "machine_fingerprint",
    "normalize_options",
    "query_from_spec",
    "register_migration",
    "report_checksum",
    "run_harness",
]
