"""Memory-access overhead characterization (paper Fig. 6).

Measures STREAM-copy bandwidth for an isolated core (the reference),
then for every pair of cores accessing memory concurrently.  Pairs whose
bandwidth falls significantly below the reference are grouped into
overhead *levels* by bandwidth similarity (the BW/Pm arrays of Fig. 6);
each level's pairs are merged into core *groups* (connected components),
and one group per level is used to characterize how effective bandwidth
scales with the number of concurrent cores (Fig. 9b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..backends.base import Backend
from ..errors import MeasurementError
from ..obs.provenance import ParameterProvenance
from ..planner import PlanExecutor, StreamProbe, probe_id
from ..topology.machine import CorePair, all_pairs
from .clustering import cluster_similar, groups_from_pairs

#: Relative tolerance within which two bandwidths are "similar" (Fig. 6).
SIMILARITY_TOLERANCE: float = 0.08
#: A pair's bandwidth must be at least this fraction below the
#: reference to count as overhead (absorbs measurement noise).
SIGNIFICANCE: float = 0.05


@dataclass
class OverheadLevel:
    """One overhead magnitude: BW[i] and Pm[i] of Fig. 6, plus groups."""

    bandwidth: float
    pairs: list[CorePair]
    groups: list[list[int]]

    @property
    def example_group(self) -> list[int]:
        """One representative group (enough to characterize the level)."""
        return self.groups[0] if self.groups else []


@dataclass
class MemoryOverheadResult:
    """Everything Fig. 6 produces, plus scalability curves (Fig. 9b)."""

    reference: float
    levels: list[OverheadLevel]
    #: All pairwise bandwidths (core-0 slices of this are Fig. 9a).
    pair_bandwidths: dict[CorePair, float] = field(default_factory=dict)
    #: Per level: effective bandwidth of the first group's first core as
    #: 1..len(group) of its cores run concurrently.
    scalability: list[list[float]] = field(default_factory=list)
    #: Per-level evidence trails (``memory.level<i>.bandwidth``).
    provenance: list[ParameterProvenance] = field(default_factory=list)

    @property
    def n_levels(self) -> int:
        """The ``n`` output of Fig. 6."""
        return len(self.levels)

    def overhead_level_of(self, pair: CorePair) -> int | None:
        """Index of the overhead level containing ``pair`` (None = no
        overhead: the pair runs at full reference bandwidth)."""
        key = tuple(sorted(pair))
        for i, level in enumerate(self.levels):
            if key in level.pairs:
                return i
        return None


def characterize_memory_overhead(
    backend: Backend,
    cores: Sequence[int] | None = None,
    reference_core: int = 0,
    similarity: float = SIMILARITY_TOLERANCE,
    significance: float = SIGNIFICANCE,
    planner: PlanExecutor | None = None,
) -> MemoryOverheadResult:
    """Run the Fig. 6 algorithm (plus group inference and scalability).

    The all-pairs bandwidth batch goes through the measurement
    ``planner`` (pass-through by default), which may prune
    topology-equivalent pairs and overlap independent probes.
    """
    if cores is None:
        cores = list(range(backend.n_cores))
    if reference_core not in cores:
        raise MeasurementError("reference core must be among the tested cores")
    executor = planner if planner is not None else PlanExecutor(backend)
    ref = executor.copy_bandwidth([reference_core])[reference_core]
    if not (ref > 0) or ref != ref:  # catches 0, negatives and NaN
        raise MeasurementError(
            f"reference bandwidth measurement is unusable ({ref!r})"
        )

    # "the bandwidth of one core when both of them are concurrently
    # accessing": measure the first core of the pair.
    pair_bw = executor.pairwise(
        all_pairs(list(cores)),
        probe_factory=lambda pair, s: StreamProbe(cores=pair, sample=s),
        value=lambda pair, raws: raws[0][pair[0]],
    )
    overhead_items: list[tuple[CorePair, float]] = [
        (pair, bw)
        for pair, bw in pair_bw.items()
        if bw < ref * (1.0 - significance)
    ]

    clusters = cluster_similar(overhead_items, rel_tol=similarity)
    levels = [
        OverheadLevel(
            bandwidth=c.value,
            pairs=sorted(c.members),  # type: ignore[arg-type]
            groups=groups_from_pairs(list(c.members)),  # type: ignore[arg-type]
        )
        for c in clusters
    ]

    scalability = [
        memory_scalability(backend, level.example_group, planner=executor)
        if level.example_group
        else []
        for level in levels
    ]

    ref_pid = probe_id(StreamProbe(cores=(reference_core,), sample=0))
    provenance = []
    for i, level in enumerate(levels):
        probes = [ref_pid]
        measurements = {ref_pid: float(ref)}
        for pair in level.pairs:
            pid = probe_id(StreamProbe(cores=tuple(pair), sample=0))
            probes.append(pid)
            measurements[pid] = float(pair_bw[tuple(pair)])
        provenance.append(
            ParameterProvenance(
                parameter=f"memory.level{i}.bandwidth",
                value=level.bandwidth,
                method="bandwidth-clustering",
                probes=probes,
                measurements=measurements,
                note=(
                    f"pairs at least {significance:.0%} below the reference "
                    f"(first probe, bytes/s), clustered at {similarity:.0%} "
                    "relative tolerance"
                ),
            )
        )
    return MemoryOverheadResult(
        reference=ref,
        levels=levels,
        pair_bandwidths=pair_bw,
        scalability=scalability,
        provenance=provenance,
    )


def memory_scalability(
    backend: Backend,
    group: Sequence[int],
    planner: PlanExecutor | None = None,
) -> list[float]:
    """Effective bandwidth of ``group[0]`` as group members activate.

    Entry k (0-based) is the first core's copy bandwidth with cores
    ``group[0..k]`` streaming concurrently — one line of Fig. 9(b).
    The paper's observation that one group per overhead level suffices
    (all groups of a level behave alike) is what makes this cheap.
    The k=2 point coincides with the pairwise batch of
    :func:`characterize_memory_overhead`, so issuing it through the
    shared planner turns it into a memo hit.
    """
    if not group:
        raise MeasurementError("scalability needs a non-empty group")
    executor = planner if planner is not None else PlanExecutor(backend)
    curve: list[float] = []
    for k in range(1, len(group) + 1):
        bw = executor.copy_bandwidth(list(group[:k]))
        curve.append(bw[group[0]])
    return curve
