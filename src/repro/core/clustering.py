"""Value clustering and pair-group inference.

Two small algorithms the paper uses repeatedly:

1. The Figs. 6/7 "is similar to a given X[i]" loop — greedy sequential
   clustering of measured values (bandwidths, latencies) by relative
   tolerance.
2. Turning pair lists into core *groups*: the paper's example — pairs
   (0,1), (0,2), (3,4), (3,5) identify groups {0,1,2} and {3,4,5} — is
   connected components of the pair graph, implemented here with a
   union-find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Sequence

from ..errors import DetectionError
from ..topology.machine import CorePair


@dataclass
class SimilarityCluster:
    """One cluster of similar measured values."""

    #: Representative value: the running mean of the members.
    value: float
    members: list[Hashable] = field(default_factory=list)
    _values: list[float] = field(default_factory=list)

    def add(self, key: Hashable, value: float) -> None:
        """Add a member and update the representative (running mean)."""
        self.members.append(key)
        self._values.append(value)
        self.value = sum(self._values) / len(self._values)

    def matches(self, value: float, rel_tol: float) -> bool:
        """True if ``value`` is within ``rel_tol`` of the representative."""
        return abs(value - self.value) <= rel_tol * abs(self.value)


def cluster_similar(
    items: Iterable[tuple[Hashable, float]],
    rel_tol: float,
) -> list[SimilarityCluster]:
    """Greedy sequential clustering, as in the paper's Figs. 6 and 7.

    Each item joins the first existing cluster whose representative is
    within ``rel_tol`` relative distance; otherwise it founds a new one.
    Clusters are returned sorted by representative value (ascending),
    which for latencies means fastest layer first.
    """
    if rel_tol < 0:
        raise DetectionError("rel_tol must be >= 0")
    clusters: list[SimilarityCluster] = []
    for key, value in items:
        for cluster in clusters:
            if cluster.matches(value, rel_tol):
                cluster.add(key, value)
                break
        else:
            fresh = SimilarityCluster(value=value)
            fresh.add(key, value)
            clusters.append(fresh)
    return sorted(clusters, key=lambda c: c.value)


class _UnionFind:
    """Minimal union-find over arbitrary integer keys."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent.setdefault(x, x)
        if parent != x:
            parent = self.find(parent)
            self._parent[x] = parent
        return parent

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)


def groups_from_pairs(pairs: Sequence[CorePair]) -> list[list[int]]:
    """Connected components of the pair graph, smallest member first.

    >>> groups_from_pairs([(0, 1), (0, 2), (3, 4), (3, 5)])
    [[0, 1, 2], [3, 4, 5]]
    """
    uf = _UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    components: dict[int, list[int]] = {}
    for core in sorted({c for pair in pairs for c in pair}):
        components.setdefault(uf.find(core), []).append(core)
    return sorted(components.values())
