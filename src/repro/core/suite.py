"""Suite orchestration: run all four Servet benchmarks in order.

The order matters, as in the real suite: cache sizes feed the
shared-cache benchmark (array sizing) and the communication benchmark
(probe message size = L1 size).  Each phase's measurement cost is
accounted both in virtual seconds (the simulated machine's clock —
comparable to the paper's Table I) and in wall seconds.

Resilience (DESIGN.md §6): by default the suite keeps its historical
raise-loudly behavior (``strict=True``).  With ``strict=False`` a
failing phase is recorded as ``failed`` in the report, later phases
proceed with documented fallbacks (the communication probe size falls
back to 32 KiB when cache detection failed), and phases whose
prerequisites are missing are marked ``skipped``.  A phase that
succeeded only after fault recovery (the backend reports incidents,
see :class:`repro.resilience.HardenedBackend`) is marked ``degraded``.
With ``checkpoint=PATH`` the suite serializes partial state after
every finished phase; ``resume=True`` reloads it and re-measures only
the phases that never finished.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Sequence

from ..backends.base import Backend, instrument_backend
from ..errors import CheckpointError, ReproError
from ..obs.metrics import MetricsRegistry
from ..obs.provenance import ParameterProvenance, record_provenance
from ..obs.trace import Tracer
from ..planner import PlanExecutor
from ..resilience.checkpoint import SuiteCheckpoint, restore_rng, rng_state_of
from ..resilience.policy import DEGRADING_INCIDENTS
from ..units import KiB
from .cache_size import _window_probe_ids, detect_caches
from .clustering import groups_from_pairs
from .comm_costs import run_comm_costs
from .memory_overhead import characterize_memory_overhead
from .report import (
    CacheLevelReport,
    CommLayerReport,
    MemoryLevelReport,
    ServetReport,
)
from .shared_cache import detect_shared_caches
from .tlb import detect_tlb_entries

#: Canonical phase names (Table I rows).
PHASES: tuple[str, ...] = (
    "cache_size",
    "shared_caches",
    "memory_overhead",
    "communication_costs",
)

#: Terminal statuses a phase can reach in the report.
PHASE_STATUSES: tuple[str, ...] = ("ok", "degraded", "failed", "skipped")

#: Communication probe size used when cache detection produced no L1
#: size to probe with (documented degraded-mode fallback).
COMM_PROBE_FALLBACK: int = 32 * KiB


@dataclass
class SuiteTimings:
    """Per-phase (virtual seconds, wall seconds)."""

    phases: dict[str, tuple[float, float]] = field(default_factory=dict)

    def record(self, name: str, virtual: float, wall: float) -> None:
        self.phases[name] = (virtual, wall)

    @property
    def total(self) -> tuple[float, float]:
        virtual = sum(v for v, _ in self.phases.values())
        wall = sum(w for _, w in self.phases.values())
        return virtual, wall


@dataclass
class _RunContext:
    """Mutable per-run bookkeeping shared by the phase helpers."""

    report: ServetReport
    completed: list[str]
    strict: bool
    checkpoint_path: Path | None


class ServetSuite:
    """Run the full benchmark suite against a backend.

    Parameters
    ----------
    backend:
        Measurement backend (simulated or native), optionally wrapped
        in :class:`repro.resilience.HardenedBackend` (retries/robust
        sampling) and/or :class:`repro.resilience.FaultInjectingBackend`
        (fault drills).
    node_cores:
        Cores used by the single-node benchmarks (cache sizes, shared
        caches, memory overhead).  Defaults to the first node's cores
        when the backend exposes a cluster, else all cores.
    comm_cores:
        Cores used by the communication benchmark (the paper uses two
        Finis Terrae nodes, i.e. 32 cores, to see every layer).
        Defaults to all cores.
    clock:
        Wall-clock source for the per-phase timings (defaults to
        :func:`time.perf_counter`; tests inject a deterministic clock
        so checkpoint/resume reports compare byte-for-byte).
    jobs:
        Worker-pool width for wall-clock-bound backends (see
        :class:`repro.planner.PlanExecutor`; no-op for virtual-time
        backends, whose determinism it would break).
    prune:
        Symmetry-pruning mode for pairwise batches: ``"off"`` (measure
        everything), ``"topology"`` (one representative per
        topology-equivalence class), or ``"verify"`` (topology plus a
        measured spot check per class).
    planner:
        Inject a pre-built :class:`~repro.planner.PlanExecutor`
        (overrides ``jobs``/``prune``); one executor is shared by every
        phase so later phases reuse earlier measurements.
    tracer:
        Span collector (:class:`repro.obs.Tracer`).  A private tracer
        with the backend's virtual clock is created when not given, so
        ``servet run --trace`` and tests can always read spans off
        ``suite.tracer``.
    metrics:
        Metrics registry shared with the planner (so the planner's
        probe accounting and the exported metrics document agree).
        Defaults to the injected planner's registry, else a fresh one.
    probe_timeout:
        Per-probe wall-clock deadline for the worker pool (see
        :class:`~repro.planner.PlanExecutor`): a hung wall-clock probe
        is abandoned, counted, and re-dispatched instead of stalling
        the whole plan.  Ignored when ``planner`` is injected.
    sim_cache:
        ``False`` bypasses the simulated backend's traversal outcome
        cache for this run (``servet run --no-sim-cache``); ``None``
        (default) leaves the backend as constructed.  Recorded in the
        checkpoint fingerprint either way, so a resumed run can never
        silently mix cached and uncached semantics.  Ignored by
        backends without the knob.
    """

    def __init__(
        self,
        backend: Backend,
        node_cores: Sequence[int] | None = None,
        comm_cores: Sequence[int] | None = None,
        probe_tlb: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        jobs: int = 1,
        prune: str = "off",
        planner: PlanExecutor | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        probe_timeout: float | None = None,
        sim_cache: bool | None = None,
    ) -> None:
        self.backend = backend
        self.probe_tlb = probe_tlb
        set_cache = getattr(backend, "set_sim_cache", None)
        if sim_cache is not None and set_cache is not None:
            set_cache(sim_cache)
        self.sim_cache = bool(getattr(backend, "sim_cache", sim_cache is not False))
        if metrics is not None:
            self.metrics = metrics
        elif planner is not None:
            self.metrics = planner.metrics
        else:
            self.metrics = MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(virtual_clock=lambda: self.backend.virtual_time)
        )
        self.planner = (
            planner
            if planner is not None
            else PlanExecutor(
                backend,
                prune=prune,
                jobs=jobs,
                tracer=self.tracer,
                metrics=self.metrics,
                probe_timeout=probe_timeout,
            )
        )
        if self.planner.tracer is None:
            self.planner.tracer = self.tracer
        instrument_backend(backend, tracer=self.tracer, metrics=self.metrics)
        self.prune = self.planner.prune
        self.jobs = self.planner.jobs
        #: Probes issued by the planner, per phase (checkpoint-resumable
        #: breakdown; sums to the planner's ``issued`` counter).
        self._phase_probes: dict[str, int] = {}
        if node_cores is None:
            cluster = getattr(backend, "cluster", None)
            if cluster is not None and cluster.n_nodes > 1:
                node_cores = list(range(cluster.node.n_cores))
            else:
                node_cores = list(range(backend.n_cores))
        self.node_cores = list(node_cores)
        self.comm_cores = (
            list(comm_cores) if comm_cores is not None else list(range(backend.n_cores))
        )
        self.timings = SuiteTimings()
        self._clock = clock
        self._last_phase: str | None = None

    # -- public API ---------------------------------------------------------

    def run(
        self,
        strict: bool = True,
        checkpoint: str | Path | None = None,
        resume: bool = False,
    ) -> ServetReport:
        """Execute all four phases and assemble the report.

        ``strict=True`` (default) re-raises the first phase failure.
        ``strict=False`` degrades gracefully: the failure is recorded
        in :attr:`ServetReport.phase_status` / ``phase_errors`` and
        later phases run with documented fallbacks.  ``checkpoint``
        names a JSON file updated after every finished phase;
        ``resume=True`` restores it (verifying it belongs to this
        machine/configuration) instead of re-measuring.
        """
        backend = self.backend
        checkpoint_path = Path(checkpoint) if checkpoint is not None else None
        state = self._load_checkpoint(checkpoint_path, resume)
        if state is not None:
            report = ServetReport.from_dict(state.report)
            report.phase_status = dict(state.status)
            report.phase_errors = dict(state.errors)
            completed = list(state.completed)
            self.timings.phases.update(state.timings)
            self._last_phase = completed[-1] if completed else None
            restore_rng(backend, state.rng_state)
            # Carry the finished phases' planner accounting forward so
            # the final report counts the whole run, not just the
            # resumed tail.
            planner_state = state.report.get("planner", {})
            self.planner.stats.merge(planner_state)
            for phase, count in planner_state.get("per_phase", {}).items():
                count = int(count)
                self._phase_probes[phase] = (
                    self._phase_probes.get(phase, 0) + count
                )
                self.metrics.counter("suite.probes_issued", phase=phase).inc(
                    count
                )
        else:
            report = ServetReport(
                system=backend.name,
                n_cores=backend.n_cores,
                page_size=backend.page_size,
            )
            completed = []
        ctx = _RunContext(report, completed, strict, checkpoint_path)

        # Phase 1: cache sizes (Fig. 4 pipeline).
        self._run_phase(ctx, "cache_size", lambda: self._phase_cache_size(report))
        have_caches = bool(report.caches)

        # Phase 2: shared caches (Fig. 5) — needs detected levels.
        if have_caches:
            self._run_phase(
                ctx, "shared_caches", lambda: self._phase_shared_caches(report)
            )
        else:
            self._skip_phase(ctx, "shared_caches", "no cache levels detected")

        # Extension phase: TLB entry count (cheap; see repro.core.tlb).
        if self.probe_tlb:
            if have_caches:
                self._run_phase(ctx, "tlb_detection", lambda: self._phase_tlb(report))
            else:
                self._skip_phase(
                    ctx, "tlb_detection", "no cache sizes to steer the probe"
                )

        # Phase 3: memory-access overhead (Fig. 6 + scalability).
        self._run_phase(ctx, "memory_overhead", lambda: self._phase_memory(report))

        # Phase 4: communication costs (Fig. 7 + Figs. 10b-d).
        if len(self.comm_cores) < 2:
            # A unicore system has no communication layers to measure.
            if "communication_costs" not in ctx.completed:
                report.comm_probe_size = (
                    report.cache_sizes[0] if have_caches else 0
                )
            self._skip_phase(
                ctx,
                "communication_costs",
                "fewer than two communication cores",
            )
        else:
            probe_size = (
                report.cache_sizes[0] if have_caches else COMM_PROBE_FALLBACK
            )
            self._run_phase(
                ctx,
                "communication_costs",
                lambda: self._phase_comm(report, probe_size),
                fallback=lambda exc: setattr(
                    report, "comm_probe_size", probe_size
                ),
                degraded_note=(
                    None
                    if have_caches
                    else "probe size fell back to 32 KiB (cache detection "
                    "produced no L1 size)"
                ),
            )

        report.timings = dict(self.timings.phases)
        report.planner = self._planner_dict()
        self._save_checkpoint(ctx)
        return report

    # -- phase bodies --------------------------------------------------------

    def _phase_cache_size(self, report: ServetReport) -> None:
        detection = detect_caches(self.backend, core=self.node_cores[0])
        for est in detection.levels:
            report.caches.append(
                CacheLevelReport(
                    level=est.level,
                    size=est.size,
                    method=est.method,
                    ways=(
                        est.probabilistic.associativity
                        if est.probabilistic is not None
                        else None
                    ),
                )
            )
        record_provenance(
            report, detection.provenance_records(), phase="cache_size"
        )

    def _phase_shared_caches(self, report: ServetReport) -> None:
        shared = detect_shared_caches(
            self.backend,
            report.cache_sizes,
            cores=self.node_cores,
            reference_core=self.node_cores[0],
            planner=self.planner,
        )
        for cache, pairs in zip(report.caches, shared.shared_pairs):
            cache.shared_pairs = pairs
            cache.sharing_groups = groups_from_pairs(pairs)
        record_provenance(report, shared.provenance, phase="shared_caches")

    def _phase_tlb(self, report: ServetReport) -> None:
        tlb = detect_tlb_entries(
            self.backend, report.cache_sizes, core=self.node_cores[0]
        )
        report.tlb_entries = tlb.entries
        if tlb.entries is not None:
            sweep = tlb.mcalibrator
            pids = _window_probe_ids(sweep, 0, len(sweep.sizes))
            record_provenance(
                report,
                [
                    ParameterProvenance(
                        parameter="tlb.entries",
                        value=tlb.entries,
                        method="cliff-discounted",
                        probes=pids,
                        measurements={
                            pid: float(c)
                            for pid, c in zip(pids, sweep.cycles)
                        },
                        note=(
                            f"one-line-per-page sweep at stride "
                            f"{sweep.stride}; cache-capacity regions "
                            f"{tlb.discounted_regions} discounted"
                        ),
                    )
                ],
                phase="tlb_detection",
            )
        else:
            # Detector give-up: record *why* there is no number instead
            # of silently omitting the parameter (queryable via
            # ``servet explain tlb.entries``).
            sweep = tlb.mcalibrator
            pids = _window_probe_ids(sweep, 0, len(sweep.sizes))
            if tlb.discounted_regions:
                reason = (
                    "undetectable: every rise in the one-line-per-page "
                    f"sweep (stride {sweep.stride}) sat on a cache-capacity "
                    f"cliff (discounted regions {tlb.discounted_regions})"
                )
            else:
                reason = (
                    "undetectable: the one-line-per-page sweep (stride "
                    f"{sweep.stride}) shows no TLB cliff up to "
                    f"{int(sweep.sizes[-1])} pages; TLB reach exceeds the "
                    "probed range"
                )
            record_provenance(
                report,
                [
                    ParameterProvenance(
                        parameter="tlb.entries",
                        value=None,
                        method="undetectable",
                        probes=pids,
                        measurements={
                            pid: float(c)
                            for pid, c in zip(pids, sweep.cycles)
                        },
                        note=reason,
                    )
                ],
                phase="tlb_detection",
            )

    def _phase_memory(self, report: ServetReport) -> None:
        memory = characterize_memory_overhead(
            self.backend,
            cores=self.node_cores,
            reference_core=self.node_cores[0],
            planner=self.planner,
        )
        report.memory_reference = memory.reference
        for level, curve in zip(memory.levels, memory.scalability):
            report.memory_levels.append(
                MemoryLevelReport(
                    bandwidth=level.bandwidth,
                    pairs=level.pairs,
                    groups=level.groups,
                    scalability=curve,
                )
            )
        record_provenance(report, memory.provenance, phase="memory_overhead")

    def _phase_comm(self, report: ServetReport, probe_size: int) -> None:
        comm = run_comm_costs(
            self.backend, probe_size, cores=self.comm_cores, planner=self.planner
        )
        report.comm_probe_size = comm.probe_size
        for layer in comm.layers:
            report.comm_layers.append(
                CommLayerReport(
                    index=layer.index,
                    latency=layer.latency,
                    pairs=layer.pairs,
                    characterization=comm.characterization[layer.index],
                    scalability=comm.scalability[layer.index],
                )
            )
        record_provenance(report, comm.provenance, phase="communication_costs")

    # -- resilience machinery ------------------------------------------------

    def _run_phase(
        self,
        ctx: _RunContext,
        name: str,
        body: Callable[[], None],
        fallback: Callable[[ReproError], None] | None = None,
        degraded_note: str | None = None,
    ) -> None:
        """Run one phase with status tracking and graceful degradation."""
        if name in ctx.completed:
            return  # restored from a checkpoint
        self._drain_incidents()  # don't blame this phase for old incidents
        issued_before = self.planner.stats.issued
        try:
            with self.tracer.span("phase", phase=name) as span:
                _, (virtual, wall) = self._timed(name, body)
                span.set(virtual_seconds=virtual, wall_seconds=wall)
        except ReproError as exc:
            self._account_phase(name, issued_before)
            ctx.report.phase_status[name] = "failed"
            ctx.report.phase_errors[name] = str(exc)
            if ctx.strict:
                raise
            if fallback is not None:
                fallback(exc)
            self._drain_incidents()
            self._finish_phase(ctx, name)
            return
        self._account_phase(name, issued_before)
        incidents = self._drain_incidents()
        notes = []
        if degraded_note:
            notes.append(degraded_note)
        if incidents:
            counts = ", ".join(f"{v} {k}" for k, v in sorted(incidents.items()))
            notes.append(f"recovered from measurement faults ({counts})")
        if notes:
            ctx.report.phase_status[name] = "degraded"
            ctx.report.phase_errors[name] = "; ".join(notes)
        else:
            ctx.report.phase_status[name] = "ok"
        self._finish_phase(ctx, name)

    def _account_phase(self, name: str, issued_before: int) -> None:
        """Attribute the planner probes a phase triggered to its name.

        Phases that bypass the planner (mcalibrator-driven cache and
        TLB sweeps call the backend directly) contribute a zero delta,
        so the per-phase counters always sum to the planner's global
        ``issued`` count.
        """
        delta = self.planner.stats.issued - issued_before
        self._phase_probes[name] = self._phase_probes.get(name, 0) + delta
        if delta:
            self.metrics.counter("suite.probes_issued", phase=name).inc(delta)
        virtual, wall = self.timings.phases.get(name, (0.0, 0.0))
        self.metrics.gauge("suite.phase_virtual_seconds", phase=name).set(virtual)
        self.metrics.gauge("suite.phase_wall_seconds", phase=name).set(wall)
        self.metrics.histogram("suite.phase_seconds").observe(wall)

    def _skip_phase(self, ctx: _RunContext, name: str, reason: str) -> None:
        if name in ctx.completed:
            return
        ctx.report.phase_status[name] = "skipped"
        ctx.report.phase_errors[name] = reason
        self.timings.record(name, 0.0, 0.0)
        self._finish_phase(ctx, name)

    def _finish_phase(self, ctx: _RunContext, name: str) -> None:
        ctx.completed.append(name)
        self._save_checkpoint(ctx)

    def _drain_incidents(self) -> dict[str, int]:
        """Pull (and reset) fault-recovery counters off the backend.

        Only incidents that mean actual fault recovery are returned
        (see :data:`repro.resilience.policy.DEGRADING_INCIDENTS`);
        routine spread-gate resamples never degrade a phase.
        """
        take = getattr(self.backend, "take_incidents", None)
        if take is None:
            return {}
        return {
            kind: count
            for kind, count in take().items()
            if count and kind in DEGRADING_INCIDENTS
        }

    def _fingerprint(self) -> dict:
        return {
            "system": self.backend.name,
            "n_cores": self.backend.n_cores,
            "page_size": self.backend.page_size,
            "node_cores": list(self.node_cores),
            "comm_cores": list(self.comm_cores),
            "probe_tlb": self.probe_tlb,
            # Pruned and unpruned runs are not resumable into each other
            # (different probes reached the backend, so its RNG streams
            # diverge mid-phase).
            "prune": self.prune,
            # Cached and uncached runs produce identical measurements,
            # but a resumed run must still match the original's
            # configuration exactly — no silent semantic mixing.
            "sim_cache": self.sim_cache,
        }

    def _planner_dict(self) -> dict:
        data: dict = dict(self.planner.stats.as_dict())
        data["prune"] = self.prune
        data["jobs"] = self.jobs
        data["per_phase"] = dict(self._phase_probes)
        return data

    def _load_checkpoint(
        self, path: Path | None, resume: bool
    ) -> SuiteCheckpoint | None:
        if path is None or not resume:
            return None
        if not path.exists():
            return None  # nothing to resume from: run fresh
        state = SuiteCheckpoint.load(path)
        if not state.matches(self._fingerprint()):
            raise CheckpointError(
                f"checkpoint {path} belongs to a different machine or suite "
                "configuration; refusing to resume"
            )
        return state

    def _save_checkpoint(self, ctx: _RunContext) -> None:
        if ctx.checkpoint_path is None:
            return
        ctx.report.planner = self._planner_dict()
        SuiteCheckpoint(
            fingerprint=self._fingerprint(),
            completed=list(ctx.completed),
            status=dict(ctx.report.phase_status),
            errors=dict(ctx.report.phase_errors),
            report=ctx.report.to_dict(),
            timings=dict(self.timings.phases),
            rng_state=rng_state_of(self.backend),
        ).save(ctx.checkpoint_path)

    # -- timing ---------------------------------------------------------------

    def _timed(self, name: str, fn):
        """Run ``fn`` recording wall time and the backend's virtual time.

        Any virtual seconds charged *between* phases (e.g. retry
        backoff during suite-level bookkeeping) are folded into the
        previous phase rather than silently dropped.
        """
        stray = self.backend.take_virtual_time()
        if stray and self._last_phase is not None:
            virtual, wall = self.timings.phases[self._last_phase]
            self.timings.phases[self._last_phase] = (virtual + stray, wall)
            stray = 0.0
        wall_start = self._clock()
        try:
            result = fn()
        except BaseException:
            # Account what the failed phase already spent before bailing.
            wall = self._clock() - wall_start
            self.timings.record(
                name, stray + self.backend.take_virtual_time(), wall
            )
            self._last_phase = name
            raise
        wall = self._clock() - wall_start
        virtual = stray + self.backend.take_virtual_time()
        self.timings.record(name, virtual, wall)
        self._last_phase = name
        return result, (virtual, wall)
