"""Suite orchestration: run all four Servet benchmarks in order.

The order matters, as in the real suite: cache sizes feed the
shared-cache benchmark (array sizing) and the communication benchmark
(probe message size = L1 size).  Each phase's measurement cost is
accounted both in virtual seconds (the simulated machine's clock —
comparable to the paper's Table I) and in wall seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..backends.base import Backend
from .cache_size import detect_caches
from .clustering import groups_from_pairs
from .comm_costs import run_comm_costs
from .memory_overhead import characterize_memory_overhead
from .report import (
    CacheLevelReport,
    CommLayerReport,
    MemoryLevelReport,
    ServetReport,
)
from .shared_cache import detect_shared_caches
from .tlb import detect_tlb_entries

#: Canonical phase names (Table I rows).
PHASES: tuple[str, ...] = (
    "cache_size",
    "shared_caches",
    "memory_overhead",
    "communication_costs",
)


@dataclass
class SuiteTimings:
    """Per-phase (virtual seconds, wall seconds)."""

    phases: dict[str, tuple[float, float]] = field(default_factory=dict)

    def record(self, name: str, virtual: float, wall: float) -> None:
        self.phases[name] = (virtual, wall)

    @property
    def total(self) -> tuple[float, float]:
        virtual = sum(v for v, _ in self.phases.values())
        wall = sum(w for _, w in self.phases.values())
        return virtual, wall


class ServetSuite:
    """Run the full benchmark suite against a backend.

    Parameters
    ----------
    backend:
        Measurement backend (simulated or native).
    node_cores:
        Cores used by the single-node benchmarks (cache sizes, shared
        caches, memory overhead).  Defaults to the first node's cores
        when the backend exposes a cluster, else all cores.
    comm_cores:
        Cores used by the communication benchmark (the paper uses two
        Finis Terrae nodes, i.e. 32 cores, to see every layer).
        Defaults to all cores.
    """

    def __init__(
        self,
        backend: Backend,
        node_cores: Sequence[int] | None = None,
        comm_cores: Sequence[int] | None = None,
        probe_tlb: bool = True,
    ) -> None:
        self.backend = backend
        self.probe_tlb = probe_tlb
        if node_cores is None:
            cluster = getattr(backend, "cluster", None)
            if cluster is not None and cluster.n_nodes > 1:
                node_cores = list(range(cluster.node.n_cores))
            else:
                node_cores = list(range(backend.n_cores))
        self.node_cores = list(node_cores)
        self.comm_cores = (
            list(comm_cores) if comm_cores is not None else list(range(backend.n_cores))
        )
        self.timings = SuiteTimings()

    def run(self) -> ServetReport:
        """Execute all four phases and assemble the report."""
        backend = self.backend
        report = ServetReport(
            system=backend.name,
            n_cores=backend.n_cores,
            page_size=backend.page_size,
        )

        # Phase 1: cache sizes (Fig. 4 pipeline).
        detection, _ = self._timed(
            "cache_size", lambda: detect_caches(backend, core=self.node_cores[0])
        )
        cache_sizes = detection.sizes

        # Phase 2: shared caches (Fig. 5).
        shared, _ = self._timed(
            "shared_caches",
            lambda: detect_shared_caches(
                backend,
                cache_sizes,
                cores=self.node_cores,
                reference_core=self.node_cores[0],
            ),
        )
        for est, pairs in zip(detection.levels, shared.shared_pairs):
            report.caches.append(
                CacheLevelReport(
                    level=est.level,
                    size=est.size,
                    method=est.method,
                    shared_pairs=pairs,
                    sharing_groups=groups_from_pairs(pairs),
                    ways=(
                        est.probabilistic.associativity
                        if est.probabilistic is not None
                        else None
                    ),
                )
            )

        # Extension phase: TLB entry count (cheap; see repro.core.tlb).
        if self.probe_tlb:
            tlb, _ = self._timed(
                "tlb_detection",
                lambda: detect_tlb_entries(
                    backend, cache_sizes, core=self.node_cores[0]
                ),
            )
            report.tlb_entries = tlb.entries

        # Phase 3: memory-access overhead (Fig. 6 + scalability).
        memory, _ = self._timed(
            "memory_overhead",
            lambda: characterize_memory_overhead(
                backend,
                cores=self.node_cores,
                reference_core=self.node_cores[0],
            ),
        )
        report.memory_reference = memory.reference
        for level, curve in zip(memory.levels, memory.scalability):
            report.memory_levels.append(
                MemoryLevelReport(
                    bandwidth=level.bandwidth,
                    pairs=level.pairs,
                    groups=level.groups,
                    scalability=curve,
                )
            )

        # Phase 4: communication costs (Fig. 7 + Figs. 10b-d).
        if len(self.comm_cores) < 2:
            # A unicore system has no communication layers to measure.
            report.comm_probe_size = cache_sizes[0]
            self.timings.record("communication_costs", 0.0, 0.0)
            report.timings = dict(self.timings.phases)
            return report
        comm, _ = self._timed(
            "communication_costs",
            lambda: run_comm_costs(backend, cache_sizes[0], cores=self.comm_cores),
        )
        report.comm_probe_size = comm.probe_size
        for layer in comm.layers:
            report.comm_layers.append(
                CommLayerReport(
                    index=layer.index,
                    latency=layer.latency,
                    pairs=layer.pairs,
                    characterization=comm.characterization[layer.index],
                    scalability=comm.scalability[layer.index],
                )
            )

        report.timings = dict(self.timings.phases)
        return report

    def _timed(self, name: str, fn):
        """Run ``fn`` recording wall time and the backend's virtual time."""
        self.backend.take_virtual_time()  # reset any prior accumulation
        wall_start = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - wall_start
        virtual = self.backend.take_virtual_time()
        self.timings.record(name, virtual, wall)
        return result, (virtual, wall)
