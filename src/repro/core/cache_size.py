"""Cache level and size detection (paper Fig. 4).

Drives mcalibrator, analyzes the gradient curve ``C[k+1]/C[k]`` and
dispatches each rise to the right size estimator:

- the **first** peak is the virtually indexed L1: its size is read
  positionally (the last array size before the jump);
- a later peak confined to a **single** array size means the OS applies
  page coloring (the cache behaves as virtually indexed): positional
  read again;
- a **wide** peak is the physically indexed, randomly paged case:
  the probabilistic algorithm (Fig. 3) runs on the points around the
  peak where the gradient exceeds 1;
- a still-rising **tail** at the largest sizes also goes to the
  probabilistic algorithm (the cache is near or beyond MAX_CACHE).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.signal import find_peaks

from ..backends.base import Backend
from ..errors import DetectionError
from ..obs.provenance import ParameterProvenance
from ..planner.plan import TraversalProbe, probe_id
from .mcalibrator import MAX_CACHE, MIN_CACHE, STRIDE, McalibratorResult, run_mcalibrator
from .probabilistic import ProbabilisticEstimate, probabilistic_cache_size

#: A gradient above this marks a significant rise (5 % over flat).
GRADIENT_THRESHOLD: float = 1.05
#: Region edges are extended outwards while the gradient exceeds this.
EXTEND_THRESHOLD: float = 1.01
#: Valley depth (relative to the smaller neighbouring peak's height
#: above 1) below which two maxima in one region are split apart.
VALLEY_FRACTION: float = 0.5
#: Total cycles rise ``C[end] / C[start]`` a region must show to count
#: as a cache boundary (filters single-point measurement noise).
MIN_RISE: float = 1.3
#: Two probabilistic levels carved out of the *same* raw gradient
#: region whose size estimates sit closer than this ratio are one cache
#: whose wide binomial rise got valley-split by noise: real hierarchies
#: keep a factor >= 2 between consecutive level capacities.
MERGE_RATIO: float = 1.75


@dataclass
class CacheLevelEstimate:
    """One detected cache level."""

    level: int
    size: int
    #: "l1-peak", "positional" (page-coloring case) or "probabilistic".
    method: str
    #: Index range ``[lo, hi)`` of mcalibrator points used.
    used_range: tuple[int, int]
    #: Present when the probabilistic algorithm produced the estimate.
    probabilistic: ProbabilisticEstimate | None = None
    #: Probe IDs / cycle measurements behind the estimate when they do
    #: not come from the shared mcalibrator sweep (the densified
    #: refinement pass issues its own probes); empty otherwise — the
    #: provenance builder then reads the mcalibrator window directly.
    probe_ids: list[str] = field(default_factory=list)
    probe_cycles: list[float] = field(default_factory=list)


@dataclass
class CacheDetectionResult:
    """All cache levels detected from one mcalibrator run."""

    levels: list[CacheLevelEstimate]
    mcalibrator: McalibratorResult
    page_size: int
    diagnostics: dict = field(default_factory=dict)

    @property
    def sizes(self) -> list[int]:
        """Detected sizes, L1 first."""
        return [lvl.size for lvl in self.levels]

    def provenance_records(self) -> list[ParameterProvenance]:
        """One ``cache.L<n>.size`` evidence trail per detected level."""
        records = []
        for lvl in self.levels:
            if lvl.probe_ids:
                pids = list(lvl.probe_ids)
                cycles = list(lvl.probe_cycles)
            else:
                lo, hi = lvl.used_range
                hi = min(hi, len(self.mcalibrator.sizes))
                pids = _window_probe_ids(self.mcalibrator, lo, hi)
                cycles = [float(c) for c in self.mcalibrator.cycles[lo:hi]]
            records.append(
                ParameterProvenance(
                    parameter=f"cache.L{lvl.level}.size",
                    value=lvl.size,
                    method=lvl.method,
                    probes=pids,
                    measurements=dict(zip(pids, cycles)),
                    note=(
                        f"mcalibrator window [{lvl.used_range[0]}, "
                        f"{lvl.used_range[1]}), stride "
                        f"{self.mcalibrator.stride}"
                    ),
                )
            )
        return records


def _window_probe_ids(mres: McalibratorResult, lo: int, hi: int) -> list[str]:
    """Probe IDs for mcalibrator points ``[lo, hi)``.

    Falls back to recomputing the IDs when the result was built without
    them (direct construction in analysis-only paths): the sample-0
    representative probe is fully determined by (core, size, stride).
    """
    if mres.probe_ids:
        return list(mres.probe_ids[lo:hi])
    return [
        probe_id(TraversalProbe(((mres.core, int(size)),), mres.stride, 0))
        for size in mres.sizes[lo:hi]
    ]


def _gradient_regions(gradients: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous index runs (inclusive) where the gradient is a rise."""
    above = gradients > GRADIENT_THRESHOLD
    regions: list[tuple[int, int]] = []
    start: int | None = None
    for i, flag in enumerate(above):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            regions.append((start, i - 1))
            start = None
    if start is not None:
        regions.append((start, len(above) - 1))
    return regions


def _split_at_valleys(gradients: np.ndarray, lo: int, hi: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi]`` at deep valleys between *prominent* maxima.

    Two caches with close sizes produce overlapping rises whose gradient
    region never dips under the threshold; a valley dropping below
    ``1 + VALLEY_FRACTION * (min(peak heights) - 1)`` between two
    prominent peaks separates them.  Prominence filtering (scipy
    ``find_peaks``) ignores the small local maxima measurement noise
    sprinkles over a wide binomial smear.
    """
    segment = gradients[lo : hi + 1]
    if len(segment) < 3:
        return [(lo, hi)]
    # Fixed prominence: well above measurement-noise jitter on the
    # gradient (a few percent), well below any real cache boundary's
    # rise.  Scaling it with the tallest peak would suppress a genuine
    # small peak sitting next to a huge L1 cliff.
    prominence = 0.15
    # Pad with flat gradient so a maximum sitting on the region boundary
    # still counts as a peak (find_peaks never reports endpoints).
    padded = np.concatenate(([1.0], segment, [1.0]))
    peaks, _ = find_peaks(
        padded - 1.0, height=GRADIENT_THRESHOLD - 1.0, prominence=prominence
    )
    peaks = peaks - 1  # back to segment coordinates
    if len(peaks) <= 1:
        return [(lo, hi)]
    pieces: list[tuple[int, int]] = []
    piece_start = lo
    for left, right in zip(peaks, peaks[1:]):
        valley_rel = int(np.argmin(segment[left : right + 1])) + left
        depth_cut = 1.0 + VALLEY_FRACTION * (
            min(segment[left], segment[right]) - 1.0
        )
        if segment[valley_rel] < depth_cut:
            pieces.append((piece_start, lo + valley_rel))
            piece_start = lo + valley_rel + 1
    pieces.append((piece_start, hi))
    return pieces


def _extend_region(
    gradients: np.ndarray,
    lo: int,
    hi: int,
    lo_bound: int = 0,
    hi_bound: int | None = None,
) -> tuple[int, int]:
    """Grow the region while the gradient stays above EXTEND_THRESHOLD.

    ``lo_bound``/``hi_bound`` clamp the growth so a region never bleeds
    into a neighbouring region's rise (two nearby cache levels connected
    by a shallow noisy valley would otherwise contaminate each other's
    probabilistic windows).
    """
    if hi_bound is None:
        hi_bound = len(gradients) - 1
    while lo > lo_bound and gradients[lo - 1] > EXTEND_THRESHOLD:
        lo -= 1
    while hi < hi_bound and gradients[hi + 1] > EXTEND_THRESHOLD:
        hi += 1
    return lo, hi


def detect_cache_levels(
    mres: McalibratorResult,
    page_size: int,
) -> CacheDetectionResult:
    """Apply the Fig. 4 decision procedure to an mcalibrator result."""
    gradients = mres.gradients
    raw_regions = _gradient_regions(gradients)
    if not raw_regions:
        raise DetectionError(
            "no gradient peaks found: no cache boundary lies inside the "
            "probed size range"
        )
    split_regions: list[tuple[int, int]] = []
    for lo, hi in raw_regions:
        split_regions.extend(_split_at_valleys(gradients, lo, hi))
    split_regions.sort()

    # The L1 cliff is always a single-point jump (virtually indexed,
    # exact capacity), but on machines whose L2 sits close above the L1
    # the conflict smear starts immediately and the gradient never dips
    # back under the threshold: the first region then contains both.
    # Split it deterministically at the L1 peak.
    lo0, hi0 = split_regions[0]
    peak0 = int(np.argmax(gradients[lo0 : hi0 + 1])) + lo0
    if hi0 > peak0 and mres.cycles[hi0 + 1] / mres.cycles[peak0 + 1] >= MIN_RISE:
        split_regions[0] = (lo0, peak0)
        if len(split_regions) > 1 and split_regions[1][0] == hi0 + 1:
            # The residual is the foot of the next region's rise (the
            # earlier valley split put the boundary inside it): merge.
            split_regions[1] = (peak0 + 1, split_regions[1][1])
        else:
            split_regions.insert(1, (peak0 + 1, hi0))

    # Extend each region towards its neighbours (never across them) and
    # drop regions whose total cycles rise is insignificant: a lone
    # noisy gradient point is not a cache boundary.  Each surviving
    # region remembers which *raw* (pre-split) region it came from so
    # the post-hoc merge below can tell "two rises split by a valley"
    # apart from "two separate rises".
    regions: list[tuple[int, int, int, int]] = []  # (lo, hi, xlo, xhi)
    origins: list[int] = []
    for i, (lo, hi) in enumerate(split_regions):
        lo_bound = split_regions[i - 1][1] + 1 if i > 0 else 0
        hi_bound = (
            split_regions[i + 1][0] - 1
            if i + 1 < len(split_regions)
            else len(gradients) - 1
        )
        xlo, xhi = _extend_region(gradients, lo, hi, lo_bound, hi_bound)
        rise = mres.cycles[xhi + 1] / mres.cycles[xlo]
        if rise >= MIN_RISE:
            regions.append((lo, hi, xlo, xhi))
            origins.append(
                next(
                    (
                        raw_idx
                        for raw_idx, (rlo, rhi) in enumerate(raw_regions)
                        if rlo <= lo <= rhi
                    ),
                    -1 - i,
                )
            )
    if not regions:
        raise DetectionError(
            "gradient peaks were all insignificant; no cache boundary "
            "stands out of the measurement noise"
        )

    levels: list[CacheLevelEstimate] = []
    for region_idx, (lo, hi, xlo, xhi) in enumerate(regions):
        level_number = region_idx + 1
        if region_idx == 0:
            # L1 is virtually indexed: positional read at the peak.
            peak = int(np.argmax(gradients[lo : hi + 1])) + lo
            levels.append(
                CacheLevelEstimate(
                    level=level_number,
                    size=int(mres.sizes[peak]),
                    method="l1-peak",
                    used_range=(peak, peak + 2),
                )
            )
            continue
        # "Peak is related only to a single array size" (Fig. 4): the
        # OS used page coloring, so the cache behaves as virtually
        # indexed.  Noise can smudge a one-point cliff into a short
        # region, so the test is dominance: does one gradient jump
        # carry (almost) the whole rise of the window?
        window = gradients[xlo : xhi + 1]
        peak = int(np.argmax(window)) + xlo
        total_log_rise = float(np.log(mres.cycles[xhi + 1] / mres.cycles[xlo]))
        peak_share = float(np.log(gradients[peak])) / total_log_rise
        # 0.93: a true coloring cliff carries ~99% of the rise in one
        # jump; even the steepest binomial transition (few page colors,
        # e.g. a 512KB/16-way cache with 8 colors) stays below ~0.85.
        if peak_share > 0.93:
            levels.append(
                CacheLevelEstimate(
                    level=level_number,
                    size=int(mres.sizes[peak]),
                    method="positional",
                    used_range=(peak, peak + 2),
                )
            )
            continue
        # Wide peak: probabilistic algorithm over the points where the
        # gradient exceeds 1 around the peak (plus the bounding plateau
        # points so miss rates normalize correctly).
        c_lo, c_hi = xlo, xhi + 2  # C-index window [c_lo, c_hi)
        estimate = probabilistic_cache_size(
            mres.sizes[c_lo:c_hi], mres.cycles[c_lo:c_hi], page_size
        )
        levels.append(
            CacheLevelEstimate(
                level=level_number,
                size=estimate.size,
                method="probabilistic",
                used_range=(c_lo, c_hi),
                probabilistic=estimate,
            )
        )

    # A valley split can cut one cache's wide binomial rise in two when
    # noise digs a deep enough dip between two apparent maxima: both
    # halves then pass MIN_RISE and yield probabilistic estimates a few
    # tens of percent apart.  No real hierarchy has consecutive levels
    # that close, so merge adjacent probabilistic estimates that came
    # from the same raw region and sit within MERGE_RATIO, re-fitting
    # over the combined window.
    merges: list[tuple[int, int]] = []
    i = 0
    while i + 1 < len(levels):
        a, b = levels[i], levels[i + 1]
        if (
            a.method == "probabilistic"
            and b.method == "probabilistic"
            and origins[i] == origins[i + 1]
            and max(a.size, b.size) < MERGE_RATIO * min(a.size, b.size)
        ):
            c_lo = min(a.used_range[0], b.used_range[0])
            c_hi = max(a.used_range[1], b.used_range[1])
            estimate = probabilistic_cache_size(
                mres.sizes[c_lo:c_hi], mres.cycles[c_lo:c_hi], page_size
            )
            merges.append((a.size, b.size))
            levels[i] = CacheLevelEstimate(
                level=a.level,
                size=estimate.size,
                method="probabilistic",
                used_range=(c_lo, c_hi),
                probabilistic=estimate,
            )
            del levels[i + 1]
            del origins[i + 1]
            # Stay on i: the merged estimate may now sit close to the
            # next level carved from the same raw region.
        else:
            i += 1
    for number, lvl in enumerate(levels, start=1):
        lvl.level = number

    return CacheDetectionResult(
        levels=levels,
        mcalibrator=mres,
        page_size=page_size,
        diagnostics={
            "regions": regions,
            "raw_regions": raw_regions,
            "merged_levels": merges,
            "origins": origins,
        },
    )


#: Probabilistic windows with fewer points than this get densified.
MIN_WINDOW_POINTS: int = 8


def _refine_probabilistic(
    backend: Backend,
    core: int,
    stride: int,
    estimate: CacheLevelEstimate,
    mres: McalibratorResult,
    samples: int,
) -> CacheLevelEstimate:
    """Re-estimate a level from a densified size sweep over its window.

    The Fig. 1 schedule doubles sizes below 2 MB, leaving only a handful
    of points across a small L2's rise — too few for a stable fit.  This
    adaptive pass re-measures the window with an even step (a refinement
    over the original suite, documented in DESIGN.md).
    """
    import numpy as np  # local alias for clarity

    c_lo, c_hi = estimate.used_range
    lo_size = int(mres.sizes[c_lo])
    hi_size = int(mres.sizes[min(c_hi - 1, len(mres.sizes) - 1)])
    span = hi_size - lo_size
    step = max((span // 14) // stride * stride, stride)
    sizes = list(range(lo_size, hi_size + 1, step))
    if len(sizes) < 4:
        return estimate
    cycles = [
        float(
            np.mean(
                [
                    backend.traversal_cycles([(core, size)], stride)[core]
                    for _ in range(samples)
                ]
            )
        )
        for size in sizes
    ]
    refined = probabilistic_cache_size(
        np.asarray(sizes, dtype=np.float64),
        np.asarray(cycles, dtype=np.float64),
        backend.page_size,
    )
    return CacheLevelEstimate(
        level=estimate.level,
        size=refined.size,
        method="probabilistic-refined",
        used_range=estimate.used_range,
        probabilistic=refined,
        probe_ids=[
            probe_id(TraversalProbe(((core, size),), stride, 0))
            for size in sizes
        ],
        probe_cycles=cycles,
    )


def detect_caches(
    backend: Backend,
    core: int = 0,
    min_cache: int = MIN_CACHE,
    max_cache: int = MAX_CACHE,
    stride: int = STRIDE,
    samples: int = 5,
    refine: bool = True,
) -> CacheDetectionResult:
    """Run mcalibrator on ``backend`` and detect levels (Fig. 4 driver).

    With ``refine`` (default), probabilistic estimates whose analysis
    window contains fewer than :data:`MIN_WINDOW_POINTS` measurements
    are re-estimated from a densified sweep of the window.
    """
    mres = run_mcalibrator(
        backend,
        core=core,
        min_cache=min_cache,
        max_cache=max_cache,
        stride=stride,
        samples=samples,
    )
    result = detect_cache_levels(mres, backend.page_size)
    if refine:
        for i, est in enumerate(result.levels):
            c_lo, c_hi = est.used_range
            if est.method == "probabilistic" and c_hi - c_lo < MIN_WINDOW_POINTS:
                result.levels[i] = _refine_probabilistic(
                    backend, core, stride, est, mres, samples
                )
        _merge_refined_levels(result, backend, core, stride, mres, samples)
    return result


def _merge_refined_levels(
    result: CacheDetectionResult,
    backend: Backend,
    core: int,
    stride: int,
    mres: McalibratorResult,
    samples: int,
) -> None:
    """Re-run the close-levels merge after refinement (in place).

    The coarse estimates of a valley-split rise can sit far apart (each
    fit only saw half the transition), so the in-analysis merge misses
    them; refinement then pulls both towards the true capacity and the
    artifact becomes visible as two levels within :data:`MERGE_RATIO`
    of each other inside one raw gradient region.  The merged level is
    re-fitted from a densified sweep over the combined window.
    """
    levels = result.levels
    origins = list(result.diagnostics.get("origins", []))
    if len(origins) != len(levels):
        return
    i = 0
    while i + 1 < len(levels):
        a, b = levels[i], levels[i + 1]
        if (
            a.method.startswith("probabilistic")
            and b.method.startswith("probabilistic")
            and origins[i] == origins[i + 1]
            and max(a.size, b.size) < MERGE_RATIO * min(a.size, b.size)
        ):
            c_lo = min(a.used_range[0], b.used_range[0])
            c_hi = max(a.used_range[1], b.used_range[1])
            seed_est = CacheLevelEstimate(
                level=a.level, size=0, method="probabilistic",
                used_range=(c_lo, c_hi),
            )
            merged = _refine_probabilistic(
                backend, core, stride, seed_est, mres, samples
            )
            if merged is seed_est:  # window too narrow to densify
                estimate = probabilistic_cache_size(
                    mres.sizes[c_lo:c_hi], mres.cycles[c_lo:c_hi],
                    backend.page_size,
                )
                merged = CacheLevelEstimate(
                    level=a.level, size=estimate.size, method="probabilistic",
                    used_range=(c_lo, c_hi), probabilistic=estimate,
                )
            levels[i] = merged
            del levels[i + 1]
            del origins[i + 1]
            result.diagnostics.setdefault("merged_levels", []).append(
                (a.size, b.size)
            )
        else:
            i += 1
    for number, lvl in enumerate(levels, start=1):
        lvl.level = number
    result.diagnostics["origins"] = origins
