"""Communication cost determination (paper Fig. 7 and Section III-D).

Three stages, exactly as the paper structures them:

1. **Layers** — measure the message latency of every pair of cores
   (message size = the L1 cache size, which exposes differences between
   cache-sharing pairs) and cluster similar latencies: each cluster is a
   communication layer (the L/Pl arrays of Fig. 7).
2. **Characterization** — for one representative pair per layer,
   micro-benchmark point-to-point latency/bandwidth across message
   sizes; every other pair of the layer behaves like its
   representative (Figs. 10c/d).
3. **Scalability** — send increasing numbers of concurrent messages
   within a layer and compare against the isolated latency (Fig. 10b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..backends.base import Backend
from ..errors import MeasurementError
from ..obs.provenance import ParameterProvenance
from ..planner import MessageProbe, PlanExecutor, probe_id
from ..topology.machine import CorePair, all_pairs
from ..units import KiB, MiB
from .clustering import cluster_similar

#: Relative tolerance for "similar" latencies (Fig. 7 clustering).
SIMILARITY_TOLERANCE: float = 0.15
#: Message sizes characterized per layer (Fig. 10c/d sweep).
DEFAULT_MESSAGE_SIZES: tuple[int, ...] = tuple(
    1 * KiB * 2**k for k in range(15)  # 1 KB .. 16 MB
)


@dataclass
class CommLayer:
    """One communication layer: pairs with indistinguishable costs."""

    index: int
    latency: float
    pairs: list[CorePair]

    @property
    def representative(self) -> CorePair:
        """The pair whose micro-benchmarks stand in for the layer."""
        return self.pairs[0]

    def disjoint_pairs(self) -> list[CorePair]:
        """A maximal greedy set of pairs sharing no core (for the
        concurrent-messages scalability probe)."""
        used: set[int] = set()
        chosen: list[CorePair] = []
        for a, b in self.pairs:
            if a not in used and b not in used:
                chosen.append((a, b))
                used.update((a, b))
        return chosen


@dataclass
class CommCostsResult:
    """Layers plus their characterization and scalability curves."""

    probe_size: int
    layers: list[CommLayer]
    #: All pairwise latencies at the probe size (Fig. 10a data).
    pair_latencies: dict[CorePair, float] = field(default_factory=dict)
    #: Per layer: list of (message size, latency s, bandwidth B/s).
    characterization: list[list[tuple[int, float, float]]] = field(
        default_factory=list
    )
    #: Per layer: list of (concurrent messages, worst latency s,
    #: slowdown vs isolated).
    scalability: list[list[tuple[int, float, float]]] = field(default_factory=list)
    #: Per-layer evidence trails (``comm.layer<i>.latency``).
    provenance: list[ParameterProvenance] = field(default_factory=list)

    @property
    def n_layers(self) -> int:
        """The ``n`` output of Fig. 7."""
        return len(self.layers)

    def layer_of(self, pair: CorePair) -> int:
        """Index of the layer containing ``pair``."""
        key = tuple(sorted(pair))
        for layer in self.layers:
            if key in layer.pairs:
                return layer.index
        raise MeasurementError(f"pair {pair} was not measured")

    def latency_estimate(self, pair: CorePair, nbytes: int) -> float:
        """Estimated latency for any pair/size from the characterization.

        This is the lookup an autotuned code performs: find the pair's
        layer, then interpolate the representative's curve (log-linear
        in message size).
        """
        layer_idx = self.layer_of(pair)
        curve = self.characterization[layer_idx]
        if not curve:
            raise MeasurementError(f"layer {layer_idx} was not characterized")
        if nbytes <= curve[0][0]:
            return curve[0][1]
        for (s0, t0, _), (s1, t1, _) in zip(curve, curve[1:]):
            if s0 <= nbytes <= s1:
                frac = (nbytes - s0) / (s1 - s0)
                return t0 + frac * (t1 - t0)
        # Beyond the sweep: extrapolate at the last observed bandwidth.
        s_last, t_last, _ = curve[-1]
        return t_last * nbytes / s_last


def detect_comm_layers(
    backend: Backend,
    probe_size: int,
    cores: Sequence[int] | None = None,
    similarity: float = SIMILARITY_TOLERANCE,
    planner: PlanExecutor | None = None,
) -> CommCostsResult:
    """Stage 1 (Fig. 7): measure every pair and cluster latencies.

    ``probe_size`` should be the detected L1 cache size, per the paper
    ("it allows to find differences in communications when sharing
    other cache levels").  The all-pairs probe batch goes through the
    measurement ``planner`` (a pass-through executor by default), which
    may prune symmetric pairs and overlap independent probes.
    """
    if cores is None:
        cores = list(range(backend.n_cores))
    if len(cores) < 2:
        raise MeasurementError("communication layers need at least two cores")
    executor = planner if planner is not None else PlanExecutor(backend)
    pair_latencies = executor.pairwise_message_latency(
        all_pairs(list(cores)), probe_size
    )
    items: list[tuple[CorePair, float]] = []
    for (a, b), latency in pair_latencies.items():
        if not (latency > 0) or latency != latency:
            raise MeasurementError(
                f"latency measurement for pair ({a},{b}) is unusable "
                f"({latency!r})"
            )
        items.append(((a, b), latency))
    clusters = cluster_similar(items, rel_tol=similarity)
    layers = [
        CommLayer(index=i, latency=c.value, pairs=sorted(c.members))  # type: ignore[arg-type]
        for i, c in enumerate(clusters)
    ]
    provenance = []
    for layer in layers:
        probes = []
        measurements = {}
        for pair in layer.pairs:
            pid = probe_id(
                MessageProbe(pair=tuple(pair), nbytes=probe_size, sample=0)
            )
            probes.append(pid)
            measurements[pid] = float(pair_latencies[tuple(pair)])
        provenance.append(
            ParameterProvenance(
                parameter=f"comm.layer{layer.index}.latency",
                value=layer.latency,
                method="latency-clustering",
                probes=probes,
                measurements=measurements,
                note=(
                    f"all-pairs latency at probe size {probe_size} B "
                    f"clustered at {similarity:.0%} relative tolerance; "
                    "each probe carries the pair's measured latency (s)"
                ),
            )
        )
    return CommCostsResult(
        probe_size=probe_size,
        layers=layers,
        pair_latencies=pair_latencies,
        provenance=provenance,
    )


def characterize_layers(
    backend: Backend,
    result: CommCostsResult,
    message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
    planner: PlanExecutor | None = None,
) -> None:
    """Stage 2: per-layer micro-benchmark over message sizes (in place).

    Issued through the planner so a sweep size that coincides with the
    stage-1 probe size (L1 is always in the default sweep) reuses the
    already-measured latency instead of paying for it again.
    """
    executor = planner if planner is not None else PlanExecutor(backend)
    result.characterization = []
    for layer in result.layers:
        a, b = layer.representative
        curve: list[tuple[int, float, float]] = []
        for nbytes in message_sizes:
            latency = executor.message_latency(a, b, nbytes)
            curve.append((nbytes, latency, nbytes / latency))
        result.characterization.append(curve)


def layer_scalability(
    backend: Backend,
    result: CommCostsResult,
    max_pairs: int | None = None,
    planner: PlanExecutor | None = None,
) -> None:
    """Stage 3: concurrent-message slowdown per layer (in place).

    For each layer, ``k`` disjoint pairs exchange simultaneously
    (``2k`` concurrent messages); the worst per-message latency is
    compared against the isolated reference (the Fig. 10b curves).

    The isolated reference is the probe-size latency of the first
    disjoint pair — which stage 1 already measured and recorded in
    :attr:`CommCostsResult.pair_latencies` — so it is looked up there
    instead of being re-measured (and only measured, through the
    planner, when the result object carries no stage-1 data).
    """
    executor = planner if planner is not None else PlanExecutor(backend)
    result.scalability = []
    for layer in result.layers:
        pairs = layer.disjoint_pairs()
        if max_pairs is not None:
            pairs = pairs[:max_pairs]
        if not pairs:
            result.scalability.append([])
            continue
        reference = result.pair_latencies.get(pairs[0])
        if reference is None:
            reference = executor.message_latency(*pairs[0], result.probe_size)
        curve: list[tuple[int, float, float]] = []
        k = 1
        while k <= len(pairs):
            concurrent = executor.concurrent_message_latency(
                pairs[:k], result.probe_size
            )
            curve.append((2 * k, concurrent.worst, concurrent.worst / reference))
            k = k * 2
        result.scalability.append(curve)


def run_comm_costs(
    backend: Backend,
    l1_size: int,
    cores: Sequence[int] | None = None,
    message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
    planner: PlanExecutor | None = None,
) -> CommCostsResult:
    """All three stages of Section III-D in order.

    One planner serves all three stages so stage 2 and 3 reuse stage-1
    measurements (memoized probes, pruned pairs) for free.
    """
    executor = planner if planner is not None else PlanExecutor(backend)
    result = detect_comm_layers(
        backend, probe_size=l1_size, cores=cores, planner=executor
    )
    characterize_layers(
        backend, result, message_sizes=message_sizes, planner=executor
    )
    layer_scalability(backend, result, planner=executor)
    return result
