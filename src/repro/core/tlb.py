"""TLB entry-count detection (extension).

Servet's methodological ancestor (Saavedra & Smith, ref. [15] of the
paper) measures the TLB with the same traverse-and-watch-the-cliff idea
as mcalibrator.  The probe accesses one line per page with a stride of
``page_size + line_size``:

- crossing a page per access makes the virtual page number the fast
  variable, so the TLB (virtually indexed) produces a sharp cliff
  exactly at its entry count;
- the extra line per access spreads the lines over *all* cache sets, so
  cache-capacity effects appear only near ``CS / line_size`` accessed
  pages — far from typical TLB entry counts — and can be discounted
  using the already-detected hierarchy.

A TLB whose entry count coincides with a cache's line capacity
(``CS / line_size``) is genuinely ambiguous under this probe; the
detector then reports ``None`` rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.base import Backend
from ..errors import DetectionError
from .cache_size import MIN_RISE, _extend_region, _gradient_regions
from .mcalibrator import McalibratorResult

#: Cache line size assumed by the probe (the suite's compile-time
#: assumption; every machine modelled here uses 64-byte lines).
LINE_SIZE: int = 64


@dataclass
class TLBDetection:
    """Outcome of the TLB probe."""

    #: Detected entry count, or None if no unambiguous TLB cliff was
    #: visible in the probed range.
    entries: int | None
    #: The raw sweep (sizes are ``pages * (page_size + LINE_SIZE)``).
    mcalibrator: McalibratorResult
    #: Gradient regions attributed to cache capacity and skipped.
    discounted_regions: list[tuple[int, int]]


def detect_tlb_entries(
    backend: Backend,
    cache_sizes: list[int],
    core: int = 0,
    min_pages: int = 4,
    max_pages: int = 8192,
    samples: int = 3,
) -> TLBDetection:
    """Detect the TLB entry count (None when nothing unambiguous shows).

    Parameters
    ----------
    backend:
        Measurement backend.
    cache_sizes:
        The already-detected cache hierarchy; gradient rises positioned
        near a cache's line capacity are capacity artifacts of this
        stride and are discounted.
    """
    if min_pages < 2 or max_pages <= min_pages:
        raise DetectionError("invalid page probe range")
    stride = backend.page_size + LINE_SIZE
    sizes: list[int] = []
    n = min_pages
    while n <= max_pages:
        sizes.append(n * stride)
        n *= 2
    cycles = [
        float(
            np.mean(
                [
                    backend.traversal_cycles([(core, size)], stride)[core]
                    for _ in range(samples)
                ]
            )
        )
        for size in sizes
    ]
    mres = McalibratorResult(
        sizes=np.array(sizes), cycles=np.array(cycles), stride=stride, core=core
    )

    # Page counts at which a cache's capacity bites under this probe.
    cache_cliffs = [cs // LINE_SIZE for cs in cache_sizes]
    gradients = mres.gradients
    discounted: list[tuple[int, int]] = []
    discounted_delta: dict[int, float] = {}
    candidates: list[int] = []
    # Worklist: a region whose dominant jump is a cache artifact may
    # still hide the TLB cliff in its remainder (e.g. a 1024-entry TLB
    # right next to a 512-line L1 capacity cliff), so split at the
    # discounted peak and keep looking.
    worklist = [(lo, hi, lo, hi) for lo, hi in _gradient_regions(gradients)]
    while worklist:
        lo, hi, lo_bound, hi_bound = worklist.pop(0)
        if lo > hi:
            continue
        xlo, xhi = _extend_region(gradients, lo, hi, lo_bound, hi_bound)
        if mres.cycles[xhi + 1] / mres.cycles[xlo] < MIN_RISE:
            continue
        peak = int(np.argmax(gradients[lo : hi + 1])) + lo
        if gradients[peak] < MIN_RISE:
            continue  # remainder too weak to be a TLB cliff
        pages_at_peak = int(mres.sizes[peak]) // stride
        if any(cliff / 1.5 <= pages_at_peak <= cliff * 1.5
               for cliff in cache_cliffs):
            discounted.append((peak, peak))
            discounted_delta[peak] = float(
                mres.cycles[peak + 1] - mres.cycles[peak]
            )
            worklist.insert(0, (lo, peak - 1, lo_bound, peak - 1))
            worklist.insert(1, (peak + 1, hi, peak + 1, hi_bound))
            continue
        # A candidate right next to a discounted cache cliff can be the
        # *foot* of that same transition (the probe's page numbers are
        # not perfectly consecutive, so a sliver of conflicts precedes
        # the exact capacity).  A real TLB cliff carries a page-walk's
        # worth of cycles; a foot carries a small fraction of the main
        # jump.  Require a comparable delta before believing it.
        delta = float(mres.cycles[peak + 1] - mres.cycles[peak])
        neighbour = next(
            (d for p, d in discounted_delta.items() if abs(p - peak) == 1), None
        )
        if neighbour is not None and delta < 0.25 * neighbour:
            continue
        candidates.append(pages_at_peak)
    return TLBDetection(
        entries=min(candidates) if candidates else None,
        mcalibrator=mres,
        discounted_regions=discounted,
    )
