"""The mcalibrator micro-benchmark (paper Fig. 1).

Traverses arrays of growing size with a 1 KB stride and records the
average number of cycles per access.  The 1 KB stride is load-bearing
(Section III-A): it exceeds any hardware prefetcher's reach (256-512 B),
exceeds every cache line, and divides every cache size.  Array sizes
double from ``MIN_CACHE`` up to 2 MB and then grow by 1 MB steps up to
``MAX_CACHE``, exactly as in the pseudo-code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backends.base import Backend
from ..errors import MeasurementError
from ..planner.plan import TraversalProbe, probe_id
from ..units import KiB, MiB, format_size

#: Paper constants (Fig. 1): probe range and stride.
MIN_CACHE: int = 1 * KiB
MAX_CACHE: int = 32 * MiB
STRIDE: int = 1 * KiB


def default_sizes(
    min_cache: int = MIN_CACHE,
    max_cache: int = MAX_CACHE,
) -> list[int]:
    """The Fig. 1 size schedule: double to 2 MB, then +1 MB steps."""
    if min_cache <= 0 or max_cache < min_cache:
        raise MeasurementError(
            f"invalid probe range [{min_cache}, {max_cache}]"
        )
    sizes: list[int] = []
    size = min_cache
    while size <= max_cache:
        sizes.append(size)
        if size < 2 * MiB:
            size *= 2
        else:
            size += 1 * MiB
    return sizes


@dataclass
class McalibratorResult:
    """The S and C output arrays of Fig. 1 (sizes and cycles/access)."""

    sizes: np.ndarray
    cycles: np.ndarray
    stride: int
    core: int
    #: Deterministic probe IDs, one per size (sample 0 representative of
    #: the averaged repeats) — the handles provenance records point at.
    probe_ids: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        self.cycles = np.asarray(self.cycles, dtype=np.float64)
        if self.sizes.shape != self.cycles.shape or self.sizes.ndim != 1:
            raise MeasurementError("sizes and cycles must be equal-length vectors")
        if len(self.sizes) < 2:
            raise MeasurementError("mcalibrator needs at least two sizes")
        if not np.all(np.diff(self.sizes) > 0):
            raise MeasurementError("sizes must be strictly increasing")
        if not np.all(np.isfinite(self.cycles)) or np.any(self.cycles <= 0):
            raise MeasurementError(
                "cycle measurements must be finite and positive (a broken "
                "timer or backend produced garbage)"
            )

    @property
    def gradients(self) -> np.ndarray:
        """``C[k+1] / C[k]`` for ``0 <= k < n-1`` (Fig. 2b metric)."""
        return self.cycles[1:] / self.cycles[:-1]

    def slice(self, lo: int, hi: int) -> "McalibratorResult":
        """Sub-result over index range ``[lo, hi)`` (for local analysis)."""
        return McalibratorResult(
            sizes=self.sizes[lo:hi],
            cycles=self.cycles[lo:hi],
            stride=self.stride,
            core=self.core,
            probe_ids=self.probe_ids[lo:hi],
        )

    def table(self) -> list[tuple[str, float, float]]:
        """Rows ``(size, cycles, gradient)`` for pretty-printing."""
        grads = self.gradients
        rows = []
        for i, (size, cyc) in enumerate(zip(self.sizes, self.cycles)):
            grad = float(grads[i]) if i < len(grads) else float("nan")
            rows.append((format_size(int(size)), float(cyc), grad))
        return rows


def run_mcalibrator(
    backend: Backend,
    core: int = 0,
    min_cache: int = MIN_CACHE,
    max_cache: int = MAX_CACHE,
    stride: int = STRIDE,
    samples: int = 5,
) -> McalibratorResult:
    """Run the Fig. 1 loop on ``core`` and return (S, C).

    ``stride`` is exposed for the prefetcher ablation; production use
    should keep the 1 KB default for the reasons above.

    ``samples`` fresh allocations are measured per size and averaged:
    on a physically indexed cache the conflict pattern depends on the
    random page placement of the run, so a single allocation is a
    one-draw sample of the binomial model the detector fits.
    """
    if samples < 1:
        raise MeasurementError("samples must be >= 1")
    sizes = default_sizes(min_cache, max_cache)
    cycles = []
    probe_ids = []
    for size in sizes:
        # Small allocations cover few pages, so the conflict-miss rate
        # of a single random placement has huge variance (one crowded
        # color dominates).  Scale the sample count to keep the total
        # number of page placements per point roughly constant.
        n_pages = max(1, size // backend.page_size)
        n_samples = samples * min(8, max(1, -(-64 // n_pages)))
        probe_ids.append(probe_id(TraversalProbe(((core, size),), stride, 0)))
        cycles.append(
            float(
                np.mean(
                    [
                        backend.traversal_cycles([(core, size)], stride)[core]
                        for _ in range(n_samples)
                    ]
                )
            )
        )
    return McalibratorResult(
        sizes=np.array(sizes),
        cycles=np.array(cycles),
        stride=stride,
        core=core,
        probe_ids=probe_ids,
    )
