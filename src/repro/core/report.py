"""The Servet report: the file autotuned applications consult.

The paper (Section IV-E): the benchmarks "must be run only once at
installation time ... the information obtained can be stored in a file
to be consulted by the applications to guide optimizations when
needed".  :class:`ServetReport` is that file — a JSON-serializable
summary of everything the suite measured.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import ReproError
from ..ioutils import atomic_write_text
from ..topology.machine import CorePair
from ..units import format_bandwidth, format_size, format_time


def _pairs_to_json(pairs: list[CorePair]) -> list[list[int]]:
    return [list(p) for p in pairs]


def _pairs_from_json(raw: list[list[int]]) -> list[CorePair]:
    return [(int(a), int(b)) for a, b in raw]


@dataclass
class CacheLevelReport:
    """One detected cache level and which cores share it."""

    level: int
    size: int
    method: str
    shared_pairs: list[CorePair] = field(default_factory=list)
    sharing_groups: list[list[int]] = field(default_factory=list)
    #: Associativity, when the probabilistic fit produced one (a free
    #: by-product of the Fig. 3 algorithm; None for positional levels).
    ways: int | None = None

    @property
    def private(self) -> bool:
        """True when no pair shares this level."""
        return not self.shared_pairs


@dataclass
class MemoryLevelReport:
    """One memory-overhead level (BW[i] / Pm[i] / groups / curve)."""

    bandwidth: float
    pairs: list[CorePair]
    groups: list[list[int]]
    scalability: list[float] = field(default_factory=list)


@dataclass
class CommLayerReport:
    """One communication layer with its characterization."""

    index: int
    latency: float
    pairs: list[CorePair]
    #: (message size, latency seconds, bandwidth bytes/s)
    characterization: list[tuple[int, float, float]] = field(default_factory=list)
    #: (concurrent messages, worst latency seconds, slowdown factor)
    scalability: list[tuple[int, float, float]] = field(default_factory=list)

    def estimate_latency(self, nbytes: int) -> float:
        """Latency estimate for any message size on this layer.

        Linear interpolation of the characterization sweep; beyond the
        sweep the last observed bandwidth extrapolates.  This is the
        lookup an autotuned code performs before choosing between
        communication alternatives (Section III-D).
        """
        curve = self.characterization
        if not curve:
            return self.latency
        if nbytes <= curve[0][0]:
            return curve[0][1]
        for (s0, t0, _), (s1, t1, _) in zip(curve, curve[1:]):
            if s0 <= nbytes <= s1:
                frac = (nbytes - s0) / (s1 - s0)
                return t0 + frac * (t1 - t0)
        s_last, t_last, _ = curve[-1]
        return t_last * nbytes / s_last

    def slowdown_at(self, n_messages: int) -> float:
        """Concurrency slowdown factor for ``n_messages`` in this layer.

        Interpolates the measured scalability curve (1.0 when no curve
        was recorded — a perfectly scalable layer).
        """
        curve = self.scalability
        if not curve or n_messages <= 1:
            return 1.0
        if n_messages <= curve[0][0]:
            # Between 1 message (factor 1.0) and the first sample.
            n0, _, f0 = curve[0]
            return 1.0 + (f0 - 1.0) * (n_messages - 1) / max(n0 - 1, 1)
        for (n0, _, f0), (n1, _, f1) in zip(curve, curve[1:]):
            if n0 <= n_messages <= n1:
                frac = (n_messages - n0) / (n1 - n0)
                return f0 + frac * (f1 - f0)
        # Beyond the sweep: extrapolate the last linear segment.
        if len(curve) >= 2:
            (n0, _, f0), (n1, _, f1) = curve[-2], curve[-1]
            slope = (f1 - f0) / (n1 - n0)
            return f1 + slope * (n_messages - n1)
        n1, _, f1 = curve[-1]
        return f1 * n_messages / n1


@dataclass
class ServetReport:
    """Everything Servet measured about one system."""

    system: str
    n_cores: int
    page_size: int
    caches: list[CacheLevelReport] = field(default_factory=list)
    memory_reference: float = 0.0
    memory_levels: list[MemoryLevelReport] = field(default_factory=list)
    comm_probe_size: int = 0
    comm_layers: list[CommLayerReport] = field(default_factory=list)
    #: Detected TLB entry count (extension); None when no unambiguous
    #: TLB pressure was visible in the probed range.
    tlb_entries: int | None = None
    #: benchmark name -> (virtual seconds, wall seconds)
    timings: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: phase name -> ``ok | degraded | failed | skipped`` (empty for
    #: reports written before the resilience layer existed).
    phase_status: dict[str, str] = field(default_factory=dict)
    #: phase name -> captured error message (failed phases only).
    phase_errors: dict[str, str] = field(default_factory=dict)
    #: Measurement-planner accounting: probes issued vs saved by
    #: memoization and symmetry pruning, plus the prune/jobs
    #: configuration (empty for runs without a planner).
    planner: dict = field(default_factory=dict)
    #: Parameter path -> provenance record (probe IDs + measurements
    #: that justified the detected value); see
    #: :mod:`repro.obs.provenance` and ``servet explain``.  Empty for
    #: reports written before the observability layer.
    provenance: dict = field(default_factory=dict)

    # -- degraded-mode queries ----------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when any phase was degraded or failed.

        Structurally ``skipped`` phases (e.g. communication on a
        unicore system) do not taint the run by themselves — their
        upstream failure, if any, already does.
        """
        return any(
            status in ("degraded", "failed")
            for status in self.phase_status.values()
        )

    @property
    def failed_phases(self) -> list[str]:
        """Phases that failed outright (their report sections hold
        fallbacks or are empty)."""
        return [p for p, s in self.phase_status.items() if s == "failed"]

    def phase_ok(self, name: str) -> bool:
        """True when ``name`` ran cleanly (unknown phases count as ok,
        for compatibility with pre-resilience reports)."""
        return self.phase_status.get(name, "ok") == "ok"

    # -- convenience queries (the autotuning API surface) ------------------

    @property
    def cache_sizes(self) -> list[int]:
        """Detected cache sizes, L1 first."""
        return [c.size for c in self.caches]

    def cache_sharing_group(self, core: int, level: int) -> list[int]:
        """Cores sharing cache ``level`` with ``core`` (incl. itself)."""
        for cache in self.caches:
            if cache.level == level:
                group = {core}
                for a, b in cache.shared_pairs:
                    if core in (a, b):
                        group.update((a, b))
                return sorted(group)
        raise ReproError(f"report has no cache level {level}")

    def comm_layer_of(self, a: int, b: int) -> CommLayerReport:
        """The communication layer serving the pair ``(a, b)``."""
        key = (a, b) if a < b else (b, a)
        for layer in self.comm_layers:
            if key in layer.pairs:
                return layer
        raise ReproError(f"no communication layer recorded for pair {key}")

    def memory_level_of(self, a: int, b: int) -> MemoryLevelReport | None:
        """The overhead level of the pair, or None (no contention)."""
        key = (a, b) if a < b else (b, a)
        for level in self.memory_levels:
            if key in level.pairs:
                return level
        return None

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        data = asdict(self)
        for cache in data["caches"]:
            cache["shared_pairs"] = _pairs_to_json(cache["shared_pairs"])
        for level in data["memory_levels"]:
            level["pairs"] = _pairs_to_json(level["pairs"])
        for layer in data["comm_layers"]:
            layer["pairs"] = _pairs_to_json(layer["pairs"])
            layer["characterization"] = [list(t) for t in layer["characterization"]]
            layer["scalability"] = [list(t) for t in layer["scalability"]]
        data["timings"] = {k: list(v) for k, v in data["timings"].items()}
        return data

    def measurement_dict(self) -> dict:
        """The measured content only — no cost accounting.

        Strips :attr:`timings`, :attr:`planner` and :attr:`provenance`
        from :meth:`to_dict`.  A symmetry-pruned run is *supposed* to
        be cheaper (different timings, different probe counts, a
        different evidence trail) while producing the same
        measurements; this is the dictionary two such runs are compared
        on.
        """
        data = self.to_dict()
        data.pop("timings", None)
        data.pop("planner", None)
        data.pop("provenance", None)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServetReport":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                system=data["system"],
                n_cores=int(data["n_cores"]),
                page_size=int(data["page_size"]),
                caches=[
                    CacheLevelReport(
                        level=int(c["level"]),
                        size=int(c["size"]),
                        method=c["method"],
                        shared_pairs=_pairs_from_json(c["shared_pairs"]),
                        sharing_groups=[[int(x) for x in g] for g in c["sharing_groups"]],
                        ways=None if c.get("ways") is None else int(c["ways"]),
                    )
                    for c in data["caches"]
                ],
                memory_reference=float(data["memory_reference"]),
                memory_levels=[
                    MemoryLevelReport(
                        bandwidth=float(m["bandwidth"]),
                        pairs=_pairs_from_json(m["pairs"]),
                        groups=[[int(x) for x in g] for g in m["groups"]],
                        scalability=[float(x) for x in m["scalability"]],
                    )
                    for m in data["memory_levels"]
                ],
                comm_probe_size=int(data["comm_probe_size"]),
                comm_layers=[
                    CommLayerReport(
                        index=int(l["index"]),
                        latency=float(l["latency"]),
                        pairs=_pairs_from_json(l["pairs"]),
                        characterization=[
                            (int(s), float(t), float(bw))
                            for s, t, bw in l["characterization"]
                        ],
                        scalability=[
                            (int(n), float(t), float(f)) for n, t, f in l["scalability"]
                        ],
                    )
                    for l in data["comm_layers"]
                ],
                tlb_entries=(
                    None
                    if data.get("tlb_entries") is None
                    else int(data["tlb_entries"])
                ),
                timings={
                    k: (float(v[0]), float(v[1]))
                    for k, v in data.get("timings", {}).items()
                },
                phase_status={
                    str(k): str(v)
                    for k, v in data.get("phase_status", {}).items()
                },
                phase_errors={
                    str(k): str(v)
                    for k, v in data.get("phase_errors", {}).items()
                },
                planner=dict(data.get("planner", {})),
                provenance=dict(data.get("provenance", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed report data: {exc}") from exc

    def save(self, path: str | Path) -> None:
        """Write the report as JSON, atomically.

        The same temp-file-then-rename helper the report registry uses
        (:func:`repro.ioutils.atomic_write_text`): a crash mid-save can
        never leave a truncated report where a good one used to be.
        """
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "ServetReport":
        """Read a report saved by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- presentation --------------------------------------------------------

    def summary(self) -> str:
        """Human-readable report (the CLI's ``servet report`` output)."""
        lines = [f"Servet report for {self.system} ({self.n_cores} cores)"]
        lines.append("Cache hierarchy:")
        for cache in self.caches:
            sharing = (
                "private"
                if cache.private
                else f"shared, groups {cache.sharing_groups}"
            )
            lines.append(
                f"  L{cache.level}: {format_size(cache.size)} "
                f"[{cache.method}] ({sharing})"
            )
        if self.tlb_entries is not None:
            lines.append(f"TLB: {self.tlb_entries} entries")
        lines.append(
            f"Memory: reference {format_bandwidth(self.memory_reference)}, "
            f"{len(self.memory_levels)} overhead level(s)"
        )
        for i, level in enumerate(self.memory_levels):
            lines.append(
                f"  level {i}: {format_bandwidth(level.bandwidth)} "
                f"({len(level.pairs)} pairs, groups {level.groups})"
            )
        lines.append(
            f"Communication: {len(self.comm_layers)} layer(s) at probe size "
            f"{format_size(self.comm_probe_size)}"
        )
        for layer in self.comm_layers:
            lines.append(
                f"  layer {layer.index}: {format_time(layer.latency)} "
                f"({len(layer.pairs)} pairs)"
            )
        if self.degraded:
            lines.append("Phase status (degraded run):")
            for phase, status in self.phase_status.items():
                note = ""
                if phase in self.phase_errors:
                    note = f" — {self.phase_errors[phase]}"
                lines.append(f"  {phase}: {status}{note}")
        if self.planner:
            issued = self.planner.get("issued", 0)
            saved = self.planner.get("saved", 0)
            detail = []
            if self.planner.get("prune"):
                detail.append(f"prune={self.planner['prune']}")
            if self.planner.get("jobs"):
                detail.append(f"jobs={self.planner['jobs']}")
            suffix = f" [{', '.join(detail)}]" if detail else ""
            lines.append(
                f"Planner: {issued} measurement(s) issued, {saved} "
                f"saved{suffix}"
            )
        if self.provenance:
            lines.append(
                f"Provenance: {len(self.provenance)} parameter(s) with "
                "evidence trails (see `servet explain`)"
            )
        if self.timings:
            lines.append("Benchmark execution times (virtual):")
            for name, (virtual, wall) in self.timings.items():
                lines.append(
                    f"  {name}: {format_time(virtual)} "
                    f"(wall {format_time(wall)})"
                )
        return "\n".join(lines)
