"""Probabilistic size detection for physically indexed caches (Fig. 3).

Under an OS without page coloring, the cache sets a virtual page can
occupy are effectively random.  For a K-way cache of size CS with page
size PS there are ``CS/(K*PS)`` *page sets* (colors); the number of
pages X landing in one color follows ``B(NP, K*PS/CS)``, and any color
holding more than K pages thrashes, so the expected steady-state miss
rate is ``P(X > K)``.

The algorithm normalizes the measured cycles into miss rates, computes
the divergence ``sum |MR_measured - P(X > K)|`` for every tentative
``(CS, K)``, and returns the statistical mode of CS over the five
lowest-divergence entries — exactly the Fig. 3 pseudo-code.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import stats

from ..errors import DetectionError
from ..units import KiB, MiB

#: Associativities tried by default; covers the paper's machines
#: (including the 9-way Itanium2 L3 and 24-way Dunnington L3).
DEFAULT_ASSOCIATIVITIES: tuple[int, ...] = (2, 4, 8, 9, 12, 16, 18, 24, 32)


def default_candidates(max_size: int) -> list[int]:
    """Tentative cache sizes.

    Real caches come in coarse steps, and matching the grid to that
    prior sharpens the mode vote: 256 KB multiples up to 8 MB (plus
    sub-256 KB powers of two for small L2s), whole megabytes beyond
    (large L3s ship as 9, 12, 16, 24 MB — never 16.25 MB).
    """
    out = {size for size in (32 * KiB, 64 * KiB, 128 * KiB)}
    size = 256 * KiB
    while size <= min(8 * MiB, 2 * max_size + 256 * KiB):
        out.add(size)
        size += 256 * KiB
    size = 9 * MiB
    while size <= 2 * max_size + MiB:
        out.add(size)
        size += 1 * MiB
    return sorted(out)


@dataclass
class ProbabilisticEstimate:
    """Outcome of the Fig. 3 algorithm."""

    #: The estimated cache size (mode of the best candidates).
    size: int
    #: Associativity of the single best-scoring entry (bonus info the
    #: paper does not report but the algorithm produces for free).
    associativity: int
    #: The five lowest-divergence (size, ways, divergence) entries.
    best_entries: list[tuple[int, int, float]]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProbabilisticEstimate(size={self.size}, K={self.associativity})"


def predicted_miss_rate(
    n_pages: np.ndarray,
    ways: int,
    p: float,
    size_biased: bool = True,
) -> np.ndarray:
    """Expected steady-state miss rate of the page-conflict model.

    The paper's Fig. 3 uses ``P(X > K)`` with ``X ~ B(NP, p)`` — the
    probability that a *color* is overloaded.  But the measured miss
    rate is the fraction of *pages* in overloaded colors, and a page is
    more likely to land in a crowded color (size-biased sampling).  The
    exact expectation is

        E[X * 1(X > K)] / E[X] = P(B(NP - 1, p) >= K),

    which is what the simulated (and a real) machine produces; the
    refinement is documented in DESIGN.md.  Pass ``size_biased=False``
    to recover the paper's original formula (the ablation benchmark
    compares both).
    """
    n_pages = np.asarray(n_pages, dtype=np.float64)
    if size_biased:
        return _binom_sf_shared(
            ways - 1, np.maximum(n_pages - 1, 0).tobytes(), len(n_pages), float(p)
        )
    return _binom_sf_shared(ways, n_pages.tobytes(), len(n_pages), float(p))


@lru_cache(maxsize=4096)
def _binom_sf_shared(k: int, n_bytes: bytes, n_len: int, p: float) -> np.ndarray:
    """Memoized, read-only ``binom.sf`` tail over a page-count vector.

    The detection loop evaluates the same (window, ways, p) triple for
    every candidate revisit — and warm re-runs repeat all of them — so
    the scipy call (the priciest pure-python piece of detection) is
    keyed on the raw vector bytes and shared.
    """
    n = np.frombuffer(n_bytes, dtype=np.float64, count=n_len)
    out = stats.binom.sf(k, n, p)
    out.setflags(write=False)
    return out


def _affine_divergence(
    cycles: np.ndarray, predicted: np.ndarray
) -> float | None:
    """Divergence after a least-squares affine fit, in common units.

    Fits ``cycles ~ hit_time + miss_overhead * predicted`` and returns
    the summed absolute residual scaled by the window's cycle range, so
    every candidate is judged on the same scale (dividing by the fitted
    ``miss_overhead`` instead would let flat-ish predictions win with an
    arbitrarily large fitted scale).  ``None`` marks a degenerate
    candidate: a flat prediction, or a non-positive fitted overhead (the
    cycles would have to *drop* with rising miss rate).
    """
    pred_var = float(np.var(predicted))
    if pred_var < 1e-12:
        return None
    cov = float(np.mean((cycles - cycles.mean()) * (predicted - predicted.mean())))
    miss_overhead = cov / pred_var
    if miss_overhead <= 0:
        return None
    hit_time = float(cycles.mean()) - miss_overhead * float(predicted.mean())
    residual = cycles - (hit_time + miss_overhead * predicted)
    scale = float(cycles.max() - cycles.min())
    return float(np.abs(residual).sum()) / scale


def probabilistic_cache_size(
    sizes: np.ndarray,
    cycles: np.ndarray,
    page_size: int,
    candidates: list[int] | None = None,
    associativities: tuple[int, ...] = DEFAULT_ASSOCIATIVITIES,
    mode_pool: int = 5,
    size_biased: bool = True,
    affine_fit: bool = True,
    weighted_mode: bool = True,
) -> ProbabilisticEstimate:
    """Estimate a physically indexed cache's size from mcalibrator data.

    ``sizes``/``cycles`` should span one rise of the cycles curve, from
    the plateau before it to the plateau after it (the Fig. 4 driver
    selects that window); MIN/MAX-based miss-rate normalization assumes
    those plateaus are present.

    With ``affine_fit`` (default) the hit time and miss overhead are
    fitted per candidate by least squares instead of being read off the
    window's min/max cycles.  The paper's min/max normalization assumes
    the window's endpoints sit exactly on the 0 %- and 100 %-miss
    plateaus; when the window clips a smeared rise, that compresses the
    measured curve and biases the fit towards steeper (higher-K,
    smaller-CS) candidates.  The affine fit removes that bias; the
    ablation benchmark compares both variants.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    cycles = np.asarray(cycles, dtype=np.float64)
    if sizes.shape != cycles.shape or sizes.ndim != 1 or len(sizes) < 3:
        raise DetectionError(
            "probabilistic algorithm needs >= 3 (size, cycles) points"
        )
    if page_size <= 0:
        raise DetectionError("page size must be positive")

    hit_time = float(cycles.min())
    miss_overhead = float(cycles.max()) - hit_time
    if miss_overhead <= 0:
        raise DetectionError("cycles curve is flat; no miss overhead to model")
    miss_rate = np.clip((cycles - hit_time) / miss_overhead, 0.0, 1.0)
    n_pages = np.maximum(np.round(sizes / page_size), 1.0)

    if candidates is None:
        candidates = default_candidates(int(sizes.max()))

    divergences: list[tuple[float, int, int]] = []
    for cache_size in candidates:
        for ways in associativities:
            color_bytes = ways * page_size
            if cache_size % color_bytes != 0:
                continue
            colors = cache_size // color_bytes
            if colors < 1:
                continue
            p = 1.0 / colors
            predicted = predicted_miss_rate(n_pages, ways, p, size_biased)
            if affine_fit:
                maybe_div = _affine_divergence(cycles, predicted)
                if maybe_div is None:
                    continue
                div = maybe_div
            else:
                div = float(np.abs(miss_rate - predicted).sum())
            divergences.append((div, cache_size, ways))
    if not divergences:
        raise DetectionError("no admissible (size, associativity) candidates")

    divergences.sort()
    pool = divergences[: min(mode_pool, len(divergences))]
    # Select the winning size from the pool.  The paper takes the
    # statistical mode of CS over the five lowest entries; empirically
    # (see the model-variant ablation) that lets a noise-shifted size
    # admissible under several associativities outvote the clearly
    # best-fitting size through multiplicity alone.  The default
    # therefore scores each *distinct* size once — by its best entry,
    # weighted by the squared ratio to the pool's best divergence — and
    # picks the top score; ``weighted_mode=False`` restores the
    # verbatim counting rule.
    counts: dict[int, float] = {}
    best_div: dict[int, float] = {}
    pool_best = max(pool[0][0], 1e-12)
    for div, cache_size, _ in pool:
        best_div[cache_size] = min(best_div.get(cache_size, np.inf), div)
        if weighted_mode:
            counts[cache_size] = (pool_best / max(best_div[cache_size], 1e-12)) ** 2
        else:
            counts[cache_size] = counts.get(cache_size, 0.0) + 1.0
    winner = min(counts, key=lambda cs: (-counts[cs], best_div[cs]))
    winner_ways = next(w for d, cs, w in pool if cs == winner)
    return ProbabilisticEstimate(
        size=int(winner),
        associativity=int(winner_ways),
        best_entries=[(cs, w, d) for d, cs, w in pool],
    )
