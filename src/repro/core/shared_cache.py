"""Shared-cache topology detection (paper Fig. 5).

For each detected cache level of size CS, run mcalibrator on one core
with an array of ``(2/3) * CS`` (a little over half the cache) as the
reference, then on every pair of cores simultaneously with one such
array each.  Two arrays do not fit together, so cores sharing the cache
keep evicting each other: a cycles ratio above 2 versus the reference
marks the pair as sharing that level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..backends.base import Backend
from ..errors import MeasurementError
from ..obs.provenance import ParameterProvenance
from ..planner import PlanExecutor, TraversalProbe, probe_id
from ..topology.machine import CorePair, all_pairs
from .mcalibrator import STRIDE

#: The Fig. 5 decision threshold on ``c / ref``.
RATIO_THRESHOLD: float = 2.0


@dataclass
class SharedCacheResult:
    """Per-level shared-cache pairs plus the measured ratios."""

    #: Cache sizes probed, L1 first (input CS array of Fig. 5).
    cache_sizes: list[int]
    #: Psc of Fig. 5: for each level, the pairs whose ratio exceeded 2.
    shared_pairs: list[list[CorePair]]
    #: All measured ratios, for diagnostics and the Fig. 8 plots.
    ratios: list[dict[CorePair, float]] = field(default_factory=list)
    #: Reference cycles per level.
    references: list[float] = field(default_factory=list)
    #: Per-level evidence trails (``cache.L<n>.sharing``).
    provenance: list[ParameterProvenance] = field(default_factory=list)

    def pairs_with(self, core: int, level: int) -> list[CorePair]:
        """Pairs involving ``core`` sharing cache level ``level`` (1-based)."""
        return [p for p in self.shared_pairs[level - 1] if core in p]

    def sharing_group(self, core: int, level: int) -> list[int]:
        """All cores found to share level ``level`` with ``core``."""
        group = {core}
        for a, b in self.pairs_with(core, level):
            group.update((a, b))
        return sorted(group)


def detect_shared_caches(
    backend: Backend,
    cache_sizes: Sequence[int],
    cores: Sequence[int] | None = None,
    stride: int = STRIDE,
    ratio_threshold: float = RATIO_THRESHOLD,
    reference_core: int = 0,
    samples: int = 3,
    planner: PlanExecutor | None = None,
) -> SharedCacheResult:
    """Run the Fig. 5 algorithm.

    Parameters
    ----------
    backend:
        Measurement backend.
    cache_sizes:
        The CS array from cache-size detection, L1 first.
    cores:
        Cores to test pairwise (default: every core of the backend;
        the paper tests one node since caches never span nodes).
    samples:
        Fresh allocations averaged per measurement.  On a physically
        indexed cache the conflict miss rate at ``(2/3)*CS`` depends on
        the random page placement, so single-allocation ratios have
        heavy tails that can cross the threshold spuriously.
    planner:
        Measurement executor (pass-through by default).  The per-level
        single-core reference is emitted once through it and memoized,
        so every consumer of the same ``(core, size, stride, sample)``
        traversal — including a second level with the same array size,
        or a resumed run — reuses it instead of re-deriving the setup;
        the pairwise batch may additionally be symmetry-pruned.
    """
    if not cache_sizes:
        raise MeasurementError("need at least one cache level")
    if cores is None:
        cores = list(range(backend.n_cores))
    if len(cores) < 2:
        # A unicore machine shares nothing; keep the shape consistent
        # and leave an explicit give-up trail instead of silence.
        return SharedCacheResult(
            cache_sizes=list(cache_sizes),
            shared_pairs=[[] for _ in cache_sizes],
            ratios=[{} for _ in cache_sizes],
            references=[float("nan") for _ in cache_sizes],
            provenance=[
                ParameterProvenance(
                    parameter=f"cache.L{level}.sharing",
                    value=None,
                    method="undetectable",
                    probes=[],
                    measurements={},
                    note=(
                        "undetectable: sharing needs at least two cores "
                        f"({len(cores)} available)"
                    ),
                )
                for level in range(1, len(cache_sizes) + 1)
            ],
        )

    executor = planner if planner is not None else PlanExecutor(backend)
    shared_pairs: list[list[CorePair]] = []
    ratios: list[dict[CorePair, float]] = []
    references: list[float] = []
    provenance: list[ParameterProvenance] = []
    pairs = all_pairs(list(cores))
    for level_idx, cache_size in enumerate(cache_sizes, start=1):
        array_bytes = (2 * cache_size) // 3
        ref = executor.traversal_reference(
            reference_core, array_bytes, stride, samples=samples
        )

        def pair_probe(pair: CorePair, sample: int) -> TraversalProbe:
            a, b = pair
            return TraversalProbe(
                arrays=((a, array_bytes), (b, array_bytes)),
                stride=stride,
                sample=sample,
            )

        def pair_cycles(pair: CorePair, raws: list) -> float:
            # "Cycles obtained from mcalibrator run in parallel on the
            # cores of the pair": the pair's cost is what either core
            # experiences; take the mean of the two, then average the
            # fresh-allocation samples.
            a, b = pair
            observations = [(raw[a] + raw[b]) / 2.0 for raw in raws]
            return float(sum(observations)) / len(observations)

        level_cycles = executor.pairwise(
            pairs, probe_factory=pair_probe, value=pair_cycles, samples=samples
        )
        level_ratios: dict[CorePair, float] = {}
        level_shared: list[CorePair] = []
        for pair in pairs:
            ratio = level_cycles[pair] / ref
            level_ratios[pair] = ratio
            if ratio > ratio_threshold:
                level_shared.append(pair)
        shared_pairs.append(level_shared)
        ratios.append(level_ratios)
        references.append(ref)
        ref_pid = probe_id(
            TraversalProbe(((reference_core, array_bytes),), stride, 0)
        )
        measurements = {ref_pid: float(ref)}
        probes = [ref_pid]
        for pair in pairs:
            pid = probe_id(pair_probe(pair, 0))
            probes.append(pid)
            measurements[pid] = float(level_ratios[pair])
        provenance.append(
            ParameterProvenance(
                parameter=f"cache.L{level_idx}.sharing",
                value=[list(p) for p in level_shared],
                method="ratio-threshold",
                probes=probes,
                measurements=measurements,
                note=(
                    f"pairwise cycles / reference > {ratio_threshold} marks "
                    f"sharing; arrays of {array_bytes} B (2/3 of "
                    f"{cache_size} B); reference probe listed first "
                    "(cycles), pair probes carry ratios"
                ),
            )
        )
    return SharedCacheResult(
        cache_sizes=list(cache_sizes),
        shared_pairs=shared_pairs,
        ratios=ratios,
        references=references,
        provenance=provenance,
    )
