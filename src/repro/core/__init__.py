"""Servet benchmark algorithms (the paper's contribution).

Every algorithm here is implemented from the paper's pseudo-code
figures and consumes only the :class:`repro.backends.Backend`
measurement interface:

- Fig. 1  -> :func:`mcalibrator.run_mcalibrator`
- Fig. 3  -> :func:`probabilistic.probabilistic_cache_size`
- Fig. 4  -> :func:`cache_size.detect_cache_levels`
- Fig. 5  -> :func:`shared_cache.detect_shared_caches`
- Fig. 6  -> :func:`memory_overhead.characterize_memory_overhead`
- Fig. 7  -> :func:`comm_costs.detect_comm_layers` (+ characterization
  and scalability, Section III-D)

:class:`suite.ServetSuite` orchestrates the full run and produces a
:class:`report.ServetReport` that autotuned applications consume.
"""

from .clustering import cluster_similar, groups_from_pairs, SimilarityCluster
from .mcalibrator import McalibratorResult, default_sizes, run_mcalibrator
from .probabilistic import ProbabilisticEstimate, probabilistic_cache_size
from .cache_size import CacheLevelEstimate, CacheDetectionResult, detect_cache_levels
from .shared_cache import SharedCacheResult, detect_shared_caches
from .memory_overhead import (
    MemoryOverheadResult,
    OverheadLevel,
    characterize_memory_overhead,
    memory_scalability,
)
from .comm_costs import (
    CommLayer,
    CommCostsResult,
    characterize_layers,
    detect_comm_layers,
    layer_scalability,
)
from .tlb import TLBDetection, detect_tlb_entries
from .report import ServetReport
from .suite import ServetSuite, SuiteTimings

__all__ = [
    "cluster_similar",
    "groups_from_pairs",
    "SimilarityCluster",
    "McalibratorResult",
    "default_sizes",
    "run_mcalibrator",
    "ProbabilisticEstimate",
    "probabilistic_cache_size",
    "CacheLevelEstimate",
    "CacheDetectionResult",
    "detect_cache_levels",
    "SharedCacheResult",
    "detect_shared_caches",
    "MemoryOverheadResult",
    "OverheadLevel",
    "characterize_memory_overhead",
    "memory_scalability",
    "CommLayer",
    "CommCostsResult",
    "characterize_layers",
    "detect_comm_layers",
    "layer_scalability",
    "TLBDetection",
    "detect_tlb_entries",
    "ServetReport",
    "ServetSuite",
    "SuiteTimings",
]
