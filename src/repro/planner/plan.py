"""Measurement plans: what to probe, not how or when.

The phase algorithms of :mod:`repro.core` historically issued blocking
:class:`~repro.backends.base.Backend` calls inline, which makes every
all-pairs stage O(n²) backend round-trips with no opportunity to
deduplicate, prune, or overlap them.  A :class:`MeasurementPlan` turns
each stage into data: a list of :class:`PlanStep` entries, each holding
one *probe* (a frozen, hashable description of a single backend
measurement) plus the probes it explicitly depends on.  The
:class:`~repro.planner.executor.PlanExecutor` consumes plans and
decides scheduling (serial and deterministic for simulated backends,
a worker pool for wall-clock-bound ones), memoization, and symmetry
pruning.

Probes are value objects: two probes compare equal iff they describe
the same measurement, which is exactly the memoization key.  The
``sample`` field distinguishes *intentional* repeats (robust-sampling
loops) from accidental duplicates — repeats carry distinct sample
indices and are never deduplicated against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Union

from ..errors import ConfigurationError
from ..ioutils import sha256_hex
from ..topology.machine import CorePair


@dataclass(frozen=True)
class TraversalProbe:
    """One (possibly concurrent) mcalibrator traversal measurement."""

    #: ``(core, array_bytes)`` per participating core, in call order.
    arrays: tuple[tuple[int, int], ...]
    stride: int
    sample: int = 0

    @property
    def cores(self) -> tuple[int, ...]:
        return tuple(core for core, _ in self.arrays)


@dataclass(frozen=True)
class StreamProbe:
    """STREAM-copy bandwidth with ``cores`` running concurrently."""

    cores: tuple[int, ...]
    sample: int = 0


@dataclass(frozen=True)
class MessageProbe:
    """Point-to-point latency between one pinned core pair."""

    pair: CorePair
    nbytes: int
    sample: int = 0

    @property
    def cores(self) -> tuple[int, ...]:
        return self.pair


@dataclass(frozen=True)
class ConcurrentMessageProbe:
    """Per-message latency with every pair exchanging simultaneously."""

    pairs: tuple[CorePair, ...]
    nbytes: int
    sample: int = 0

    @property
    def cores(self) -> tuple[int, ...]:
        return tuple(core for pair in self.pairs for core in pair)


Probe = Union[TraversalProbe, StreamProbe, MessageProbe, ConcurrentMessageProbe]

#: Probe kinds whose results are pairwise scalars or per-core dicts.
PROBE_KINDS: dict[type, str] = {
    TraversalProbe: "traversal",
    StreamProbe: "stream",
    MessageProbe: "message",
    ConcurrentMessageProbe: "concurrent_message",
}


def probe_kind(probe: Probe) -> str:
    """Short kind name of a probe (stats bucketing, error messages)."""
    try:
        return PROBE_KINDS[type(probe)]
    except KeyError:
        raise ConfigurationError(f"unknown probe type {type(probe).__name__}")


def probe_cores(probe: Probe) -> tuple[int, ...]:
    """Every core a probe pins work to (conflict detection for the
    wall-clock scheduler: probes sharing a core must not overlap)."""
    return probe.cores


@lru_cache(maxsize=65536)
def probe_id(probe: Probe) -> str:
    """Deterministic short identifier for a probe, e.g. ``message:3f2a...``.

    Probes are frozen value objects with deterministic dataclass reprs,
    so hashing the repr gives an ID that is stable across processes and
    runs — the handle provenance records and trace spans use to refer
    to the same measurement.  Memoized: the tracer asks for the ID of
    every issued probe, and the repr + sha256 round trip shows up at
    suite scale.
    """
    digest = sha256_hex(f"{probe_kind(probe)}|{probe!r}")
    return f"{probe_kind(probe)}:{digest[:12]}"


@dataclass(frozen=True)
class PlanStep:
    """One plan entry: a probe plus its explicit dependencies.

    ``after`` lists probes that must have completed before this one may
    run.  Dependencies exist for *measurement validity*, not dataflow:
    e.g. a contention probe that must not overlap the baseline it will
    be compared against.
    """

    probe: Probe
    after: tuple[Probe, ...] = ()


@dataclass
class MeasurementPlan:
    """An ordered batch of probes with explicit dependencies.

    Steps must be added dependencies-first; :meth:`add` enforces this so
    a plan is always a valid topological order and the serial executor
    can simply walk it front to back.
    """

    steps: list[PlanStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Incremental mirror of {step.probe for step in steps}: rebuilding
        # that set inside every add() made plan construction O(n²) — 15%
        # of an unpruned suite run, profiled.
        self._known: set[Probe] = {step.probe for step in self.steps}

    def add(self, probe: Probe, after: tuple[Probe, ...] = ()) -> Probe:
        """Append a probe (returns it, for chaining into ``after``)."""
        for dep in after:
            if dep not in self._known:
                raise ConfigurationError(
                    f"dependency {dep!r} must be added to the plan before "
                    f"the probe that needs it"
                )
        self.steps.append(PlanStep(probe=probe, after=tuple(after)))
        self._known.add(probe)
        return probe

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @property
    def probes(self) -> list[Probe]:
        return [step.probe for step in self.steps]
