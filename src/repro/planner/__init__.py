"""Measurement planner: plan → prune → execute.

Sits between the phase algorithms of :mod:`repro.core` and the
:class:`~repro.backends.base.Backend`.  The three pairwise topology
phases (shared caches, memory overhead, communication costs) emit
:class:`MeasurementPlan` batches instead of issuing blocking backend
calls inline; the :class:`PlanExecutor` deduplicates repeated probes,
prunes symmetric core pairs down to one representative per
topology-equivalence class, and overlaps independent probes for
wall-clock-bound backends — while keeping virtual-time accounting and
RNG streams deterministic for the simulated ones.

See DESIGN.md §6 ("Measurement planner") for the pipeline, determinism
guarantees, and when ``--jobs`` / ``--prune`` are safe.
"""

from .plan import (
    ConcurrentMessageProbe,
    MeasurementPlan,
    MessageProbe,
    PlanStep,
    Probe,
    StreamProbe,
    TraversalProbe,
    probe_cores,
    probe_id,
    probe_kind,
)
from .symmetry import (
    PRUNE_MODES,
    PairClass,
    TopologyClassifier,
    classifier_for,
    validate_prune_mode,
)
from .executor import VERIFY_TOLERANCE, PlanExecutor, PlannerStats

__all__ = [
    "ConcurrentMessageProbe",
    "MeasurementPlan",
    "MessageProbe",
    "PlanStep",
    "Probe",
    "StreamProbe",
    "TraversalProbe",
    "probe_cores",
    "probe_id",
    "probe_kind",
    "PRUNE_MODES",
    "PairClass",
    "TopologyClassifier",
    "classifier_for",
    "validate_prune_mode",
    "VERIFY_TOLERANCE",
    "PlanExecutor",
    "PlannerStats",
]
