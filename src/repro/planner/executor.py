"""The memoizing, pruning, (optionally) concurrent plan executor.

:class:`PlanExecutor` sits between the phase algorithms and the
:class:`~repro.backends.base.Backend`:

- **Memoization** — every probe result is cached under the probe's
  value identity, so repeated probes (the per-level reference
  traversals, a characterization sweep revisiting the layer-detection
  probe size, a re-measured isolated latency) are answered for free.
  Intentional repeat-sampling carries distinct ``sample`` indices and
  is never collapsed.
- **Symmetry pruning** — pairwise batches are partitioned into
  topology-equivalence classes (:mod:`repro.planner.symmetry`); one
  representative per class is measured and its result broadcast to the
  rest, turning O(n²) pairwise measurements into O(#classes).
  ``verify`` mode additionally measures one spot-check pair per class
  and falls back to full measurement when it diverges from the
  representative.
- **Scheduling** — for wall-clock-bound backends (``jobs > 1`` and
  ``backend.wall_clock_bound``) independent probes run on a worker
  pool, overlapping only probes whose core sets are disjoint (two
  measurements sharing a core would perturb each other).  Virtual-time
  backends always execute serially in plan order, so their RNG streams
  and virtual-time accounting stay deterministic regardless of
  ``jobs``.

Every decision is counted in :class:`PlannerStats` so the suite can
report measurements issued versus measurements saved.
"""

from __future__ import annotations

import time
from collections import Counter as _Multiset
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from contextlib import nullcontext
from collections.abc import Callable, Sequence

from ..backends.base import Backend, ConcurrentLatency
from ..errors import ConfigurationError, MeasurementTimeout
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from ..topology.machine import CorePair
from .plan import (
    ConcurrentMessageProbe,
    MeasurementPlan,
    MessageProbe,
    PlanStep,
    Probe,
    StreamProbe,
    TraversalProbe,
    probe_cores,
    probe_id,
    probe_kind,
)
from .symmetry import TopologyClassifier, classifier_for, validate_prune_mode

#: Relative disagreement between representative and spot check above
#: which ``verify`` mode distrusts a class and measures it in full.
#: Chosen just under the phase clustering tolerances (0.08–0.15), so a
#: divergence large enough to change clustering always trips it.
VERIFY_TOLERANCE: float = 0.05


class PlannerStats:
    """Counters of what the executor did (and did not have to do).

    The counts live in :class:`~repro.obs.metrics.Counter` instruments
    (names ``planner.issued`` etc.) inside a metrics registry — the
    same registry a suite run exports with ``--metrics`` — so the
    planner accounting in a report and the metrics document can never
    disagree.  The attribute interface (``stats.issued += 1``) is
    unchanged from the old dataclass.
    """

    #: issued — backend measurements actually performed;
    #: cache_hits — probes answered from the memo cache;
    #: pruned — pairwise probes answered by symmetry broadcast;
    #: spot_checks — verify-mode extras (also counted issued);
    #: verify_fallbacks — classes re-measured in full after divergence;
    #: pairwise_requested / pairwise_measured — asked-for vs reached-
    #: the-backend pairwise probes.
    #: probe_timeouts — pooled probes abandoned because they exceeded
    #: the per-future timeout (each is retried, then fails the plan).
    _COUNTERS = (
        "issued",
        "cache_hits",
        "pruned",
        "spot_checks",
        "verify_fallbacks",
        "pairwise_requested",
        "pairwise_measured",
        "probe_timeouts",
    )

    def __init__(self, registry: MetricsRegistry | None = None, **initial: int):
        self.registry = registry if registry is not None else MetricsRegistry()
        # Resolve the instruments once: the attribute interface is hit
        # several times per probe, and a registry lookup per access is
        # measurable at suite scale.
        self._instruments = {
            name: self.registry.counter(f"planner.{name}")
            for name in self._COUNTERS
        }
        unknown = set(initial) - set(self._COUNTERS)
        if unknown:
            raise ConfigurationError(f"unknown planner counters: {sorted(unknown)}")
        for name, value in initial.items():
            if value:
                self._instruments[name].inc(value)

    @property
    def saved(self) -> int:
        """Measurements avoided (cache hits + symmetry broadcasts)."""
        return self.cache_hits + self.pruned

    def as_dict(self) -> dict[str, int]:
        data = {name: getattr(self, name) for name in self._COUNTERS}
        data["saved"] = self.saved
        return data

    def merge(self, data: dict) -> None:
        """Add previously accumulated counters (checkpoint resume)."""
        for name in self._COUNTERS:
            increment = int(data.get(name, 0))
            if increment:
                self._instruments[name].inc(increment)


def _stats_counter(name: str) -> property:
    def _get(self: PlannerStats) -> int:
        return int(self._instruments[name].value)

    def _set(self: PlannerStats, value: int) -> None:
        self._instruments[name].set(value)

    return property(_get, _set)


for _name in PlannerStats._COUNTERS:
    setattr(PlannerStats, _name, _stats_counter(_name))
del _name


class PlanExecutor:
    """Execute measurement plans against a backend.

    Parameters
    ----------
    backend:
        The measurement backend (possibly wrapped by the resilience
        decorators; attribute delegation makes those transparent).
    prune:
        ``"off"`` | ``"topology"`` | ``"verify"`` — see the module
        docstring.  Topology modes require the backend to expose a
        ``cluster`` model (the simulated backends do).
    jobs:
        Worker-pool width for wall-clock-bound backends.  Ignored (a
        deliberate no-op, to keep results deterministic) for
        virtual-time backends.
    classifier:
        Override the pair classifier (tests inject adversarial ones).
    verify_tolerance:
        Relative representative/spot-check disagreement that triggers a
        full-measurement fallback in ``verify`` mode.
    tracer:
        Emit a ``probe`` span around every measurement that reaches the
        backend (None = no tracing overhead).
    metrics:
        Registry backing :attr:`stats` and the per-kind probe counters;
        a private registry is created when not given.
    probe_timeout:
        Wall seconds a *pooled* probe may run before it is abandoned
        (None disables the guard).  A native measurement that wedges —
        a stuck perf counter, a hung pinned process — would otherwise
        stall the whole plan at the next dependency or shared-core
        barrier.  On timeout the probe is recorded as failed
        (``planner.probe_timeouts``, plus a ``timeouts`` incident on
        backends that keep incident counters, so the suite marks the
        phase degraded) and re-dispatched up to ``timeout_retries``
        times before :class:`~repro.errors.MeasurementTimeout` aborts
        the plan.  Serial (virtual-time) execution ignores it: those
        backends cannot wedge, they only *simulate* hangs.
    timeout_retries:
        Fresh dispatch attempts granted to a timed-out probe before the
        plan gives up on it.
    """

    def __init__(
        self,
        backend: Backend,
        prune: str = "off",
        jobs: int = 1,
        classifier: TopologyClassifier | None = None,
        verify_tolerance: float = VERIFY_TOLERANCE,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        probe_timeout: float | None = None,
        timeout_retries: int = 2,
    ) -> None:
        self.backend = backend
        self.prune = validate_prune_mode(prune)
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = jobs
        if classifier is None and self.prune != "off":
            classifier = classifier_for(backend)
            if classifier is None:
                raise ConfigurationError(
                    f"prune={self.prune!r} needs a backend with a cluster "
                    "topology model; this backend has none (use prune='off')"
                )
        self.classifier = classifier
        if verify_tolerance <= 0:
            raise ConfigurationError("verify_tolerance must be > 0")
        self.verify_tolerance = verify_tolerance
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if probe_timeout is not None and probe_timeout <= 0:
            raise ConfigurationError("probe_timeout must be > 0 (or None)")
        self.probe_timeout = probe_timeout
        if timeout_retries < 0:
            raise ConfigurationError("timeout_retries must be >= 0")
        self.timeout_retries = timeout_retries
        self.stats = PlannerStats(registry=self.metrics)
        self._memo: dict[Probe, object] = {}
        self._issue_counters: dict[str, object] = {}

    # -- plan execution -----------------------------------------------------

    def execute(self, plan: MeasurementPlan) -> dict[Probe, object]:
        """Run a plan (memoized, dependency-ordered) and return results."""
        fresh: list[PlanStep] = []
        queued: set[Probe] = set()
        for step in plan:
            if step.probe in self._memo or step.probe in queued:
                self.stats.cache_hits += 1
                continue
            queued.add(step.probe)
            fresh.append(step)
        self._run_steps(fresh)
        return {step.probe: self._memo[step.probe] for step in plan}

    def _run_steps(self, steps: list[PlanStep]) -> None:
        if self._threaded and len(steps) > 1:
            self._run_steps_pooled(steps)
            return
        for step in steps:
            for dep in step.after:
                if dep not in self._memo:
                    raise ConfigurationError(
                        f"probe depends on unexecuted probe {dep!r}"
                    )
            self._memo[step.probe] = self._measure(step.probe)
            self.stats.issued += 1

    def _issue_counter(self, probe: Probe):
        kind = probe_kind(probe)
        counter = self._issue_counters.get(kind)
        if counter is None:
            counter = self.metrics.counter("planner.probes_issued", kind=kind)
            self._issue_counters[kind] = counter
        return counter

    @property
    def _threaded(self) -> bool:
        return self.jobs > 1 and bool(
            getattr(self.backend, "wall_clock_bound", False)
        )

    def _run_steps_pooled(self, steps: list[PlanStep]) -> None:
        """Wave-schedule independent probes on a worker pool.

        Two probes may overlap only when their dependency edges allow it
        *and* their core sets are disjoint — concurrent measurements
        pinned to a common core would contend and corrupt each other.

        With :attr:`probe_timeout` set, a future that produces no result
        in time is *abandoned*: its probe is counted failed and
        re-dispatched (up to :attr:`timeout_retries` times), so one
        wedged measurement cannot stall the rest of the plan.  The hung
        thread keeps its pool slot until it dies on its own; its cores
        are released to the scheduler on the assumption that a wedged
        probe is stuck in a syscall, not generating memory traffic.
        """
        remaining = list(steps)
        busy: _Multiset = _Multiset()
        # Workers run in their own context: capture the submitting
        # thread's span here so pooled probe spans nest correctly.
        parent_span = self.tracer.current_span_id if self.tracer else None
        abandoned_any = False
        pool = ThreadPoolExecutor(max_workers=self.jobs)
        try:
            # future -> (probe, submitted-at monotonic time, attempt)
            futures: dict = {}

            def submit(probe: Probe, attempt: int) -> None:
                for core in probe_cores(probe):
                    busy[core] += 1
                futures[pool.submit(self._measure, probe, parent_span)] = (
                    probe,
                    time.monotonic(),
                    attempt,
                )

            def release(probe: Probe) -> None:
                for core in probe_cores(probe):
                    busy[core] -= 1
                    if not busy[core]:
                        del busy[core]

            while remaining or futures:
                launched = True
                while launched and len(futures) < self.jobs and remaining:
                    launched = False
                    for i, step in enumerate(remaining):
                        cores = set(probe_cores(step.probe))
                        deps_met = all(d in self._memo for d in step.after)
                        if deps_met and not any(busy[c] for c in cores):
                            submit(step.probe, attempt=0)
                            remaining.pop(i)
                            launched = True
                            break
                if not futures:
                    stuck = [step.probe for step in remaining]
                    raise ConfigurationError(
                        f"plan cannot make progress (circular or missing "
                        f"dependencies): {stuck!r}"
                    )
                timeout = None
                if self.probe_timeout is not None:
                    now = time.monotonic()
                    timeout = max(
                        0.0,
                        min(
                            submitted + self.probe_timeout - now
                            for _, submitted, _ in futures.values()
                        ),
                    )
                finished, _ = wait(
                    futures, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    probe, _, _ = futures.pop(future)
                    release(probe)
                    self._memo[probe] = future.result()
                    self.stats.issued += 1
                if self.probe_timeout is None:
                    continue
                now = time.monotonic()
                for future, (probe, submitted, attempt) in list(futures.items()):
                    if now - submitted < self.probe_timeout:
                        continue
                    # Abandon the wedged future; its eventual result (if
                    # any) is discarded.
                    del futures[future]
                    future.cancel()
                    release(probe)
                    abandoned_any = True
                    self.stats.probe_timeouts += 1
                    self._note_timeout_incident()
                    if attempt >= self.timeout_retries:
                        raise MeasurementTimeout(
                            f"probe {probe_id(probe)} produced no result "
                            f"within {self.probe_timeout:g}s in "
                            f"{attempt + 1} attempt(s)",
                            waited=self.probe_timeout * (attempt + 1),
                        )
                    submit(probe, attempt=attempt + 1)
        finally:
            # Never block shutdown on a thread we already gave up on.
            pool.shutdown(wait=not abandoned_any, cancel_futures=True)

    def _note_timeout_incident(self) -> None:
        """Count a pooled-probe timeout as a resilience incident.

        When the backend is wrapped in
        :class:`~repro.resilience.HardenedBackend` this feeds the same
        ``timeouts`` counter its own retry path uses, so the suite marks
        the phase ``degraded`` — the timed-out probe *was* recovered
        from, not silently absorbed.
        """
        incidents = getattr(self.backend, "incidents", None)
        if isinstance(incidents, dict) and "timeouts" in incidents:
            incidents["timeouts"] += 1

    def _measure(self, probe: Probe, parent_span: str | None = None):
        self._issue_counter(probe).inc()
        span = (
            self.tracer.span(
                "probe",
                parent_id=parent_span,
                kind=probe_kind(probe),
                probe_id=probe_id(probe),
                cores=list(probe_cores(probe)),
            )
            if self.tracer is not None
            else nullcontext()
        )
        with span:
            return self._dispatch(probe)

    def _dispatch(self, probe: Probe):
        backend = self.backend
        if isinstance(probe, TraversalProbe):
            return backend.traversal_cycles(list(probe.arrays), probe.stride)
        if isinstance(probe, StreamProbe):
            return backend.copy_bandwidth(list(probe.cores))
        if isinstance(probe, MessageProbe):
            a, b = probe.pair
            return backend.message_latency(a, b, probe.nbytes)
        if isinstance(probe, ConcurrentMessageProbe):
            return backend.concurrent_message_latency(
                list(probe.pairs), probe.nbytes
            )
        raise ConfigurationError(f"unknown probe type {type(probe).__name__}")

    # -- memoized single probes ---------------------------------------------

    def _memoized(self, probe: Probe):
        if probe in self._memo:
            self.stats.cache_hits += 1
            return self._memo[probe]
        result = self._measure(probe)
        self._memo[probe] = result
        self.stats.issued += 1
        return result

    def traversal_cycles(
        self,
        arrays: Sequence[tuple[int, int]],
        stride: int,
        sample: int = 0,
    ) -> dict[int, float]:
        probe = TraversalProbe(
            arrays=tuple((int(c), int(n)) for c, n in arrays),
            stride=stride,
            sample=sample,
        )
        return self._memoized(probe)

    def copy_bandwidth(
        self, cores: Sequence[int], sample: int = 0
    ) -> dict[int, float]:
        probe = StreamProbe(cores=tuple(int(c) for c in cores), sample=sample)
        return self._memoized(probe)

    def message_latency(
        self, core_a: int, core_b: int, nbytes: int, sample: int = 0
    ) -> float:
        pair = (core_a, core_b) if core_a < core_b else (core_b, core_a)
        probe = MessageProbe(pair=pair, nbytes=nbytes, sample=sample)
        return self._memoized(probe)

    def concurrent_message_latency(
        self, pairs: Sequence[CorePair], nbytes: int, sample: int = 0
    ) -> ConcurrentLatency:
        probe = ConcurrentMessageProbe(
            pairs=tuple(tuple(p) for p in pairs), nbytes=nbytes, sample=sample
        )
        return self._memoized(probe)

    def traversal_reference(
        self, core: int, array_bytes: int, stride: int, samples: int = 1
    ) -> float:
        """Mean single-core traversal cycles over ``samples`` repeats.

        Each repeat is a distinct probe (fresh page placement is the
        point of repeat-sampling) but the whole reference is memoized,
        so asking again for the same (core, size, stride, sample) —
        across levels, phases, or resumed runs — costs nothing.
        """
        values = [
            self.traversal_cycles([(core, array_bytes)], stride, sample=s)[core]
            for s in range(samples)
        ]
        return float(sum(values)) / len(values)

    # -- pruned pairwise batches --------------------------------------------

    def pairwise(
        self,
        pairs: Sequence[CorePair],
        probe_factory: Callable[[CorePair, int], Probe],
        value: Callable[[CorePair, list], float],
        samples: int = 1,
    ) -> dict[CorePair, float]:
        """Measure a structurally identical probe for every core pair.

        ``probe_factory(pair, sample)`` builds the probe for one pair
        and sample index; the factory must mention the pair's cores in
        the pair's sorted order, so a representative's raw result can be
        re-keyed onto an equivalent pair.  ``value(pair, raws)`` reduces
        the pair's per-sample raw results to the scalar the phase
        clusters on.

        With pruning off every pair is measured (still memoized and,
        for wall-clock backends, scheduled concurrently).  With
        ``topology``/``verify`` pruning only class representatives (and
        spot checks) reach the backend; everything else is broadcast.
        """
        pairs = list(pairs)
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        self.stats.pairwise_requested += len(pairs) * samples

        if self.prune == "off" or self.classifier is None:
            self._measure_pairs(pairs, probe_factory, samples)
            return self._values_of(pairs, probe_factory, value, samples)

        classes = self.classifier.partition(pairs)
        probed: list[CorePair] = []
        spot_of: dict[int, CorePair | None] = {}
        for idx, cls in enumerate(classes):
            probed.append(cls.representative)
            spot = cls.spot_check if self.prune == "verify" else None
            spot_of[idx] = spot
            if spot is not None:
                probed.append(spot)
                self.stats.spot_checks += samples
        self._measure_pairs(probed, probe_factory, samples)

        for idx, cls in enumerate(classes):
            rep = cls.representative
            spot = spot_of[idx]
            measured = {rep} | ({spot} if spot is not None else set())
            if spot is not None and self._diverges(
                value(rep, self._raws(rep, probe_factory, samples)),
                value(spot, self._raws(spot, probe_factory, samples)),
            ):
                # The machine is not as symmetric as the model claims:
                # distrust the whole class and measure it for real.
                self.stats.verify_fallbacks += 1
                rest = [p for p in cls.pairs if p not in measured]
                self._measure_pairs(rest, probe_factory, samples)
                continue
            for member in cls.pairs:
                if member in measured:
                    continue
                for s in range(samples):
                    src = probe_factory(rep, s)
                    dst = probe_factory(member, s)
                    if dst not in self._memo:
                        self._memo[dst] = _rekey(src, dst, self._memo[src])
                        self.stats.pruned += 1
        return self._values_of(pairs, probe_factory, value, samples)

    def pairwise_message_latency(
        self, pairs: Sequence[CorePair], nbytes: int
    ) -> dict[CorePair, float]:
        """All-pairs message latency (the Fig. 5–7 workhorse)."""
        return self.pairwise(
            pairs,
            probe_factory=lambda pair, s: MessageProbe(
                pair=pair, nbytes=nbytes, sample=s
            ),
            value=lambda pair, raws: float(raws[0]),
        )

    # -- helpers ------------------------------------------------------------

    def _measure_pairs(
        self,
        pairs: Sequence[CorePair],
        probe_factory: Callable[[CorePair, int], Probe],
        samples: int,
    ) -> None:
        plan = MeasurementPlan()
        seen: set[Probe] = set()
        for pair in pairs:
            for s in range(samples):
                probe = probe_factory(pair, s)
                if probe not in seen:
                    seen.add(probe)
                    plan.add(probe)
        before = self.stats.issued
        self.execute(plan)
        self.stats.pairwise_measured += self.stats.issued - before

    def _raws(self, pair, probe_factory, samples: int) -> list:
        return [self._memo[probe_factory(pair, s)] for s in range(samples)]

    def _values_of(self, pairs, probe_factory, value, samples: int) -> dict:
        return {
            pair: value(pair, self._raws(pair, probe_factory, samples))
            for pair in pairs
        }

    def _diverges(self, v_rep: float, v_spot: float) -> bool:
        scale = max(abs(v_rep), abs(v_spot))
        if scale == 0.0:
            return False
        return abs(v_rep - v_spot) / scale > self.verify_tolerance


def _rekey(src: Probe, dst: Probe, raw):
    """Re-key a representative's raw result onto an equivalent pair."""
    if isinstance(raw, dict):
        mapping = dict(zip(probe_cores(src), probe_cores(dst)))
        return {mapping[core]: val for core, val in raw.items()}
    return raw
