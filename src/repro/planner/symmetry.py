"""Topology-equivalence classes of core pairs (the symmetry pruner).

All three of Servet's pairwise phases (Figs. 5–7) probe every pair of
cores, yet on a homogeneous cluster almost all of those pairs are
equivalent *by construction*: a Dunnington L2-sharing pair behaves like
every other L2-sharing pair, and any two inter-node pairs of identical
nodes see the same interconnect.  hwloc-style topology tools exploit
exactly this.  The classifier below derives a conservative equivalence
signature for a pair from the :class:`~repro.topology.machine.Cluster`
model:

- pairs on different nodes are equivalent to each other (a cluster is
  ``n_nodes`` *identical* machines behind a uniform interconnect);
- local pairs are equivalent iff they share the same set of cache
  levels, the same processor/cell relationship, and an isomorphic
  position in the bandwidth-domain tree (same shared-domain capacities
  and same per-core root-path capacities).

The signature is deliberately *finer* than strictly necessary for any
single probe kind — splitting a class never produces a wrong broadcast,
it only costs a handful of extra measurements — and it stays O(#classes)
on homogeneous machines, which is the whole point.

Pruning trusts the machine *model*; ``verify`` mode spot-checks one
extra pair per class against the representative and falls back to
measuring the whole class when they diverge (heterogeneity insurance).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..errors import ConfigurationError
from ..topology.machine import Cluster, CorePair

#: Recognized prune modes (CLI ``--prune`` and ``ServetSuite(prune=)``).
PRUNE_MODES: tuple[str, ...] = ("off", "topology", "verify")


def validate_prune_mode(mode: str) -> str:
    if mode not in PRUNE_MODES:
        raise ConfigurationError(
            f"unknown prune mode {mode!r}; expected one of {PRUNE_MODES}"
        )
    return mode


@dataclass(frozen=True)
class PairClass:
    """One equivalence class of core pairs.

    ``pairs`` preserves the caller's order; the first pair is the
    measured representative and the last one the ``verify``-mode spot
    check (maximally far from the representative in enumeration order,
    which on the built-in machines means a different instance of the
    same structure).
    """

    signature: tuple
    pairs: tuple[CorePair, ...]

    @property
    def representative(self) -> CorePair:
        return self.pairs[0]

    @property
    def spot_check(self) -> CorePair | None:
        """A second pair to verify the class against (None if singleton)."""
        return self.pairs[-1] if len(self.pairs) > 1 else None


class TopologyClassifier:
    """Partitions core pairs into topology-equivalence classes."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._signatures: dict[CorePair, tuple] = {}

    def signature(self, pair: CorePair) -> tuple:
        """Hashable equivalence signature of a (sorted) core pair."""
        cached = self._signatures.get(pair)
        if cached is not None:
            return cached
        a, b = pair
        cluster = self.cluster
        if not cluster.same_node(a, b):
            # Nodes are identical by construction and the interconnect
            # is uniform, so every inter-node pair is equivalent.
            sig: tuple = ("inter-node",)
        else:
            node = cluster.node
            la, lb = cluster.local_core(a), cluster.local_core(b)
            shared_levels = tuple(
                level.spec.level
                for level in node.levels
                if level.shared_by(la, lb)
            )
            root = node.bandwidth_root
            path_a = root.domains_of(la)
            path_b = root.domains_of(lb)
            shared_bw = tuple(
                domain.capacity
                for domain in path_a
                if any(domain is other for other in path_b)
            )
            caps_a = tuple(domain.capacity for domain in path_a)
            caps_b = tuple(domain.capacity for domain in path_b)
            sig = (
                "local",
                shared_levels,
                node.same_processor(la, lb),
                node.same_cell(la, lb),
                shared_bw,
                tuple(sorted((caps_a, caps_b))),
            )
        self._signatures[pair] = sig
        return sig

    def partition(self, pairs: Sequence[CorePair]) -> list[PairClass]:
        """Group pairs into classes, preserving first-seen order."""
        buckets: dict[tuple, list[CorePair]] = {}
        for pair in pairs:
            buckets.setdefault(self.signature(pair), []).append(pair)
        return [
            PairClass(signature=sig, pairs=tuple(members))
            for sig, members in buckets.items()
        ]


def classifier_for(backend) -> TopologyClassifier | None:
    """Build a classifier from a backend's cluster model, if it has one.

    Works through the resilience wrappers (they delegate unknown
    attributes to the wrapped backend).  Returns None for backends with
    no structural model (e.g. :class:`~repro.backends.native.NativeBackend`),
    where symmetry pruning has nothing trustworthy to prune with.
    """
    cluster = getattr(backend, "cluster", None)
    if cluster is None:
        return None
    return TopologyClassifier(cluster)
