"""Shared file-I/O helpers: atomic writes, canonical JSON, digests.

Every on-disk artifact the library persists — reports, checkpoints,
registry entries, machine descriptions — goes through
:func:`atomic_write_text`, so a crash mid-write can never leave a
truncated file where a good one used to be.  :func:`canonical_json`
and :func:`sha256_hex` define the byte-level identity used by the
tuning-service fingerprints and registry checksums: sorted keys and
compact separators make the serialization independent of dict
insertion order.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path


def canonical_json(data) -> str:
    """Deterministic JSON: sorted keys, no whitespace.

    Two structurally equal values always serialize to the same bytes,
    which is what fingerprint digests and registry checksums hash.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def sha256_hex(text: str) -> str:
    """Hex SHA-256 of UTF-8 encoded ``text``."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def atomic_write_text(path: str | Path, text: str, durable: bool = True) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the target directory so the final
    rename stays on one filesystem; readers see either the complete old
    content or the complete new content, never a torn write.

    With ``durable=True`` (the default) the temp file is fsync'd before
    the rename and the parent directory after it, so the write also
    survives *power loss*: without the first fsync the rename can land
    on disk before the data (leaving a complete-looking file full of
    zeros), and without the second the rename itself can be lost.
    Registry versions, checkpoints, and fleet shards all rely on this.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def fsync_dir(directory: str | Path) -> None:
    """Flush a directory's entries to disk (no-op where unsupported).

    Renames live in the directory, not the file: after ``os.replace``
    the new name is only durable once the directory itself is synced.
    Some platforms (Windows) cannot open directories — there the call
    degrades to a no-op rather than failing the write.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
