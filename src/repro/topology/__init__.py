"""Machine and cluster topology descriptions.

This package models the *ground truth* hardware that the simulated
backend implements and that the Servet benchmarks must rediscover
blindly: cache specifications and sharing groups, processors, cells,
memory bandwidth domains and multi-node clusters.
"""

from .cache import CacheSpec, CacheLevel, CacheOrganization, Indexing
from .machine import (
    BandwidthDomain,
    CoreClass,
    Machine,
    Cluster,
    CorePair,
    all_pairs,
)
from .serialization import (
    cluster_from_dict,
    cluster_to_dict,
    load_cluster,
    machine_from_dict,
    machine_to_dict,
    save_cluster,
)
from .builders import (
    athlon_3200,
    builder_names,
    build_machine,
    dempsey,
    dunnington,
    finis_terrae,
    finis_terrae_node,
    generic_smp,
)

__all__ = [
    "CacheSpec",
    "CacheLevel",
    "CacheOrganization",
    "Indexing",
    "BandwidthDomain",
    "CoreClass",
    "Machine",
    "Cluster",
    "CorePair",
    "all_pairs",
    "athlon_3200",
    "builder_names",
    "build_machine",
    "dempsey",
    "dunnington",
    "finis_terrae",
    "finis_terrae_node",
    "generic_smp",
    "cluster_from_dict",
    "cluster_to_dict",
    "load_cluster",
    "machine_from_dict",
    "machine_to_dict",
    "save_cluster",
]
