"""Cache specifications and per-level sharing groups.

A :class:`CacheSpec` describes one kind of cache (size, associativity,
line size, indexing scheme, access latency).  A :class:`CacheLevel`
instantiates a spec on a machine by saying which cores share each
physical cache instance.  The distinction matters for every Servet
benchmark: cache *size* detection needs the spec, shared-cache detection
needs the groups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import format_size, is_power_of_two


class Indexing(enum.Enum):
    """How a cache derives its set index from an address.

    ``VIRTUAL`` caches (typically L1) index with the virtual address, so
    a contiguous virtual array maps deterministically and the mcalibrator
    cycles curve shows a sharp cliff exactly at the cache size.

    ``PHYSICAL`` caches (L2/L3 in practice, see Hennessy & Patterson)
    index with the physical address; under an OS without page coloring
    the virtual->physical page mapping is effectively random, smearing
    the cliff — the situation Servet's probabilistic algorithm decodes.
    """

    VIRTUAL = "virtual"
    PHYSICAL = "physical"


class CacheOrganization(enum.Enum):
    """Fill/replacement discipline of a cache level.

    ``INCLUSIVE`` is the classic model every paper machine uses: a line
    brought into level *j* is also installed at all levels above it.

    ``EXCLUSIVE`` levels hold only lines *not* present in the inner
    levels they back (AMD-style L2/L3): a hit moves the line inward and
    the inner evictee drops down, so the usable capacity seen by a
    strided probe is the sum of this level and its inner levels.

    ``VICTIM`` marks a small fully-associative buffer that catches inner
    evictions (Jouppi's victim cache); it must have a single set
    (``num_sets == 1``) and is exempt from the monotone-size rule.
    """

    INCLUSIVE = "inclusive"
    EXCLUSIVE = "exclusive"
    VICTIM = "victim"


@dataclass(frozen=True)
class CacheSpec:
    """Static description of one cache design.

    Parameters
    ----------
    level:
        1-based level number (1 = closest to the core).
    size:
        Total capacity in bytes.
    ways:
        Associativity.  ``size`` must be divisible by ``ways * line_size``.
    line_size:
        Cache line size in bytes (power of two).
    indexing:
        Virtual or physical set indexing (see :class:`Indexing`).
    latency:
        Access cost in cycles charged when a request *reaches* this
        level.  An access that hits at level *j* costs the sum of the
        latencies of levels ``1..j``.
    organization:
        Fill discipline (see :class:`CacheOrganization`).  The default
        ``INCLUSIVE`` reproduces the original model exactly.
    sector_lines:
        Lines per sector (power of two).  Sectored caches keep one tag
        per sector, so the set index is computed at sector granularity:
        ``num_sets = size / (ways * line_size * sector_lines)``.
    """

    level: int
    size: int
    ways: int
    line_size: int = 64
    indexing: Indexing = Indexing.PHYSICAL
    latency: float = 10.0
    organization: CacheOrganization = CacheOrganization.INCLUSIVE
    sector_lines: int = 1

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ConfigurationError(f"cache level must be >= 1, got {self.level}")
        if self.size <= 0 or self.ways <= 0:
            raise ConfigurationError("cache size and ways must be positive")
        if not is_power_of_two(self.line_size):
            raise ConfigurationError(f"line size {self.line_size} not a power of two")
        if not is_power_of_two(self.sector_lines):
            raise ConfigurationError(
                f"sector_lines {self.sector_lines} not a power of two"
            )
        if self.size % (self.ways * self.line_size * self.sector_lines) != 0:
            raise ConfigurationError(
                f"cache size {self.size} not divisible by ways*line*sector "
                f"({self.ways}*{self.line_size}*{self.sector_lines})"
            )
        if not is_power_of_two(self.num_sets):
            # Set indexing uses a modulo; non-power-of-two set counts do
            # exist but real caches (and our address math) assume 2^k.
            raise ConfigurationError(
                f"cache with {self.num_sets} sets: set count must be a power of two"
            )
        if self.organization is CacheOrganization.VICTIM and self.num_sets != 1:
            raise ConfigurationError(
                f"victim cache must be fully associative (one set), "
                f"got {self.num_sets} sets"
            )
        if self.latency < 0:
            raise ConfigurationError("cache latency must be non-negative")

    @property
    def num_sets(self) -> int:
        """Number of cache sets (``size / (ways * line_size * sector_lines)``)."""
        return self.size // (self.ways * self.line_size * self.sector_lines)

    @property
    def sector_bytes(self) -> int:
        """Bytes per sector (``line_size * sector_lines``)."""
        return self.line_size * self.sector_lines

    @property
    def num_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.size // self.line_size

    def page_colors(self, page_size: int) -> int:
        """Number of *page sets* (colors): ``size / (ways * page_size)``.

        This is the quantity ``CS/(K*PS)`` from the paper's binomial
        model.  For small caches one page may cover the whole cache, in
        which case there is a single color.
        """
        if page_size <= 0 or page_size % self.line_size != 0:
            raise ConfigurationError(
                f"page size {page_size} incompatible with line size {self.line_size}"
            )
        colors = self.size // (self.ways * page_size)
        return max(1, colors)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``'L2 3MB 12-way physical'``."""
        text = (
            f"L{self.level} {format_size(self.size)} {self.ways}-way "
            f"{self.indexing.value}"
        )
        if self.organization is not CacheOrganization.INCLUSIVE:
            text += f" {self.organization.value}"
        if self.sector_lines != 1:
            text += f" sectored({self.sector_lines})"
        return text


@dataclass(frozen=True)
class CacheLevel:
    """A cache level instantiated on a machine.

    ``groups`` partitions the machine's cores: each group is the set of
    cores sharing one physical instance of ``spec``.  Private caches are
    singleton groups.
    """

    spec: CacheSpec
    groups: tuple[frozenset[int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for group in self.groups:
            if not group:
                raise ConfigurationError("empty cache sharing group")
            overlap = seen & group
            if overlap:
                raise ConfigurationError(
                    f"cores {sorted(overlap)} appear in two groups of "
                    f"{self.spec.describe()}"
                )
            seen |= group

    @property
    def cores(self) -> frozenset[int]:
        """All cores covered by this level."""
        return frozenset().union(*self.groups) if self.groups else frozenset()

    def group_of(self, core: int) -> frozenset[int]:
        """The sharing group containing ``core``."""
        for group in self.groups:
            if core in group:
                return group
        raise ConfigurationError(
            f"core {core} has no {self.spec.describe()} instance"
        )

    def instance_index(self, core: int) -> int:
        """Index of the physical instance used by ``core``."""
        for i, group in enumerate(self.groups):
            if core in group:
                return i
        raise ConfigurationError(
            f"core {core} has no {self.spec.describe()} instance"
        )

    def shared_by(self, core_a: int, core_b: int) -> bool:
        """True if the two cores use the same physical cache instance."""
        return self.group_of(core_a) is self.group_of(core_b)


def private_groups(n_cores: int) -> tuple[frozenset[int], ...]:
    """Sharing groups for a private (per-core) cache level."""
    return tuple(frozenset((c,)) for c in range(n_cores))


def grouped(groups: list[list[int]]) -> tuple[frozenset[int], ...]:
    """Convenience converter from lists of core ids to sharing groups."""
    return tuple(frozenset(g) for g in groups)
