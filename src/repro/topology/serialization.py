"""JSON (de)serialization of machine/cluster descriptions.

Lets users describe their own system under test in a file instead of
writing a builder — ``servet run --machine-file my_cluster.json``.  The
format covers everything the simulated backend needs: cache levels with
sharing groups, processors/cells, the bandwidth-domain tree, optional
TLB, node count and (optionally) the communication layer parameters.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ConfigurationError
from ..ioutils import atomic_write_text
from ..memsim.tlb import TLBSpec
from ..netsim.model import CommConfig, LayerParams
from .cache import CacheLevel, CacheSpec, Indexing
from .machine import BandwidthDomain, Cluster, Machine


def _domain_to_dict(domain: BandwidthDomain) -> dict:
    return {
        "name": domain.name,
        "capacity": domain.capacity,
        "cores": sorted(domain.cores),
        "children": [_domain_to_dict(child) for child in domain.children],
    }


def _domain_from_dict(data: dict) -> BandwidthDomain:
    return BandwidthDomain(
        name=data["name"],
        capacity=float(data["capacity"]),
        cores=frozenset(int(c) for c in data["cores"]),
        children=tuple(_domain_from_dict(c) for c in data.get("children", [])),
    )


def machine_to_dict(machine: Machine) -> dict:
    """Plain-JSON description of a machine."""
    data = {
        "name": machine.name,
        "n_cores": machine.n_cores,
        "page_size": machine.page_size,
        "mem_latency": machine.mem_latency,
        "clock_hz": machine.clock_hz,
        "core_stream_bw": machine.core_stream_bw,
        "levels": [
            {
                "level": lvl.spec.level,
                "size": lvl.spec.size,
                "ways": lvl.spec.ways,
                "line_size": lvl.spec.line_size,
                "indexing": lvl.spec.indexing.value,
                "latency": lvl.spec.latency,
                "groups": [sorted(g) for g in lvl.groups],
            }
            for lvl in machine.levels
        ],
        "processors": [sorted(g) for g in machine.processors],
        "cells": [sorted(g) for g in machine.cells],
        "bandwidth": _domain_to_dict(machine.bandwidth_root),
    }
    if machine.tlb is not None:
        data["tlb"] = {
            "entries": machine.tlb.entries,
            "ways": machine.tlb.ways,
            "walk_cycles": machine.tlb.walk_cycles,
        }
    return data


def machine_from_dict(data: dict) -> Machine:
    """Inverse of :func:`machine_to_dict` (validates on construction)."""
    try:
        levels = tuple(
            CacheLevel(
                CacheSpec(
                    level=int(lvl["level"]),
                    size=int(lvl["size"]),
                    ways=int(lvl["ways"]),
                    line_size=int(lvl.get("line_size", 64)),
                    indexing=Indexing(lvl["indexing"]),
                    latency=float(lvl["latency"]),
                ),
                tuple(frozenset(int(c) for c in g) for g in lvl["groups"]),
            )
            for lvl in data["levels"]
        )
        tlb = None
        if "tlb" in data:
            raw = data["tlb"]
            tlb = TLBSpec(
                entries=int(raw["entries"]),
                ways=None if raw.get("ways") is None else int(raw["ways"]),
                walk_cycles=float(raw.get("walk_cycles", 30.0)),
            )
        return Machine(
            name=str(data["name"]),
            n_cores=int(data["n_cores"]),
            levels=levels,
            processors=tuple(
                frozenset(int(c) for c in g) for g in data["processors"]
            ),
            cells=tuple(frozenset(int(c) for c in g) for g in data["cells"]),
            page_size=int(data["page_size"]),
            mem_latency=float(data["mem_latency"]),
            clock_hz=float(data["clock_hz"]),
            core_stream_bw=float(data["core_stream_bw"]),
            bandwidth_root=_domain_from_dict(data["bandwidth"]),
            tlb=tlb,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed machine description: {exc}") from exc


def comm_config_to_dict(config: CommConfig) -> dict:
    """Plain-JSON description of a communication config."""
    return {
        key: {
            "base_latency": p.base_latency,
            "bandwidth": p.bandwidth,
            "eager_threshold": p.eager_threshold,
            "rendezvous_latency": p.rendezvous_latency,
            "cache_capacity": p.cache_capacity,
            "mem_bandwidth": p.mem_bandwidth,
            "contention_factor": p.contention_factor,
        }
        for key, p in config.layers.items()
    }


def comm_config_from_dict(data: dict) -> CommConfig:
    """Inverse of :func:`comm_config_to_dict`."""
    try:
        return CommConfig(
            {
                key: LayerParams(
                    name=key,
                    base_latency=float(raw["base_latency"]),
                    bandwidth=float(raw["bandwidth"]),
                    eager_threshold=int(raw.get("eager_threshold", 65536)),
                    rendezvous_latency=float(raw.get("rendezvous_latency", 0.0)),
                    cache_capacity=(
                        None
                        if raw.get("cache_capacity") is None
                        else int(raw["cache_capacity"])
                    ),
                    mem_bandwidth=(
                        None
                        if raw.get("mem_bandwidth") is None
                        else float(raw["mem_bandwidth"])
                    ),
                    contention_factor=float(raw.get("contention_factor", 0.0)),
                )
                for key, raw in data.items()
            }
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed comm config: {exc}") from exc


def cluster_to_dict(cluster: Cluster, comm: CommConfig | None = None) -> dict:
    """Plain-JSON description of a cluster (optionally with comm model)."""
    data = {
        "name": cluster.name,
        "n_nodes": cluster.n_nodes,
        "node": machine_to_dict(cluster.node),
    }
    if comm is not None:
        data["comm"] = comm_config_to_dict(comm)
    return data


def cluster_from_dict(data: dict) -> tuple[Cluster, CommConfig | None]:
    """Inverse of :func:`cluster_to_dict`."""
    try:
        cluster = Cluster(
            name=str(data["name"]),
            node=machine_from_dict(data["node"]),
            n_nodes=int(data.get("n_nodes", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed cluster description: {exc}") from exc
    comm = comm_config_from_dict(data["comm"]) if "comm" in data else None
    return cluster, comm


def save_cluster(
    cluster: Cluster, path: str | Path, comm: CommConfig | None = None
) -> None:
    """Write a cluster description (and optional comm model) as JSON."""
    atomic_write_text(path, json.dumps(cluster_to_dict(cluster, comm), indent=2))


def load_cluster(path: str | Path) -> tuple[Cluster, CommConfig | None]:
    """Read a cluster description saved by :func:`save_cluster`."""
    return cluster_from_dict(json.loads(Path(path).read_text()))
