"""JSON (de)serialization of machine/cluster descriptions.

Lets users describe their own system under test in a file instead of
writing a builder — ``servet run --machine-file my_cluster.json``.  The
format covers everything the simulated backend needs: cache levels with
sharing groups, processors/cells, the bandwidth-domain tree, optional
TLB, node count and (optionally) the communication layer parameters.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ConfigurationError, TopologyError
from ..ioutils import atomic_write_text
from ..memsim.tlb import TLBSpec
from ..netsim.model import CommConfig, LayerParams
from .cache import CacheLevel, CacheOrganization, CacheSpec, Indexing
from .machine import BandwidthDomain, Cluster, CoreClass, Machine


def _domain_to_dict(domain: BandwidthDomain) -> dict:
    return {
        "name": domain.name,
        "capacity": domain.capacity,
        "cores": sorted(domain.cores),
        "children": [_domain_to_dict(child) for child in domain.children],
    }


def _domain_from_dict(data: dict) -> BandwidthDomain:
    return BandwidthDomain(
        name=data["name"],
        capacity=float(data["capacity"]),
        cores=frozenset(int(c) for c in data["cores"]),
        children=tuple(_domain_from_dict(c) for c in data.get("children", [])),
    )


def _level_to_dict(lvl: CacheLevel) -> dict:
    data = {
        "level": lvl.spec.level,
        "size": lvl.spec.size,
        "ways": lvl.spec.ways,
        "line_size": lvl.spec.line_size,
        "indexing": lvl.spec.indexing.value,
        "latency": lvl.spec.latency,
        "groups": [sorted(g) for g in lvl.groups],
    }
    # Extension fields are emitted only when non-default, so files (and
    # service fingerprints) of classic machines stay byte-identical.
    if lvl.spec.organization is not CacheOrganization.INCLUSIVE:
        data["organization"] = lvl.spec.organization.value
    if lvl.spec.sector_lines != 1:
        data["sector_lines"] = lvl.spec.sector_lines
    return data


def machine_to_dict(machine: Machine) -> dict:
    """Plain-JSON description of a machine."""
    data = {
        "name": machine.name,
        "n_cores": machine.n_cores,
        "page_size": machine.page_size,
        "mem_latency": machine.mem_latency,
        "clock_hz": machine.clock_hz,
        "core_stream_bw": machine.core_stream_bw,
        "levels": [_level_to_dict(lvl) for lvl in machine.levels],
        "processors": [sorted(g) for g in machine.processors],
        "cells": [sorted(g) for g in machine.cells],
        "bandwidth": _domain_to_dict(machine.bandwidth_root),
    }
    if machine.tlb is not None:
        data["tlb"] = {
            "entries": machine.tlb.entries,
            "ways": machine.tlb.ways,
            "walk_cycles": machine.tlb.walk_cycles,
        }
    if machine.core_classes is not None:
        data["core_classes"] = [
            {
                "name": cls.name,
                "cores": sorted(cls.cores),
                "cycle_scale": cls.cycle_scale,
            }
            for cls in machine.core_classes
        ]
    return data


def _organization_from_tag(tag: object) -> CacheOrganization:
    """Parse a cache-organization tag, failing with the tag in the message.

    A file written by a newer version with an organization this code
    does not know must not surface as a bare ``KeyError``/``ValueError``
    deep in a dataclass constructor.
    """
    try:
        return CacheOrganization(tag)
    except ValueError:
        known = sorted(o.value for o in CacheOrganization)
        raise TopologyError(
            f"unknown cache organization {tag!r} (known: {known})"
        ) from None


def machine_from_dict(data: dict) -> Machine:
    """Inverse of :func:`machine_to_dict` (validates on construction)."""
    try:
        levels = tuple(
            CacheLevel(
                CacheSpec(
                    level=int(lvl["level"]),
                    size=int(lvl["size"]),
                    ways=int(lvl["ways"]),
                    line_size=int(lvl.get("line_size", 64)),
                    indexing=Indexing(lvl["indexing"]),
                    latency=float(lvl["latency"]),
                    organization=_organization_from_tag(
                        lvl.get("organization", "inclusive")
                    ),
                    sector_lines=int(lvl.get("sector_lines", 1)),
                ),
                tuple(frozenset(int(c) for c in g) for g in lvl["groups"]),
            )
            for lvl in data["levels"]
        )
        tlb = None
        if "tlb" in data:
            raw = data["tlb"]
            tlb = TLBSpec(
                entries=int(raw["entries"]),
                ways=None if raw.get("ways") is None else int(raw["ways"]),
                walk_cycles=float(raw.get("walk_cycles", 30.0)),
            )
        core_classes = None
        if "core_classes" in data:
            core_classes = tuple(
                CoreClass(
                    name=str(raw["name"]),
                    cores=frozenset(int(c) for c in raw["cores"]),
                    cycle_scale=float(raw.get("cycle_scale", 1.0)),
                )
                for raw in data["core_classes"]
            )
        return Machine(
            name=str(data["name"]),
            n_cores=int(data["n_cores"]),
            levels=levels,
            processors=tuple(
                frozenset(int(c) for c in g) for g in data["processors"]
            ),
            cells=tuple(frozenset(int(c) for c in g) for g in data["cells"]),
            page_size=int(data["page_size"]),
            mem_latency=float(data["mem_latency"]),
            clock_hz=float(data["clock_hz"]),
            core_stream_bw=float(data["core_stream_bw"]),
            bandwidth_root=_domain_from_dict(data["bandwidth"]),
            tlb=tlb,
            core_classes=core_classes,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed machine description: {exc}") from exc


def comm_config_to_dict(config: CommConfig) -> dict:
    """Plain-JSON description of a communication config."""
    data: dict = {}
    for key, p in config.layers.items():
        layer = {
            "base_latency": p.base_latency,
            "bandwidth": p.bandwidth,
            "eager_threshold": p.eager_threshold,
            "rendezvous_latency": p.rendezvous_latency,
            "cache_capacity": p.cache_capacity,
            "mem_bandwidth": p.mem_bandwidth,
            "contention_factor": p.contention_factor,
        }
        if p.nic_count != 1:
            layer["nic_count"] = p.nic_count
        data[key] = layer
    return data


def comm_config_from_dict(data: dict) -> CommConfig:
    """Inverse of :func:`comm_config_to_dict`."""
    try:
        return CommConfig(
            {
                key: LayerParams(
                    name=key,
                    base_latency=float(raw["base_latency"]),
                    bandwidth=float(raw["bandwidth"]),
                    eager_threshold=int(raw.get("eager_threshold", 65536)),
                    rendezvous_latency=float(raw.get("rendezvous_latency", 0.0)),
                    cache_capacity=(
                        None
                        if raw.get("cache_capacity") is None
                        else int(raw["cache_capacity"])
                    ),
                    mem_bandwidth=(
                        None
                        if raw.get("mem_bandwidth") is None
                        else float(raw["mem_bandwidth"])
                    ),
                    contention_factor=float(raw.get("contention_factor", 0.0)),
                    nic_count=int(raw.get("nic_count", 1)),
                )
                for key, raw in data.items()
            }
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed comm config: {exc}") from exc


def cluster_to_dict(cluster: Cluster, comm: CommConfig | None = None) -> dict:
    """Plain-JSON description of a cluster (optionally with comm model)."""
    data = {
        "name": cluster.name,
        "n_nodes": cluster.n_nodes,
        "node": machine_to_dict(cluster.node),
    }
    if comm is not None:
        data["comm"] = comm_config_to_dict(comm)
    return data


def cluster_from_dict(data: dict) -> tuple[Cluster, CommConfig | None]:
    """Inverse of :func:`cluster_to_dict`."""
    try:
        cluster = Cluster(
            name=str(data["name"]),
            node=machine_from_dict(data["node"]),
            n_nodes=int(data.get("n_nodes", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed cluster description: {exc}") from exc
    comm = comm_config_from_dict(data["comm"]) if "comm" in data else None
    return cluster, comm


def save_cluster(
    cluster: Cluster, path: str | Path, comm: CommConfig | None = None
) -> None:
    """Write a cluster description (and optional comm model) as JSON."""
    atomic_write_text(path, json.dumps(cluster_to_dict(cluster, comm), indent=2))


def load_cluster(path: str | Path) -> tuple[Cluster, CommConfig | None]:
    """Read a cluster description saved by :func:`save_cluster`."""
    return cluster_from_dict(json.loads(Path(path).read_text()))
