"""Machine (node) and cluster descriptions.

A :class:`Machine` is one shared-memory node: cores, a stack of cache
levels with sharing groups, processor/cell groupings, a memory
bandwidth-domain tree and the clock frequency.  A :class:`Cluster` is
``n_nodes`` identical machines joined by an interconnect; cores get
*global* ids ``node_index * cores_per_node + local_id``, matching the
flat MPI rank-to-core view the paper's benchmarks use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

from ..errors import ConfigurationError
from ..units import format_size
from .cache import CacheLevel, CacheOrganization, CacheSpec

#: An unordered pair of core ids, stored sorted.
CorePair = tuple[int, int]


def make_pair(a: int, b: int) -> CorePair:
    """Normalize an unordered core pair to ``(min, max)``."""
    if a == b:
        raise ConfigurationError(f"a core pair needs two distinct cores, got ({a},{b})")
    return (a, b) if a < b else (b, a)


def all_pairs(cores: Sequence[int]) -> list[CorePair]:
    """All unordered pairs of the given cores, sorted lexicographically."""
    return [make_pair(a, b) for a, b in itertools.combinations(sorted(cores), 2)]


@dataclass(frozen=True)
class BandwidthDomain:
    """A node in the memory bandwidth-constraint tree.

    ``capacity`` is the aggregate sustainable copy bandwidth (bytes/s)
    of all concurrent accesses by ``cores`` through this domain (a front
    side bus, a cell-local memory controller, a shared bus...).  The
    water-filling allocator in :mod:`repro.memsim.bandwidth` enforces
    every domain on a core's root path simultaneously.
    """

    name: str
    capacity: float
    cores: frozenset[int]
    children: tuple["BandwidthDomain", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"domain {self.name!r}: capacity must be > 0")
        child_cores: set[int] = set()
        for child in self.children:
            if not child.cores <= self.cores:
                raise ConfigurationError(
                    f"domain {child.name!r} has cores outside parent {self.name!r}"
                )
            if child_cores & child.cores:
                raise ConfigurationError(
                    f"domain {self.name!r}: children overlap on cores "
                    f"{sorted(child_cores & child.cores)}"
                )
            child_cores |= set(child.cores)

    def walk(self) -> Iterator["BandwidthDomain"]:
        """Depth-first iteration over this domain and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def domains_of(self, core: int) -> list["BandwidthDomain"]:
        """All domains on the path from the root to ``core`` that contain it."""
        if core not in self.cores:
            return []
        path = [self]
        for child in self.children:
            sub = child.domains_of(core)
            if sub:
                path.extend(sub)
                break
        return path


@dataclass(frozen=True)
class CoreClass:
    """A class of identical cores on a heterogeneous machine.

    ``cycle_scale`` multiplies the cycle count of every memory traversal
    executed on the class's cores: big (performance) cores use 1.0,
    little (efficiency) cores something > 1.  The classes of a machine
    must partition its cores.
    """

    name: str
    cores: frozenset[int]
    cycle_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("core class needs a name")
        if not self.cores:
            raise ConfigurationError(f"core class {self.name!r} has no cores")
        if self.cycle_scale <= 0:
            raise ConfigurationError(
                f"core class {self.name!r}: cycle_scale must be > 0"
            )


@dataclass(frozen=True)
class Machine:
    """One shared-memory multicore node.

    Parameters
    ----------
    name:
        Identifier used in reports and the CLI.
    n_cores:
        Number of cores; core ids are ``0..n_cores-1`` in the *logical*
        (OS) numbering — which, as the paper stresses for Dunnington,
        need not follow the physical layout.
    levels:
        Cache levels ordered L1 first.  Every level must cover all cores.
    processors:
        Partition of cores into physical processors (sockets).
    cells:
        Partition of cores into cells/NUMA domains (defaults to one cell).
    page_size:
        OS page size in bytes.
    mem_latency:
        Extra cycles charged when an access misses every cache level.
    clock_hz:
        Core clock; converts cycle counts to seconds for Table I
        accounting and bandwidth computations.
    core_stream_bw:
        Copy bandwidth (bytes/s) one isolated core can sustain.
    bandwidth_root:
        Root of the bandwidth-domain tree (must cover all cores).
    """

    name: str
    n_cores: int
    levels: tuple[CacheLevel, ...]
    processors: tuple[frozenset[int], ...]
    cells: tuple[frozenset[int], ...]
    page_size: int
    mem_latency: float
    clock_hz: float
    core_stream_bw: float
    bandwidth_root: BandwidthDomain
    #: Optional per-core TLB (extension; see repro.memsim.tlb).  None
    #: models an effectively-unbounded TLB, which is what the paper's
    #: measurement regime assumes.
    tlb: "object | None" = None
    #: Optional heterogeneous core classes (extension; see the machine
    #: zoo).  None models the homogeneous machines of the paper; when
    #: set, the classes must partition the cores and the traversal
    #: engine scales each core's cycle counts by its class.
    core_classes: tuple[CoreClass, ...] | None = None

    def __post_init__(self) -> None:
        cores = frozenset(range(self.n_cores))
        if self.n_cores <= 0:
            raise ConfigurationError("machine needs at least one core")
        if not self.levels:
            raise ConfigurationError("machine needs at least one cache level")
        expected = 1
        for level in self.levels:
            if level.spec.level != expected:
                raise ConfigurationError(
                    f"{self.name}: cache levels must be consecutive from L1, "
                    f"got L{level.spec.level} where L{expected} expected"
                )
            if level.cores != cores:
                raise ConfigurationError(
                    f"{self.name}: {level.spec.describe()} does not cover all cores"
                )
            expected += 1
        # Victim caches are small fully-associative buffers slotted
        # between conventional levels; they are exempt from the monotone
        # size rule, which then applies across them.
        prev_size = self.levels[0].spec.size
        for lvl in self.levels[1:]:
            if lvl.spec.organization is CacheOrganization.VICTIM:
                continue
            if lvl.spec.size <= prev_size:
                raise ConfigurationError(
                    f"{self.name}: cache sizes must strictly increase with level"
                )
            prev_size = lvl.spec.size
        for partition, what in ((self.processors, "processors"), (self.cells, "cells")):
            covered: set[int] = set()
            for group in partition:
                if covered & group:
                    raise ConfigurationError(f"{self.name}: overlapping {what}")
                covered |= set(group)
            if covered != set(cores):
                raise ConfigurationError(f"{self.name}: {what} must partition cores")
        if self.bandwidth_root.cores != cores:
            raise ConfigurationError(
                f"{self.name}: bandwidth tree must cover all cores"
            )
        if self.page_size <= 0 or self.mem_latency < 0 or self.clock_hz <= 0:
            raise ConfigurationError(f"{self.name}: invalid scalar parameter")
        if self.core_stream_bw <= 0:
            raise ConfigurationError(f"{self.name}: core_stream_bw must be > 0")
        if self.core_classes is not None:
            covered = set()
            for cls in self.core_classes:
                if covered & cls.cores:
                    raise ConfigurationError(
                        f"{self.name}: overlapping core classes"
                    )
                covered |= set(cls.cores)
            if covered != set(cores):
                raise ConfigurationError(
                    f"{self.name}: core classes must partition cores"
                )

    # -- cache queries ---------------------------------------------------

    @property
    def cores(self) -> range:
        """Core id range ``0..n_cores-1``."""
        return range(self.n_cores)

    @property
    def cache_sizes(self) -> tuple[int, ...]:
        """Cache sizes, L1 first (ground truth for tests/benches)."""
        return tuple(level.spec.size for level in self.levels)

    def level(self, number: int) -> CacheLevel:
        """The cache level with 1-based level ``number``."""
        for lvl in self.levels:
            if lvl.spec.level == number:
                return lvl
        raise ConfigurationError(f"{self.name} has no L{number}")

    def closest_shared_level(self, a: int, b: int) -> int | None:
        """Smallest (closest-to-core) cache level shared by the pair.

        A Dunnington L2 pair also shares the L3, but its communication
        behaviour is governed by the L2, so the *minimum* shared level
        is the meaningful one.  ``None`` if no cache is shared.
        """
        shared = [lvl.spec.level for lvl in self.levels if lvl.shared_by(a, b)]
        return min(shared) if shared else None

    def shared_level_pairs(self, number: int) -> list[CorePair]:
        """All core pairs sharing a cache instance at the given level."""
        pairs: list[CorePair] = []
        for group in self.level(number).groups:
            pairs.extend(all_pairs(sorted(group)))
        return sorted(pairs)

    # -- structural queries ----------------------------------------------

    def processor_of(self, core: int) -> frozenset[int]:
        """Cores of the physical processor containing ``core``."""
        for group in self.processors:
            if core in group:
                return group
        raise ConfigurationError(f"core {core} not in any processor")

    def cell_of(self, core: int) -> frozenset[int]:
        """Cores of the cell (NUMA domain) containing ``core``."""
        for group in self.cells:
            if core in group:
                return group
        raise ConfigurationError(f"core {core} not in any cell")

    def same_processor(self, a: int, b: int) -> bool:
        """True if the two cores live on the same physical processor."""
        return self.processor_of(a) is self.processor_of(b)

    def same_cell(self, a: int, b: int) -> bool:
        """True if the two cores live in the same cell."""
        return self.cell_of(a) is self.cell_of(b)

    def cycle_scale_of(self, core: int) -> float:
        """Cycle-count multiplier of ``core`` (1.0 on homogeneous machines)."""
        if self.core_classes is None:
            return 1.0
        for cls in self.core_classes:
            if core in cls.cores:
                return cls.cycle_scale
        raise ConfigurationError(f"core {core} not in any core class")

    def summary(self) -> str:
        """Multi-line human-readable description."""
        lines = [
            f"{self.name}: {self.n_cores} cores @ {self.clock_hz / 1e9:.4g} GHz, "
            f"page {format_size(self.page_size)}"
        ]
        for level in self.levels:
            sharing = (
                "private"
                if all(len(g) == 1 for g in level.groups)
                else f"shared by {len(next(iter(level.groups)))} cores"
            )
            lines.append(f"  {level.spec.describe()} ({sharing})")
        lines.append(
            f"  {len(self.processors)} processors, {len(self.cells)} cell(s)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class Cluster:
    """``n_nodes`` identical machines behind an interconnect.

    The communication model parameters live in
    :class:`repro.netsim.model.CommConfig`; the cluster only provides
    the structural questions (which node a global core lives on, pair
    relationships).  A single machine is the degenerate 1-node cluster.
    """

    name: str
    node: Machine
    n_nodes: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("cluster needs at least one node")

    @property
    def n_cores(self) -> int:
        """Total number of cores across all nodes."""
        return self.n_nodes * self.node.n_cores

    @property
    def cores(self) -> range:
        """Global core id range."""
        return range(self.n_cores)

    def node_of(self, core: int) -> int:
        """Node index of a global core id."""
        self._check(core)
        return core // self.node.n_cores

    def local_core(self, core: int) -> int:
        """Node-local core id of a global core id."""
        self._check(core)
        return core % self.node.n_cores

    def global_core(self, node: int, local: int) -> int:
        """Global core id of node-local core ``local`` on ``node``."""
        if not (0 <= node < self.n_nodes):
            raise ConfigurationError(f"node {node} out of range")
        if not (0 <= local < self.node.n_cores):
            raise ConfigurationError(f"local core {local} out of range")
        return node * self.node.n_cores + local

    def same_node(self, a: int, b: int) -> bool:
        """True if both global cores are on the same node."""
        return self.node_of(a) == self.node_of(b)

    def relationship(self, a: int, b: int) -> str:
        """Classify a global core pair for communication modelling.

        Returns one of ``"shared-l<N>"`` (deepest shared cache level),
        ``"same-cell"``, ``"same-node"`` or ``"inter-node"``.  This is
        ground truth the communication benchmark must *measure back*.
        """
        if a == b:
            raise ConfigurationError("relationship needs two distinct cores")
        if not self.same_node(a, b):
            return "inter-node"
        la, lb = self.local_core(a), self.local_core(b)
        deepest = self.node.closest_shared_level(la, lb)
        if deepest is not None:
            return f"shared-l{deepest}"
        # "same-cell" is only a distinct relationship on machines that
        # actually have more than one cell (NUMA domain).
        if len(self.node.cells) > 1 and self.node.same_cell(la, lb):
            return "same-cell"
        return "same-node"

    def relationships(self) -> set[str]:
        """All relationship keys that occur between the cluster's cores."""
        keys: set[str] = set()
        node = self.node
        for a, b in all_pairs(range(node.n_cores)):
            deepest = node.closest_shared_level(a, b)
            if deepest is not None:
                keys.add(f"shared-l{deepest}")
            elif len(node.cells) > 1 and node.same_cell(a, b):
                keys.add("same-cell")
            else:
                keys.add("same-node")
        if self.n_nodes > 1:
            keys.add("inter-node")
        return keys

    def _check(self, core: int) -> None:
        if not (0 <= core < self.n_cores):
            raise ConfigurationError(
                f"core {core} out of range for {self.name} ({self.n_cores} cores)"
            )


def partition_by(cores: Iterable[int], group_size: int) -> tuple[frozenset[int], ...]:
    """Partition sorted ``cores`` into consecutive groups of ``group_size``."""
    ordered = sorted(cores)
    if len(ordered) % group_size != 0:
        raise ConfigurationError(
            f"cannot partition {len(ordered)} cores into groups of {group_size}"
        )
    return tuple(
        frozenset(ordered[i : i + group_size])
        for i in range(0, len(ordered), group_size)
    )
