"""Builders for the machines evaluated in the Servet paper.

Four systems appear in Section IV:

- **Dunnington**: 4x Intel Xeon E7450 hexacore @ 2.40 GHz.  32 KB private
  L1, 3 MB L2 shared by pairs of cores, 12 MB L3 shared by the six cores
  of a processor.  The OS numbering is non-obvious: core 0 shares its L2
  with core **12** and its L3 with cores {1, 2, 12, 13, 14} (Fig. 8a).
- **Finis Terrae** (one HP RX7640 node): 8x Itanium2 Montvale dual-core
  @ 1.60 GHz = 16 cores in two cells of 4 processors; all caches private
  (16 KB L1 / 256 KB L2 / 9 MB L3); memory buses shared by pairs of
  processors; nodes joined by 20 Gbps InfiniBand.
- **Dempsey**: Intel Xeon 5060 dual-core @ 3.20 GHz, 16 KB L1, 2 MB L2.
- **Athlon 3200**: unicore AMD @ 2 GHz, 64 KB L1, 512 KB L2.

Latencies, associativities and bandwidth-domain capacities are
model-calibrated plausible values (the paper reports none); the
*structure* — which the benchmarks must rediscover — is faithful.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..errors import ConfigurationError
from ..units import KiB, MiB, GiB, parse_size
from .cache import CacheLevel, CacheSpec, Indexing, grouped, private_groups
from .machine import BandwidthDomain, Cluster, Machine, partition_by

GB_S = 1e9  # bytes/second in the decimal convention used for bandwidths


def dunnington() -> Machine:
    """The 24-core Dunnington node (4x Xeon E7450 hexacore)."""
    n = 24
    # Physical socket s holds logical cores {3s..3s+2} u {12+3s..12+3s+2};
    # L2 caches pair logical cores (c, c+12) -- this reproduces the
    # numbering surprise highlighted in Fig. 8a.
    sockets = [sorted({3 * s, 3 * s + 1, 3 * s + 2, 12 + 3 * s, 13 + 3 * s, 14 + 3 * s})
               for s in range(4)]
    l2_pairs = [[c, c + 12] for c in range(12)]
    levels = (
        CacheLevel(
            CacheSpec(1, 32 * KiB, ways=8, indexing=Indexing.VIRTUAL, latency=3.0),
            private_groups(n),
        ),
        CacheLevel(
            CacheSpec(2, 3 * MiB, ways=12, indexing=Indexing.PHYSICAL, latency=14.0),
            grouped(l2_pairs),
        ),
        CacheLevel(
            CacheSpec(3, 12 * MiB, ways=24, indexing=Indexing.PHYSICAL, latency=45.0),
            grouped(sockets),
        ),
    )
    cores = frozenset(range(n))
    # A single front-side-bus-like constraint: every concurrent pair
    # contends identically, matching the uniform overhead of Fig. 9a.
    root = BandwidthDomain("fsb", capacity=4.2 * GB_S, cores=cores)
    return Machine(
        name="dunnington",
        n_cores=n,
        levels=levels,
        processors=grouped(sockets),
        cells=(cores,),
        page_size=4 * KiB,
        mem_latency=260.0,
        clock_hz=2.40e9,
        core_stream_bw=3.0 * GB_S,
        bandwidth_root=root,
    )


def finis_terrae_node() -> Machine:
    """One 16-core HP RX7640 node of the Finis Terrae supercomputer."""
    n = 16
    processors = partition_by(range(n), 2)   # 8 dual-core Itanium2
    cells = partition_by(range(n), 8)        # 2 cells x 4 processors
    buses = partition_by(range(n), 4)        # buses shared by proc pairs
    levels = (
        CacheLevel(
            CacheSpec(1, 16 * KiB, ways=4, indexing=Indexing.VIRTUAL, latency=2.0),
            private_groups(n),
        ),
        CacheLevel(
            CacheSpec(2, 256 * KiB, ways=8, indexing=Indexing.PHYSICAL, latency=8.0),
            private_groups(n),
        ),
        CacheLevel(
            CacheSpec(3, 9 * MiB, ways=9, indexing=Indexing.PHYSICAL, latency=30.0),
            private_groups(n),
        ),
    )
    # Bandwidth tree: node -> 2 cells -> 2 buses each.  Capacities are
    # calibrated so a bus-sharing pair drops hardest, a same-cell pair
    # drops ~25 %, and cross-cell pairs see no contention (Fig. 9a).
    bus_domains = tuple(
        BandwidthDomain(f"bus{i}", capacity=4.6 * GB_S, cores=bus)
        for i, bus in enumerate(buses)
    )
    cell_domains = tuple(
        BandwidthDomain(
            f"cell{i}",
            capacity=5.25 * GB_S,
            cores=cell,
            children=tuple(b for b in bus_domains if b.cores <= cell),
        )
        for i, cell in enumerate(cells)
    )
    root = BandwidthDomain(
        "node", capacity=10.6 * GB_S, cores=frozenset(range(n)), children=cell_domains
    )
    return Machine(
        name="finis_terrae",
        n_cores=n,
        levels=levels,
        processors=processors,
        cells=cells,
        page_size=4 * KiB,
        mem_latency=320.0,
        clock_hz=1.60e9,
        core_stream_bw=3.5 * GB_S,
        bandwidth_root=root,
    )


def finis_terrae(n_nodes: int = 2) -> Cluster:
    """The Finis Terrae cluster (142 nodes in reality; 2 suffice to
    characterize every communication layer, as in Fig. 10a)."""
    return Cluster("finis_terrae", finis_terrae_node(), n_nodes=n_nodes)


def dempsey() -> Machine:
    """The Intel Xeon 5060 (Dempsey) dual-core test machine."""
    n = 2
    levels = (
        CacheLevel(
            CacheSpec(1, 16 * KiB, ways=8, indexing=Indexing.VIRTUAL, latency=3.0),
            private_groups(n),
        ),
        CacheLevel(
            CacheSpec(2, 2 * MiB, ways=8, indexing=Indexing.PHYSICAL, latency=20.0),
            private_groups(n),
        ),
    )
    cores = frozenset(range(n))
    root = BandwidthDomain("fsb", capacity=3.4 * GB_S, cores=cores)
    return Machine(
        name="dempsey",
        n_cores=n,
        levels=levels,
        processors=(cores,),
        cells=(cores,),
        page_size=4 * KiB,
        mem_latency=300.0,
        clock_hz=3.20e9,
        core_stream_bw=2.5 * GB_S,
        bandwidth_root=root,
    )


def athlon_3200() -> Machine:
    """The unicore AMD Athlon 3200 test machine."""
    levels = (
        CacheLevel(
            CacheSpec(1, 64 * KiB, ways=2, indexing=Indexing.VIRTUAL, latency=3.0),
            private_groups(1),
        ),
        CacheLevel(
            CacheSpec(2, 512 * KiB, ways=16, indexing=Indexing.PHYSICAL, latency=18.0),
            private_groups(1),
        ),
    )
    cores = frozenset((0,))
    root = BandwidthDomain("mem", capacity=2.6 * GB_S, cores=cores)
    return Machine(
        name="athlon_3200",
        n_cores=1,
        levels=levels,
        processors=(cores,),
        cells=(cores,),
        page_size=4 * KiB,
        mem_latency=250.0,
        clock_hz=2.00e9,
        core_stream_bw=2.0 * GB_S,
        bandwidth_root=root,
    )


def generic_smp(
    name: str = "smp",
    n_cores: int = 4,
    levels: Sequence[tuple[str | int, int, int, float]] = (
        ("32KB", 8, 1, 3.0),
        ("2MB", 8, 2, 15.0),
    ),
    page_size: str | int = "4KB",
    mem_latency: float = 250.0,
    clock_hz: float = 2.0e9,
    core_stream_bw: float = 3.0 * GB_S,
    node_bw: float | None = None,
    tlb=None,
) -> Machine:
    """Build an arbitrary SMP for tests and what-if studies.

    ``levels`` is a sequence of ``(size, ways, shared_by, latency)``;
    ``shared_by`` is the number of *consecutive* cores sharing each
    instance (1 = private).  L1 is virtually indexed, deeper levels
    physically indexed, matching real hardware practice.
    """
    cache_levels = []
    for i, (size, ways, shared_by, latency) in enumerate(levels, start=1):
        if n_cores % shared_by != 0:
            raise ConfigurationError(
                f"{name}: level {i} shared_by={shared_by} does not divide "
                f"{n_cores} cores"
            )
        indexing = Indexing.VIRTUAL if i == 1 else Indexing.PHYSICAL
        cache_levels.append(
            CacheLevel(
                CacheSpec(i, parse_size(size), ways=ways, indexing=indexing,
                          latency=latency),
                partition_by(range(n_cores), shared_by),
            )
        )
    cores = frozenset(range(n_cores))
    capacity = node_bw if node_bw is not None else 1.4 * core_stream_bw
    root = BandwidthDomain("mem", capacity=capacity, cores=cores)
    return Machine(
        name=name,
        n_cores=n_cores,
        levels=tuple(cache_levels),
        processors=(cores,),
        cells=(cores,),
        page_size=parse_size(page_size),
        mem_latency=mem_latency,
        clock_hz=clock_hz,
        core_stream_bw=core_stream_bw,
        bandwidth_root=root,
        tlb=tlb,
    )


_BUILDERS: dict[str, Callable[[], Machine]] = {
    "dunnington": dunnington,
    "finis_terrae": finis_terrae_node,
    "dempsey": dempsey,
    "athlon_3200": athlon_3200,
}


def builder_names() -> list[str]:
    """Names accepted by :func:`build_machine` (and the CLI)."""
    return sorted(_BUILDERS)


def build_machine(name: str) -> Machine:
    """Build one of the paper's machines by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; available: {', '.join(builder_names())}"
        ) from None
