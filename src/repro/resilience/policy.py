"""Measurement hardening: retries, validation, robust repeat-sampling.

LIKWID-style measurement tools treat broken counters and timing noise
as first-class concerns; this module does the same for any
:class:`~repro.backends.base.Backend`.  :class:`HardenedBackend` wraps
a backend and gives every measurement call

- **bounded retries** with exponential backoff, charged to *virtual*
  time (a real campaign pays wall-clock to re-run a benchmark; the
  simulated one pays its virtual clock, keeping Table I honest);
- **per-reading validation** — finite, strictly positive, and inside
  per-channel plausibility bounds;
- **repeat-sampling with outlier rejection** — take ``k`` validated
  samples, combine them with a median or trimmed mean, and re-sample
  (up to a cap) while the relative spread exceeds a gate.

The wrapper also counts every incident (retry, invalid reading, hang,
re-sample) so :class:`~repro.core.suite.ServetSuite` can mark a phase
``degraded`` when its result needed fault recovery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..backends.base import Backend, ConcurrentLatency
from ..errors import ConfigurationError, MeasurementError, MeasurementTimeout
from ..topology.machine import CorePair

__all__ = [
    "ReadingBounds",
    "RetryPolicy",
    "SamplingPolicy",
    "ResiliencePolicy",
    "HardenedBackend",
    "relative_spread",
    "robust_estimate",
]


# -- robust statistics -----------------------------------------------------


def relative_spread(values: Sequence[float]) -> float:
    """``(max - min) / median`` — 0 for constant or single samples."""
    if len(values) < 2:
        return 0.0
    med = robust_estimate(values, estimator="median")
    if med == 0.0:
        return math.inf if max(values) > min(values) else 0.0
    return (max(values) - min(values)) / abs(med)


def robust_estimate(
    values: Sequence[float],
    estimator: str = "median",
    trim_fraction: float = 0.2,
) -> float:
    """Combine repeated samples into one robust estimate.

    ``median`` survives up to half the samples being outliers;
    ``trimmed_mean`` drops ``trim_fraction`` of each tail first (falling
    back to the plain mean when too few samples remain to trim).
    """
    if not values:
        raise MeasurementError("cannot estimate from zero samples")
    ordered = sorted(values)
    n = len(ordered)
    if estimator == "median":
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])
    if estimator == "trimmed_mean":
        k = int(n * trim_fraction)
        trimmed = ordered[k : n - k] if n - 2 * k >= 1 else ordered
        return sum(trimmed) / len(trimmed)
    raise ConfigurationError(
        f"unknown estimator {estimator!r}; expected 'median' or 'trimmed_mean'"
    )


# -- policy knobs ----------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff (virtual seconds)."""

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError("invalid backoff parameters")

    def backoff(self, retry_index: int) -> float:
        """Virtual seconds to wait before retry number ``retry_index``
        (0-based)."""
        return self.backoff_base * self.backoff_factor**retry_index


@dataclass(frozen=True)
class SamplingPolicy:
    """Repeat-sampling with a relative-spread gate."""

    #: Baseline number of validated samples per measurement.
    samples: int = 1
    #: ``median`` or ``trimmed_mean``.
    estimator: str = "median"
    trim_fraction: float = 0.2
    #: Re-sample while any reading's relative spread exceeds this
    #: (``None`` disables the gate).
    spread_gate: float | None = 0.25
    #: Cap on gate-triggered extra samples.
    max_extra_samples: int = 2

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ConfigurationError("samples must be >= 1")
        if not 0.0 <= self.trim_fraction < 0.5:
            raise ConfigurationError("trim_fraction must be in [0, 0.5)")
        if self.spread_gate is not None and self.spread_gate <= 0:
            raise ConfigurationError("spread_gate must be > 0 (or None)")
        if self.max_extra_samples < 0:
            raise ConfigurationError("max_extra_samples must be >= 0")
        robust_estimate([1.0], self.estimator)  # validates the name


@dataclass(frozen=True)
class ReadingBounds:
    """Plausibility window for one measurement channel.

    A reading must be finite, strictly positive, and inside
    ``[lo, hi]``.  Defaults are deliberately generous — they exist to
    catch *broken* readings (1e-300 s "latencies", 1e30 B/s
    "bandwidths"), not to second-guess unusual hardware.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0 < self.lo < self.hi):
            raise ConfigurationError("bounds need 0 < lo < hi")

    def problem(self, value: float) -> str | None:
        """A human-readable defect, or None for a plausible reading."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"non-numeric reading {value!r}"
        if math.isnan(value):
            return "NaN reading"
        if math.isinf(value):
            return "infinite reading"
        if value <= 0:
            return f"non-positive reading {value:g}"
        if value < self.lo:
            return f"implausibly small reading {value:g} (< {self.lo:g})"
        if value > self.hi:
            return f"implausibly large reading {value:g} (> {self.hi:g})"
        return None


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything :class:`HardenedBackend` needs to harden a backend."""

    retry: RetryPolicy = RetryPolicy()
    sampling: SamplingPolicy = SamplingPolicy()
    #: Cycles per access: sub-cycle and million-cycle accesses are broken.
    cycles_bounds: ReadingBounds = ReadingBounds(1e-2, 1e6)
    #: Bytes per second: 1 B/s .. 1 PB/s.
    bandwidth_bounds: ReadingBounds = ReadingBounds(1.0, 1e15)
    #: Seconds: 1 ps .. 1 hour.
    latency_bounds: ReadingBounds = ReadingBounds(1e-12, 3600.0)

    @classmethod
    def default(cls) -> "ResiliencePolicy":
        """A sensible production policy: 3 attempts, 3-sample median."""
        return cls(
            retry=RetryPolicy(max_attempts=3),
            sampling=SamplingPolicy(samples=3),
        )


#: Incident counter names (all reset by ``take_incidents``).
INCIDENT_KINDS: tuple[str, ...] = (
    "retries",
    "invalid_readings",
    "timeouts",
    "resamples",
)

#: Incidents that mean *fault recovery* happened, marking a suite phase
#: ``degraded``.  Spread-gate resamples are deliberately excluded: on a
#: noisy-but-healthy backend they are routine statistics, not faults.
DEGRADING_INCIDENTS: tuple[str, ...] = (
    "retries",
    "invalid_readings",
    "timeouts",
)


class HardenedBackend(Backend):
    """Retry, validate, and robustly aggregate every measurement.

    Wraps any backend; see the module docstring for semantics.  The
    wrapper is transparent for healthy backends with the default
    single-sample policy: values pass through unchanged.
    """

    def __init__(self, inner: Backend, policy: ResiliencePolicy | None = None) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.name = inner.name
        self.n_cores = inner.n_cores
        self.page_size = inner.page_size
        # Class attribute on Backend would shadow __getattr__ delegation.
        self.wall_clock_bound = getattr(inner, "wall_clock_bound", False)
        self.incidents: dict[str, int] = {kind: 0 for kind in INCIDENT_KINDS}

    @property
    def virtual_time(self) -> float:
        return self.inner.virtual_time

    @virtual_time.setter
    def virtual_time(self, value: float) -> None:
        self.inner.virtual_time = value

    def __getattr__(self, attr: str):
        if attr == "inner":
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    # -- incident accounting ----------------------------------------------

    def take_incidents(self) -> dict[str, int]:
        """Return and reset incident counters (suite degradation marker)."""
        taken, self.incidents = self.incidents, {k: 0 for k in INCIDENT_KINDS}
        return taken

    @property
    def total_incidents(self) -> int:
        return sum(self.incidents.values())

    # -- hardening machinery ----------------------------------------------

    def _attempt(
        self,
        label: str,
        bounds: ReadingBounds,
        call: Callable[[], dict],
    ) -> dict:
        """One validated measurement, retried per the retry policy."""
        retry = self.policy.retry
        last_problem = "no attempt made"
        for attempt in range(retry.max_attempts):
            if attempt:
                self.incidents["retries"] += 1
                self.inner.charge(retry.backoff(attempt - 1))
            try:
                readings = call()
            except MeasurementTimeout as exc:
                self.incidents["timeouts"] += 1
                last_problem = str(exc)
                continue
            bad = {
                key: problem
                for key, value in readings.items()
                if (problem := bounds.problem(value)) is not None
            }
            if not bad:
                return readings
            self.incidents["invalid_readings"] += len(bad)
            key, problem = next(iter(bad.items()))
            last_problem = f"{problem} for {key}"
            continue
        raise MeasurementError(
            f"{label}: no valid measurement after {retry.max_attempts} "
            f"attempt(s); last problem: {last_problem}"
        )

    def _measure(
        self,
        label: str,
        bounds: ReadingBounds,
        call: Callable[[], dict],
    ) -> dict:
        """Repeat ``_attempt`` per the sampling policy and aggregate."""
        sampling = self.policy.sampling
        batches = [self._attempt(label, bounds, call) for _ in range(sampling.samples)]
        if sampling.spread_gate is not None and sampling.samples > 1:
            extras = 0
            while extras < sampling.max_extra_samples and self._spread_of(
                batches
            ) > sampling.spread_gate:
                self.incidents["resamples"] += 1
                batches.append(self._attempt(label, bounds, call))
                extras += 1
        if len(batches) == 1:
            return batches[0]
        keys = batches[0].keys()
        return {
            key: robust_estimate(
                [batch[key] for batch in batches],
                estimator=sampling.estimator,
                trim_fraction=sampling.trim_fraction,
            )
            for key in keys
        }

    @staticmethod
    def _spread_of(batches: list[dict]) -> float:
        return max(
            relative_spread([batch[key] for batch in batches])
            for key in batches[0]
        )

    # -- Backend API -------------------------------------------------------

    def traversal_cycles(
        self, arrays: Sequence[tuple[int, int]], stride: int
    ) -> dict[int, float]:
        return self._measure(
            "traversal_cycles",
            self.policy.cycles_bounds,
            lambda: self.inner.traversal_cycles(arrays, stride),
        )

    def copy_bandwidth(self, cores: Sequence[int]) -> dict[int, float]:
        return self._measure(
            "copy_bandwidth",
            self.policy.bandwidth_bounds,
            lambda: self.inner.copy_bandwidth(cores),
        )

    def message_latency(self, core_a: int, core_b: int, nbytes: int) -> float:
        readings = self._measure(
            f"message_latency({core_a},{core_b})",
            self.policy.latency_bounds,
            lambda: {"value": self.inner.message_latency(core_a, core_b, nbytes)},
        )
        return readings["value"]

    def concurrent_message_latency(
        self, pairs: Sequence[CorePair], nbytes: int
    ) -> ConcurrentLatency:
        def call() -> dict:
            result = self.inner.concurrent_message_latency(pairs, nbytes)
            return {"mean": result.mean, "worst": result.worst}

        readings = self._measure(
            "concurrent_message_latency", self.policy.latency_bounds, call
        )
        return ConcurrentLatency(mean=readings["mean"], worst=readings["worst"])
