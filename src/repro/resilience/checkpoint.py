"""Suite checkpointing: recover a long run without re-measuring.

After each phase :class:`~repro.core.suite.ServetSuite` serializes its
partial state — the report so far, per-phase status, timings, and the
backend's RNG state — to a JSON file.  A later ``servet run
--checkpoint PATH --resume`` (or ``suite.run(checkpoint=..,
resume=True)``) reloads that file, verifies it belongs to the same
machine/configuration, restores the RNG, and continues from the first
phase that has not finished.  Because the RNG state is restored
exactly, a resumed run produces a byte-identical final report to an
uninterrupted one (given a deterministic wall clock).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CheckpointError
from ..ioutils import atomic_write_text

__all__ = ["CHECKPOINT_VERSION", "SuiteCheckpoint", "rng_state_of", "restore_rng"]

CHECKPOINT_VERSION = 1


def rng_state_of(backend) -> dict | None:
    """The backend RNG's serializable state, or None if it has none."""
    rng = getattr(backend, "rng", None)
    if rng is None:
        return None
    try:
        return rng.bit_generator.state
    except AttributeError:
        return None


def restore_rng(backend, state: dict | None) -> None:
    """Restore a state captured by :func:`rng_state_of` (no-op on None)."""
    if state is None:
        return
    rng = getattr(backend, "rng", None)
    if rng is None:
        raise CheckpointError("checkpoint has RNG state but backend has no rng")
    try:
        rng.bit_generator.state = state
    except (AttributeError, ValueError) as exc:
        raise CheckpointError(f"cannot restore RNG state: {exc}") from exc


@dataclass
class SuiteCheckpoint:
    """Partial suite state, written after every finished phase."""

    #: Identifies the (machine, configuration) the run belongs to.
    fingerprint: dict
    #: Phases that reached a terminal status, in execution order.
    completed: list[str] = field(default_factory=list)
    #: Phase name -> ``ok | degraded | failed | skipped``.
    status: dict[str, str] = field(default_factory=dict)
    #: Phase name -> captured error message (failed phases only).
    errors: dict[str, str] = field(default_factory=dict)
    #: ``ServetReport.to_dict()`` of the partial report.
    report: dict = field(default_factory=dict)
    #: Phase name -> (virtual seconds, wall seconds).
    timings: dict = field(default_factory=dict)
    #: Backend RNG state right after the last completed phase.
    rng_state: dict | None = None

    def to_dict(self) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "completed": list(self.completed),
            "status": dict(self.status),
            "errors": dict(self.errors),
            "report": self.report,
            "timings": {name: list(pair) for name, pair in self.timings.items()},
            "rng_state": self.rng_state,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SuiteCheckpoint":
        try:
            version = int(data["version"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version} "
                    f"(expected {CHECKPOINT_VERSION})"
                )
            return cls(
                fingerprint=dict(data["fingerprint"]),
                completed=[str(name) for name in data["completed"]],
                status={str(k): str(v) for k, v in data["status"].items()},
                errors={str(k): str(v) for k, v in data["errors"].items()},
                report=dict(data["report"]),
                timings={
                    str(name): (float(pair[0]), float(pair[1]))
                    for name, pair in data["timings"].items()
                },
                rng_state=data.get("rng_state"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc

    def save(self, path: str | Path) -> None:
        """Write atomically (tmp file + rename) so a crash mid-write
        never leaves a truncated checkpoint behind."""
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "SuiteCheckpoint":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        return cls.from_dict(data)

    def matches(self, fingerprint: dict) -> bool:
        """True when the checkpoint belongs to this configuration."""
        return self.fingerprint == fingerprint
