"""Deterministic fault injection for resilience testing.

Real measurement campaigns hit broken timers (NaN/zero/negative
readings), transient spikes from OS jitter, performance counters that
lock up and return a constant, cores whose readings are garbage, and
measurements that simply hang.  :class:`FaultInjectingBackend` wraps
any :class:`~repro.backends.base.Backend` and injects exactly those
faults according to a seeded, fully deterministic :class:`FaultPlan`,
so resilience behavior is reproducible bit-for-bit.

The wrapper sits *between* the suite and the real backend::

    backend = HardenedBackend(
        FaultInjectingBackend(SimulatedBackend(dunnington()), plan),
        policy,
    )

Every fault decision is drawn from the plan's own RNG (never the
wrapped backend's), so enabling faults does not perturb the underlying
measurement stream: a retry after a transient fault re-measures with
the backend exactly where it would have been.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from collections.abc import Sequence

from ..backends.base import Backend, ConcurrentLatency
from ..errors import ConfigurationError, MeasurementTimeout
from ..rng import ensure_rng
from ..topology.machine import CorePair

__all__ = ["FAULT_CHANNELS", "FaultPlan", "FaultInjectingBackend"]

#: Measurement channels a plan may be restricted to.
FAULT_CHANNELS: tuple[str, ...] = ("traversal", "bandwidth", "latency")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic description of which faults to inject.

    All rates are per-reading probabilities in ``[0, 1]``; fault kinds
    are drawn exclusively (a reading suffers at most one fault).  The
    plan is JSON-serializable so the CLI can load one from disk
    (``servet run --fault-plan plan.json``).
    """

    #: Seed of the plan's private RNG (independent of the backend's).
    seed: int = 0
    #: Probability a reading comes back NaN (broken timer).
    nan_rate: float = 0.0
    #: Probability a reading comes back 0 (timer underflow).
    zero_rate: float = 0.0
    #: Probability a reading comes back negated (counter wraparound).
    negative_rate: float = 0.0
    #: Probability a reading is multiplied by :attr:`spike_factor`
    #: (OS jitter / frequency transition).
    spike_rate: float = 0.0
    spike_factor: float = 50.0
    #: Probability a whole measurement hangs: the backend charges
    #: :attr:`hang_seconds` of virtual time and raises
    #: :class:`~repro.errors.MeasurementTimeout`.
    hang_rate: float = 0.0
    hang_seconds: float = 120.0
    #: Cores whose readings are always NaN (dead measurement zone).
    dead_cores: tuple[int, ...] = ()
    #: After this many backend calls every reading locks to
    #: :attr:`lockup_value` (a stuck performance counter).  ``None``
    #: disables the lockup.
    lockup_after: int | None = None
    lockup_value: float = 42.0
    #: Channels the plan applies to; empty means all of
    #: :data:`FAULT_CHANNELS`.
    only: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("nan_rate", "zero_rate", "negative_rate", "spike_rate",
                     "hang_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        total = self.nan_rate + self.zero_rate + self.negative_rate + self.spike_rate
        if total > 1.0:
            raise ConfigurationError(
                f"reading-fault rates sum to {total} > 1 (faults are exclusive)"
            )
        if self.spike_factor <= 0:
            raise ConfigurationError("spike_factor must be > 0")
        if self.hang_seconds < 0:
            raise ConfigurationError("hang_seconds must be >= 0")
        if self.lockup_after is not None and self.lockup_after < 0:
            raise ConfigurationError("lockup_after must be >= 0")
        for channel in self.only:
            if channel not in FAULT_CHANNELS:
                raise ConfigurationError(
                    f"unknown fault channel {channel!r}; "
                    f"expected one of {FAULT_CHANNELS}"
                )
        # Normalize sequences so plans compare/serialize predictably.
        object.__setattr__(self, "dead_cores", tuple(sorted(set(self.dead_cores))))
        object.__setattr__(self, "only", tuple(self.only))

    def applies_to(self, channel: str) -> bool:
        """True when this plan injects faults into ``channel``."""
        return not self.only or channel in self.only

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["dead_cores"] = list(self.dead_cores)
        data["only"] = list(self.only)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        try:
            kwargs = dict(data)
            if "dead_cores" in kwargs:
                kwargs["dead_cores"] = tuple(int(c) for c in kwargs["dead_cores"])
            if "only" in kwargs:
                kwargs["only"] = tuple(str(c) for c in kwargs["only"])
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed fault plan: {exc}") from exc

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_dict(data)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan with a different RNG seed."""
        return replace(self, seed=seed)


@dataclass
class FaultLog:
    """Counters of what a :class:`FaultInjectingBackend` injected."""

    readings: int = 0
    corrupted: int = 0
    hangs: int = 0
    by_kind: dict = field(default_factory=dict)

    def note(self, kind: str) -> None:
        self.corrupted += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class FaultInjectingBackend(Backend):
    """Decorate any backend with deterministic, plan-driven faults.

    Virtual-time accounting is forwarded to the wrapped backend so the
    suite's Table I numbers include the cost of hung measurements.
    Attributes the wrapper does not define (``cluster``, ``machine``,
    ...) resolve on the wrapped backend.
    """

    def __init__(self, inner: Backend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.n_cores = inner.n_cores
        self.page_size = inner.page_size
        # Class attribute on Backend would shadow __getattr__ delegation.
        self.wall_clock_bound = getattr(inner, "wall_clock_bound", False)
        self.rng = ensure_rng(plan.seed)
        self.calls = 0
        self.log = FaultLog()

    # -- virtual time is the wrapped backend's ----------------------------

    @property
    def virtual_time(self) -> float:
        return self.inner.virtual_time

    @virtual_time.setter
    def virtual_time(self, value: float) -> None:
        self.inner.virtual_time = value

    def __getattr__(self, attr: str):
        if attr == "inner":  # guard against recursion before __init__
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    # -- fault machinery ---------------------------------------------------

    def _locked(self) -> bool:
        return self.plan.lockup_after is not None and self.calls > self.plan.lockup_after

    def _maybe_hang(self, channel: str) -> None:
        plan = self.plan
        if not plan.applies_to(channel) or plan.hang_rate <= 0.0:
            return
        if float(self.rng.random()) < plan.hang_rate:
            self.log.hangs += 1
            self.charge(plan.hang_seconds)
            raise MeasurementTimeout(
                f"injected hang in {channel} measurement "
                f"(waited {plan.hang_seconds:g} virtual seconds)",
                waited=plan.hang_seconds,
            )

    def _corrupt(self, value: float, channel: str, cores: Sequence[int]) -> float:
        plan = self.plan
        self.log.readings += 1
        if not plan.applies_to(channel):
            return value
        if any(core in plan.dead_cores for core in cores):
            self.log.note("dead_core")
            return math.nan
        if self._locked():
            self.log.note("lockup")
            return plan.lockup_value
        draw = float(self.rng.random())
        if draw < plan.nan_rate:
            self.log.note("nan")
            return math.nan
        draw -= plan.nan_rate
        if draw < plan.zero_rate:
            self.log.note("zero")
            return 0.0
        draw -= plan.zero_rate
        if draw < plan.negative_rate:
            self.log.note("negative")
            return -abs(value)
        draw -= plan.negative_rate
        if draw < plan.spike_rate:
            self.log.note("spike")
            return value * plan.spike_factor
        return value

    # -- Backend API -------------------------------------------------------

    def traversal_cycles(
        self, arrays: Sequence[tuple[int, int]], stride: int
    ) -> dict[int, float]:
        self.calls += 1
        self._maybe_hang("traversal")
        readings = self.inner.traversal_cycles(arrays, stride)
        return {
            core: self._corrupt(value, "traversal", (core,))
            for core, value in readings.items()
        }

    def copy_bandwidth(self, cores: Sequence[int]) -> dict[int, float]:
        self.calls += 1
        self._maybe_hang("bandwidth")
        readings = self.inner.copy_bandwidth(cores)
        return {
            core: self._corrupt(value, "bandwidth", (core,))
            for core, value in readings.items()
        }

    def message_latency(self, core_a: int, core_b: int, nbytes: int) -> float:
        self.calls += 1
        self._maybe_hang("latency")
        value = self.inner.message_latency(core_a, core_b, nbytes)
        return self._corrupt(value, "latency", (core_a, core_b))

    def concurrent_message_latency(
        self, pairs: Sequence[CorePair], nbytes: int
    ) -> ConcurrentLatency:
        self.calls += 1
        self._maybe_hang("latency")
        result = self.inner.concurrent_message_latency(pairs, nbytes)
        cores = [c for pair in pairs for c in pair]
        return ConcurrentLatency(
            mean=self._corrupt(result.mean, "latency", cores),
            worst=self._corrupt(result.worst, "latency", cores),
        )
