"""Resilient suite execution (robustness layer).

Measurement campaigns at Table-I scale must survive flaky timers,
stuck counters, and hung benchmarks.  This package provides the three
pieces the suite threads together:

- :mod:`repro.resilience.faults` — :class:`FaultInjectingBackend`, a
  deterministic, seeded fault injector that decorates any backend;
- :mod:`repro.resilience.policy` — :class:`HardenedBackend`, giving
  every measurement bounded retries (backoff charged to virtual time),
  per-reading plausibility validation, and repeat-sampling with
  outlier rejection;
- :mod:`repro.resilience.checkpoint` — :class:`SuiteCheckpoint`,
  the JSON state behind ``servet run --checkpoint/--resume``.

See DESIGN.md §6 for degraded-report semantics.
"""

from .checkpoint import SuiteCheckpoint, restore_rng, rng_state_of
from .faults import FAULT_CHANNELS, FaultInjectingBackend, FaultPlan
from .policy import (
    HardenedBackend,
    ReadingBounds,
    ResiliencePolicy,
    RetryPolicy,
    SamplingPolicy,
    relative_spread,
    robust_estimate,
)

__all__ = [
    "FAULT_CHANNELS",
    "FaultPlan",
    "FaultInjectingBackend",
    "HardenedBackend",
    "ReadingBounds",
    "ResiliencePolicy",
    "RetryPolicy",
    "SamplingPolicy",
    "SuiteCheckpoint",
    "relative_spread",
    "robust_estimate",
    "restore_rng",
    "rng_state_of",
]
