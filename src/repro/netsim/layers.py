"""Ground-truth communication layers of a cluster.

Given a cluster and its communication config, compute the *true*
partition of core pairs into layers (pairs whose parameters are the same
object or compare equal).  The Servet benchmark of Fig. 7 must recover
this partition from latency measurements alone; tests compare its
output against this module.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from ..topology.machine import Cluster, CorePair, all_pairs
from .model import CommConfig, LayerParams


def true_layers(
    cluster: Cluster,
    config: CommConfig,
    cores: Sequence[int] | None = None,
) -> dict[str, list[CorePair]]:
    """Partition core pairs by the :class:`LayerParams` that serve them.

    Layers with identical cost parameters are merged under a combined
    ``"a|b"`` key, because no measurement can distinguish them — this is
    exactly what happens on Finis Terrae, where every intra-node pair
    behaves the same.
    """
    if cores is None:
        cores = list(cluster.cores)
    by_params: dict[tuple, list[CorePair]] = defaultdict(list)
    names: dict[tuple, set[str]] = defaultdict(set)
    for a, b in all_pairs(list(cores)):
        params = config.params_for_pair(cluster, a, b)
        key = _cost_key(params)
        by_params[key].append((a, b))
        names[key].add(params.name)
    return {
        "|".join(sorted(names[key])): sorted(pairs)
        for key, pairs in by_params.items()
    }


def _cost_key(params: LayerParams) -> tuple:
    """Cost-relevant fields only (the name must not split layers)."""
    return (
        params.base_latency,
        params.bandwidth,
        params.eager_threshold,
        params.rendezvous_latency,
        params.cache_capacity,
        params.mem_bandwidth,
        params.contention_factor,
    )
