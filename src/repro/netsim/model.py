"""Point-to-point cost model.

The paper rejects the plain Hockney and LogP models because real
middleware switches protocols with message size and behaves differently
per communication layer.  Our substrate therefore implements, for each
layer, the richer model Servet assumes it will encounter:

``T(s) = base + s / bw_eff(s)  [+ rendezvous handshake if s > eager]``

where ``bw_eff`` drops from the in-cache transfer bandwidth to a memory
bandwidth once the message no longer fits the layer's shared cache, and
``N`` concurrent transfers in the layer inflate the transfer term by
``1 + gamma * (N - 1)`` (serialization on the shared medium).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..errors import ConfigurationError, MeasurementError
from ..topology.machine import Cluster


@dataclass(frozen=True)
class LayerParams:
    """Cost parameters of one communication layer.

    Parameters
    ----------
    name:
        Layer identifier (a relationship key like ``"inter-node"``).
    base_latency:
        Zero-byte one-way latency in seconds.
    bandwidth:
        Asymptotic transfer bandwidth (bytes/s) while messages fit the
        layer's fast path (shared cache for intra-processor layers).
    eager_threshold:
        Message size (bytes) above which the middleware switches from
        the eager to the rendezvous protocol.
    rendezvous_latency:
        Extra handshake latency (seconds) paid by rendezvous messages.
    cache_capacity:
        Message size above which transfers spill to memory; ``None``
        disables the spill (the layer is memory-bound already).
    mem_bandwidth:
        Transfer bandwidth once spilled (must be set iff
        ``cache_capacity`` is set).
    contention_factor:
        ``gamma`` in the concurrency inflation ``1 + gamma * (N - 1)``.
    nic_count:
        Parallel interfaces serving this layer (multi-rail NICs).  ``N``
        concurrent transfers spread round-robin over the rails, so only
        ``ceil(N / nic_count)`` of them contend on any one rail; 1
        reproduces the single-medium model exactly.
    """

    name: str
    base_latency: float
    bandwidth: float
    eager_threshold: int = 64 * 1024
    rendezvous_latency: float = 0.0
    cache_capacity: int | None = None
    mem_bandwidth: float | None = None
    contention_factor: float = 0.0
    nic_count: int = 1

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.bandwidth <= 0:
            raise ConfigurationError(f"layer {self.name!r}: bad latency/bandwidth")
        if self.nic_count < 1:
            raise ConfigurationError(f"layer {self.name!r}: bad nic_count")
        if (self.cache_capacity is None) != (self.mem_bandwidth is None):
            raise ConfigurationError(
                f"layer {self.name!r}: cache_capacity and mem_bandwidth "
                "must be set together"
            )
        if self.mem_bandwidth is not None and self.mem_bandwidth <= 0:
            raise ConfigurationError(f"layer {self.name!r}: bad mem_bandwidth")
        if self.contention_factor < 0:
            raise ConfigurationError(f"layer {self.name!r}: bad contention_factor")
        if self.eager_threshold < 0 or self.rendezvous_latency < 0:
            raise ConfigurationError(f"layer {self.name!r}: bad protocol params")

    def effective_bandwidth(self, nbytes: int) -> float:
        """Transfer bandwidth for a message of ``nbytes``."""
        if (
            self.cache_capacity is not None
            and self.mem_bandwidth is not None
            and nbytes > self.cache_capacity
        ):
            return self.mem_bandwidth
        return self.bandwidth

    def is_eager(self, nbytes: int) -> bool:
        """True if a message of this size uses the eager protocol."""
        return nbytes <= self.eager_threshold

    def latency(self, nbytes: int, concurrency: int = 1) -> float:
        """One-way time (seconds) for ``nbytes`` with ``concurrency``
        simultaneous transfers in this layer (including this one)."""
        if nbytes < 0:
            raise MeasurementError("message size must be >= 0")
        if concurrency < 1:
            raise MeasurementError("concurrency must be >= 1")
        transfer = nbytes / self.effective_bandwidth(nbytes)
        # Transfers spread over nic_count rails; each rail carries
        # ceil(N / nic_count) of them.  nic_count == 1 is the original
        # single-medium inflation 1 + gamma * (N - 1).
        per_rail = -(-concurrency // self.nic_count)
        transfer *= 1.0 + self.contention_factor * (per_rail - 1)
        t = self.base_latency + transfer
        if not self.is_eager(nbytes):
            t += self.rendezvous_latency
        return t

    def point_to_point_bandwidth(self, nbytes: int) -> float:
        """Achieved bandwidth ``nbytes / T(nbytes)`` (Fig. 10c/d metric)."""
        if nbytes <= 0:
            raise MeasurementError("bandwidth needs a positive message size")
        return nbytes / self.latency(nbytes)


class CommConfig:
    """Maps pair relationships to :class:`LayerParams` for a cluster."""

    def __init__(self, layers: Mapping[str, LayerParams]) -> None:
        # An empty mapping is legal: a unicore machine has no pairs and
        # therefore no layers; any lookup will still fail loudly.
        self.layers = dict(layers)

    def canonical(self) -> str:
        """Deterministic value description (cache keys, fingerprints).

        Two configs with equal layer parameters produce equal strings
        regardless of construction order — :class:`LayerParams` is a
        frozen dataclass, so its repr is a value repr.
        """
        return ";".join(
            f"{key}={self.layers[key]!r}" for key in sorted(self.layers)
        )

    def params_for_relationship(self, relationship: str) -> LayerParams:
        """Parameters of the layer serving a given relationship key."""
        try:
            return self.layers[relationship]
        except KeyError:
            raise ConfigurationError(
                f"no communication parameters for relationship {relationship!r}; "
                f"configured: {sorted(self.layers)}"
            ) from None

    def params_for_pair(self, cluster: Cluster, a: int, b: int) -> LayerParams:
        """Parameters governing communication between global cores a, b."""
        return self.params_for_relationship(cluster.relationship(a, b))

    def validate_against(self, cluster: Cluster) -> None:
        """Raise if any occurring relationship lacks parameters."""
        missing = cluster.relationships() - set(self.layers)
        if missing:
            raise ConfigurationError(
                f"CommConfig for {cluster.name} missing layers: {sorted(missing)}"
            )
