"""Default communication configurations for the paper's systems.

The absolute numbers are model calibrations chosen to reproduce the
*relations* reported in Section IV-D:

- Dunnington (MPICH2 shared memory): three layers — shared-L2 pairs
  fastest, same-processor (shared L3) next, inter-processor slowest.
- Finis Terrae (HP MPI, SHM + InfiniBand): intra-node transfers about
  2x faster than inter-node at the L1 message size; 32 concurrent
  InfiniBand messages about 7x slower than an isolated one (Fig. 10b).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..topology.machine import Cluster, Machine
from ..units import KiB, MiB
from .model import CommConfig, LayerParams

US = 1e-6  # one microsecond in seconds
GB_S = 1e9


def _dunnington_config() -> CommConfig:
    return CommConfig(
        {
            "shared-l2": LayerParams(
                name="shared-l2",
                base_latency=0.30 * US,
                bandwidth=3.2 * GB_S,
                eager_threshold=64 * KiB,
                rendezvous_latency=0.25 * US,
                cache_capacity=int(1.5 * MiB),
                mem_bandwidth=1.4 * GB_S,
                contention_factor=0.05,
            ),
            "shared-l3": LayerParams(
                name="shared-l3",
                base_latency=0.55 * US,
                bandwidth=2.4 * GB_S,
                eager_threshold=64 * KiB,
                rendezvous_latency=0.25 * US,
                cache_capacity=6 * MiB,
                mem_bandwidth=1.3 * GB_S,
                contention_factor=0.08,
            ),
            "same-node": LayerParams(
                name="same-node",
                base_latency=1.0 * US,
                bandwidth=1.1 * GB_S,
                eager_threshold=64 * KiB,
                rendezvous_latency=0.4 * US,
                contention_factor=0.10,
            ),
        }
    )


def _finis_terrae_config() -> CommConfig:
    # Same-processor, same-cell and cross-cell shared-memory transfers
    # get identical parameters: the paper measured a *single* intra-node
    # layer on this machine, and Servet must discover that by clustering
    # equal latencies, not by being told.
    shm = dict(
        base_latency=2.0 * US,
        bandwidth=1.6 * GB_S,
        eager_threshold=64 * KiB,
        rendezvous_latency=1.0 * US,
        cache_capacity=4 * MiB,
        mem_bandwidth=1.0 * GB_S,
        contention_factor=0.06,
    )
    return CommConfig(
        {
            "same-cell": LayerParams(name="same-cell", **shm),
            "same-node": LayerParams(name="same-node", **shm),
            "inter-node": LayerParams(
                name="inter-node",
                base_latency=6.0 * US,
                bandwidth=0.9 * GB_S,
                eager_threshold=16 * KiB,
                rendezvous_latency=4.0 * US,
                contention_factor=0.26,
            ),
        }
    )


def _small_smp_config(cluster: Cluster) -> CommConfig:
    """Generic fallback: one layer per occurring relationship with
    latencies ordered by architectural distance."""
    order = {"shared-l1": 0, "shared-l2": 1, "shared-l3": 2,
             "same-cell": 3, "same-node": 4, "inter-node": 5}
    layers: dict[str, LayerParams] = {}
    for key in cluster.relationships():
        rank = order.get(key, 4)
        layers[key] = LayerParams(
            name=key,
            base_latency=(0.3 + 0.7 * rank) * US,
            bandwidth=(3.0 - 0.4 * rank) * GB_S,
            eager_threshold=64 * KiB,
            rendezvous_latency=0.3 * US,
            contention_factor=0.04 + 0.04 * rank,
        )
    return CommConfig(layers)


def default_comm_config(cluster: Cluster | Machine) -> CommConfig:
    """Communication model for a cluster built from a known machine."""
    if isinstance(cluster, Machine):
        cluster = Cluster(cluster.name, cluster, n_nodes=1)
    if not isinstance(cluster, Cluster):
        raise ConfigurationError(f"expected Cluster or Machine, got {cluster!r}")
    name = cluster.node.name
    if name == "dunnington":
        config = _dunnington_config()
    elif name == "finis_terrae":
        config = _finis_terrae_config()
    else:
        config = _small_smp_config(cluster)
    config.validate_against(cluster)
    return config
