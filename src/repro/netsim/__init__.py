"""Communication-performance models for the simulated cluster.

Models the communication middleware of a multicore cluster the way the
paper characterizes it: per *layer* (pairs of cores with similar costs —
shared-cache, intra-node shared memory, inter-node network), with a
piecewise-linear latency model including an eager/rendezvous protocol
switch, large-message bandwidth caps once buffers spill out of cache,
and a concurrency contention factor per layer.
"""

from .model import LayerParams, CommConfig
from .presets import default_comm_config
from .layers import true_layers

__all__ = ["LayerParams", "CommConfig", "default_comm_config", "true_layers"]
