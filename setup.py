"""Setuptools shim.

The offline environment this project targets ships setuptools but not
``wheel``, so PEP-517 editable installs (which build an editable wheel)
fail.  Keeping a classic ``setup.py`` lets ``pip install -e .`` fall
back to the legacy ``develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
