"""Describe your own machine in JSON and run Servet against it.

Shows the full adoption path for a system the library has no builder
for: construct (or hand-write) a description, save it, reload it, run
the suite, and check that the detection matches what you described.
The same file works with ``servet run --machine-file``.

Run with:  python examples/custom_machine.py
"""

import json
from pathlib import Path

from repro import Cluster, ServetSuite, SimulatedBackend, generic_smp
from repro.memsim import TLBSpec
from repro.core import detect_tlb_entries
from repro.topology import load_cluster, save_cluster
from repro.units import format_size


def main() -> None:
    # A hypothetical 8-core SMP: 64KB L1, 1MB L2 shared by pairs, 16MB
    # L3 shared by all, plus a 256-entry TLB.
    machine = generic_smp(
        name="hypothetical-octa",
        n_cores=8,
        levels=[
            ("64KB", 8, 1, 3.0),
            ("1MB", 16, 2, 12.0),
            ("16MB", 16, 8, 40.0),
        ],
        mem_latency=300.0,
        clock_hz=3.0e9,
        tlb=TLBSpec(entries=256, ways=8, walk_cycles=35.0),
    )
    cluster = Cluster(machine.name, machine)

    path = Path("hypothetical_octa.json")
    save_cluster(cluster, path)
    print(f"description written to {path} "
          f"({len(json.loads(path.read_text())['node']['levels'])} cache levels)")

    loaded, _ = load_cluster(path)
    backend = SimulatedBackend(loaded, seed=13)
    report = ServetSuite(backend).run()
    print()
    print(report.summary())

    detected = report.cache_sizes
    truth = list(machine.cache_sizes)
    print(
        "\ncache sizes "
        + ("MATCH the description" if detected == truth else "DIFFER!")
        + f": {[format_size(s) for s in detected]}"
    )
    tlb = detect_tlb_entries(backend, detected)
    print(f"TLB entries detected: {tlb.entries} (described: 256)")

    path.unlink()  # keep the repository clean after the demo


if __name__ == "__main__":
    main()
