"""Quickstart: run the full Servet suite on a simulated Dunnington node.

This is the paper's install-time workflow: run the four benchmarks
once, store the report, and let applications consult it later.

Run with:  python examples/quickstart.py
"""

from pathlib import Path

from repro import Advisor, ServetSuite, SimulatedBackend, dunnington


def main() -> None:
    # The system under test: 4x Xeon E7450 hexacore (paper Section IV).
    machine = dunnington()
    backend = SimulatedBackend(machine, seed=42)

    # Run all four benchmarks (Figs. 1-7 of the paper).
    suite = ServetSuite(backend)
    report = suite.run()
    print(report.summary())

    # Store the report; an autotuned application loads it at startup.
    path = Path("servet_report_dunnington.json")
    report.save(path)
    print(f"\nreport stored in {path}")

    # ...and asks questions like these (paper Section V):
    advisor = Advisor.from_file(path)
    print("\nAutotuning answers derived from the measurements:")
    print(f"  cache sizes (L1..): {report.cache_sizes}")
    print(f"  cores sharing L2 with core 0: {report.cache_sharing_group(0, 2)}")
    print(f"  cores sharing L3 with core 0: {report.cache_sharing_group(0, 3)}")
    plan = advisor.matmul_tiles(elem_size=8)
    print(f"  blocked-matmul tile sides per level: {plan.sides}")
    print(
        "  concurrent streaming cores worth using: "
        f"{advisor.max_useful_streaming_cores()}"
    )
    advice = advisor.should_aggregate(0, 3, n_messages=16, message_size=4096)
    print(
        "  16 x 4KB messages between cores 0 and 3: "
        + ("aggregate" if advice.aggregate else "send separately")
        + f" (predicted speedup {advice.speedup:.2f}x)"
    )

    path.unlink()  # keep the repository clean after the demo


if __name__ == "__main__":
    main()
