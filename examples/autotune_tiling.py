"""Autotuned tiling: detected cache sizes drive matmul blocking.

Section V: "Tiling is one of the most widely used optimization
techniques and our suite can help to this technique by providing all
the cache sizes in a portable way."

The example detects cache sizes on two machines with very different
hierarchies (Dempsey: 16 KB / 2 MB; Athlon: 64 KB / 512 KB), derives
per-level tile sides, and compares the modelled cache-line traffic of a
naive versus blocked matrix multiply — the same matrices, different
machines, different tiles, as an autotuned code would pick.

Run with:  python examples/autotune_tiling.py
"""

from repro import Advisor, ServetSuite, SimulatedBackend, athlon_3200, dempsey
from repro.autotune import matmul_traffic
from repro.units import format_size
from repro.viz import ascii_table


def main() -> None:
    n = 2048  # matrix dimension (float64)
    rows = []
    for build in (dempsey, athlon_3200):
        machine = build()
        backend = SimulatedBackend(machine, seed=7)
        report = ServetSuite(backend).run()
        advisor = Advisor(report)

        naive = matmul_traffic(n, None)
        for cache in report.caches:
            tile = advisor.matmul_tile(cache.level)
            tiled = matmul_traffic(n, tile)
            rows.append(
                (
                    machine.name,
                    f"L{cache.level} ({format_size(cache.size)})",
                    f"{tile} x {tile}",
                    f"{naive / tiled:.1f}x",
                )
            )

    print(
        ascii_table(
            ["machine", "target cache (detected)", "tile", "traffic reduction"],
            rows,
            title=f"Blocked {n} x {n} float64 matmul, tiles from Servet reports",
        )
    )
    print(
        "\nThe same code adapts its blocking to each machine purely from "
        "the measured cache sizes."
    )


if __name__ == "__main__":
    main()
