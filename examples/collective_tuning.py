"""Collective tuning: measured layers decide the broadcast algorithm.

The optimizations the paper motivates ([5]-[7]): hierarchical
collectives on SMP clusters.  The autotuner derives node groups from
the Servet report (never from documentation), fits a cost model to the
measured latency/scalability curves, simulates both algorithms on it,
and picks per message size.  We then execute both on the simulated
runtime to check the choices.

Run with:  python examples/collective_tuning.py
"""

from repro import ServetSuite, SimulatedBackend, finis_terrae
from repro.autotune import choose_bcast
from repro.netsim import default_comm_config
from repro.simmpi import World
from repro.simmpi.collectives import hierarchical_bcast
from repro.units import KiB, format_size, format_time
from repro.viz import ascii_table


def execute(cluster, placement, program) -> float:
    world = World(cluster, default_comm_config(cluster), placement)
    world.spawn_all(program)
    return world.run().makespan


def main() -> None:
    cluster = finis_terrae(2)
    print("Measuring the 2-node Finis Terrae cluster with Servet...")
    report = ServetSuite(SimulatedBackend(cluster, seed=7)).run()
    placement = list(range(32))

    rows = []
    for nbytes in (1 * KiB, 8 * KiB, 64 * KiB, 512 * KiB):
        choice = choose_bcast(report, placement, nbytes)
        groups = choice.groups

        def flat_prog(rank, nbytes=nbytes):
            yield from rank.bcast(0, nbytes)

        def hier_prog(rank, nbytes=nbytes, groups=groups):
            yield from hierarchical_bcast(rank, 0, nbytes, groups)

        flat_t = execute(cluster, placement, flat_prog)
        hier_t = execute(cluster, placement, hier_prog)
        chosen_t = hier_t if choice.algorithm == "hierarchical" else flat_t
        rows.append(
            (
                format_size(nbytes),
                choice.algorithm,
                format_time(flat_t),
                format_time(hier_t),
                f"{max(flat_t, hier_t) / chosen_t:.2f}x",
            )
        )

    print()
    print(
        ascii_table(
            ["msg size", "autotuner chose", "flat (executed)",
             "hierarchical (executed)", "win vs worst"],
            rows,
            title="32-rank broadcast on 2 Finis Terrae nodes",
        )
    )
    print(
        "\nGroups the autotuner derived from measurements alone: "
        f"{[(g[0], g[-1]) for g in choose_bcast(report, placement, 8 * KiB).groups]}"
        " (= the two nodes, never having been told what a node is)."
    )


if __name__ == "__main__":
    main()
