"""Best-effort native probe of the host machine.

The reproduction's calibration note is explicit: CPython cannot resolve
cache-level timing differences, so this is a demonstration of the
backend *interface* on real hardware rather than an accurate detector
(a C extension would be needed for that — see DESIGN.md §2).  The
mcalibrator curve is printed so you can judge for yourself how much of
the hierarchy survives the interpreter overhead.

Run with:  python examples/native_probe.py
"""

from repro import NativeBackend
from repro.core import run_mcalibrator
from repro.units import KiB, MiB, format_size
from repro.viz import ascii_chart


def main() -> None:
    backend = NativeBackend(repeats=4)
    print(f"probing {backend.name}: {backend.n_cores} cores, "
          f"page {format_size(backend.page_size)}")

    mres = run_mcalibrator(
        backend,
        min_cache=4 * KiB,
        max_cache=16 * MiB,
        samples=1,
    )
    print(
        ascii_chart(
            [float(s) for s in mres.sizes],
            {"ns/access": list(mres.cycles)},
            logx=True,
            x_label="array size (bytes)",
            y_label="time per access",
            title="native mcalibrator curve (indicative only)",
            width=64,
            height=12,
        )
    )
    grads = mres.gradients
    big = [
        (format_size(int(mres.sizes[i])), round(float(g), 2))
        for i, g in enumerate(grads)
        if g > 1.3
    ]
    print("\nsizes where the per-access time jumps >30%:", big or "none visible")
    print(
        "\n(Interpreter overhead dominates below L2; expect only the "
        "largest cache boundary, if any, to be visible.)"
    )


if __name__ == "__main__":
    main()
