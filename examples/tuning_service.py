"""Tuning service: measure once, consult forever, refresh incrementally.

The workflow the service layer exists for: a cluster is characterised
once with the full Servet suite and the report is filed in a
fingerprint-keyed registry.  Applications then ask a cached
:class:`~repro.service.TuningService` for advice at run time — no
re-measurement.  When the machine changes (here: the front-side bus
loses half its bandwidth), the staleness analysis maps the changed
fingerprint inputs to the minimal set of affected suite phases and
re-measures only those, merging everything else from the stored report.

Run with:  python examples/tuning_service.py
"""

import dataclasses
import tempfile

from repro import ReportRegistry, SimulatedBackend, dunnington, fingerprint_of
from repro.core import ServetSuite
from repro.service import (
    MatmulTileQuery,
    StreamingCoresQuery,
    TuningService,
    incremental_refresh,
    run_harness,
)


def degrade_fsb(machine):
    """The same Dunnington node after losing half its FSB bandwidth."""
    root = machine.bandwidth_root
    return dataclasses.replace(
        machine, bandwidth_root=dataclasses.replace(root, capacity=root.capacity / 2)
    )


def main() -> None:
    registry_dir = tempfile.mkdtemp(prefix="servet-registry-")
    registry = ReportRegistry(registry_dir)

    # --- 1. install: measure the machine once, file the report -------
    machine = dunnington()
    backend = SimulatedBackend(machine, seed=42, noise=0.0)
    print(f"Measuring {machine.name} ({machine.n_cores} cores)...")
    report = ServetSuite(backend).run()
    fp = fingerprint_of(backend)
    entry = registry.put(fp, report)
    print(f"registered as {fp.short} v{entry.version}")

    # --- 2. consult: serve cached advice out of the registry ---------
    service = TuningService.from_registry(registry)
    for level in (1, 2, 3):
        answer = service.query(MatmulTileQuery(level=level))
        print(f"matmul tile for L{level}: {answer['side']} x {answer['side']}")
    cores = service.query(StreamingCoresQuery(group_index=0))
    print(f"streaming cores worth using: {cores['cores']}")

    result = run_harness(service, clients=4, queries_per_client=250, seed=11)
    metrics = service.metrics()
    print(
        f"harness: {result.queries} queries, {result.mismatches} mismatches, "
        f"hit rate {metrics['hit_rate']:.1%}"
    )

    # --- 3. refresh: the machine changed, re-measure only what moved -
    degraded = degrade_fsb(machine)
    new_backend = SimulatedBackend(degraded, seed=42, noise=0.0)
    refresh = incremental_refresh(registry, new_backend)
    print(f"changed inputs: {list(refresh.staleness.changed)}")
    print(f"stale phases: {list(refresh.staleness.affected)}")
    print(f"refresh mode: {refresh.mode}")
    planner = refresh.report.to_dict()["planner"]
    print(f"probes issued by the refresh: {planner['issued']}")

    # The refreshed report picks up the degraded memory system...
    old_bw = report.memory_levels[0].bandwidth
    new_bw = refresh.report.memory_levels[0].bandwidth
    print(f"overhead-level bandwidth: {old_bw / 1e9:.2f}GB/s -> {new_bw / 1e9:.2f}GB/s")
    # ...while the untouched sections carry over from the stored report.
    assert [c.size for c in refresh.report.caches] == [
        c.size for c in report.caches
    ], "cache sections should be reused, not re-measured"
    print("cache hierarchy reused from the stored report")

    print(f"registry now holds {len(registry.entries())} report(s)")


if __name__ == "__main__":
    main()
