"""Survey: run Servet on every machine of the paper's evaluation.

Reproduces the Section IV validation sweep — the suite must detect the
documented hierarchy of each system without being told anything but
"here is a backend you can measure".

Run with:  python examples/cluster_survey.py
"""

from repro import ServetSuite, SimulatedBackend, build_machine, builder_names
from repro.units import format_bandwidth, format_size, format_time
from repro.viz import ascii_table


def main() -> None:
    rows = []
    for name in builder_names():
        machine = build_machine(name)
        backend = SimulatedBackend(machine, seed=5)
        report = ServetSuite(backend).run()

        detected = " / ".join(format_size(s) for s in report.cache_sizes)
        truth = " / ".join(format_size(s) for s in machine.cache_sizes)
        shared = ", ".join(
            f"L{c.level}x{len(c.sharing_groups[0]) if c.sharing_groups else 1}"
            for c in report.caches
            if not c.private
        ) or "all private"
        virtual, _ = (
            sum(v for v, _ in report.timings.values()),
            None,
        )
        rows.append(
            (
                name,
                detected,
                "OK" if report.cache_sizes == list(machine.cache_sizes) else truth,
                shared,
                f"{len(report.memory_levels)}",
                f"{len(report.comm_layers)}",
                format_bandwidth(report.memory_reference),
                format_time(virtual),
            )
        )

    print(
        ascii_table(
            [
                "machine",
                "caches detected",
                "vs spec",
                "shared caches",
                "mem levels",
                "comm layers",
                "ref bw",
                "suite time (virtual)",
            ],
            rows,
            title="Servet survey over the paper's four systems",
        )
    )


if __name__ == "__main__":
    main()
