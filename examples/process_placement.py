"""Measured-layer-driven process placement, validated by execution.

The paper's Section V: "The information about the possible overheads
can be used to automatically map the processes to certain cores in
order to avoid either communication or memory access bottlenecks."

This example:

1. runs Servet on a 2-node Finis Terrae cluster to get the report;
2. builds a communication-heavy application (a 1-D halo exchange ring
   with heavy nearest-neighbour traffic);
3. derives an optimized placement from the *measured* layers;
4. validates by actually executing the application on the simulated
   MPI runtime under each placement and comparing virtual times.

Run with:  python examples/process_placement.py
"""

import numpy as np

from repro import Advisor, ServetSuite, SimulatedBackend, finis_terrae
from repro.autotune import compact_placement, scatter_placement
from repro.netsim import default_comm_config
from repro.simmpi import Rank, World
from repro.units import KiB, format_time
from repro.viz import ascii_table

N_RANKS = 16
HALO_BYTES = 32 * KiB
ITERATIONS = 50


def ring_comm_matrix(n: int) -> np.ndarray:
    """Messages per iteration: each rank exchanges halos with both
    neighbours (non-periodic chain keeps the pattern mappable)."""
    matrix = np.zeros((n, n))
    for i in range(n - 1):
        matrix[i, i + 1] = 1.0
        matrix[i + 1, i] = 1.0
    return matrix


def halo_program(rank: Rank):
    """One rank of the halo-exchange application."""
    left, right = rank.id - 1, rank.id + 1
    for it in range(ITERATIONS):
        # Post exchanges in a deadlock-free order (even send first).
        for neighbour in (right, left):
            if not (0 <= neighbour < rank.size):
                continue
            if rank.id % 2 == 0:
                yield rank.send(neighbour, HALO_BYTES, tag=it)
                yield rank.recv(neighbour, tag=it)
            else:
                yield rank.recv(neighbour, tag=it)
                yield rank.send(neighbour, HALO_BYTES, tag=it)
        yield rank.compute(5e-6)  # local stencil work


def run_placement(cluster, config, placement) -> float:
    """Execute the application under a placement; return virtual time."""
    world = World(cluster, config, placement)
    world.spawn_all(halo_program)
    return world.run().makespan


def run_scenario(title: str, cluster, n_ranks: int, seed: int) -> None:
    config = default_comm_config(cluster)
    print(f"Running Servet on {title}...")
    backend = SimulatedBackend(cluster, seed=seed)
    report = ServetSuite(backend).run()
    advisor = Advisor(report)

    matrix = ring_comm_matrix(n_ranks)
    placements = {
        f"compact (cores 0..{n_ranks - 1})": compact_placement(n_ranks),
        "scatter (striped)": scatter_placement(n_ranks, cluster.n_cores),
    }
    optimized = advisor.place(matrix, message_size=HALO_BYTES)
    placements["servet-optimized"] = optimized.placement

    rows = []
    for name, placement in placements.items():
        modelled = advisor.placement_cost(placement, matrix, HALO_BYTES)
        measured = run_placement(cluster, config, placement)
        rows.append((name, format_time(modelled), format_time(measured)))

    print()
    print(
        ascii_table(
            ["placement", "modelled cost/iter", "executed virtual time"],
            rows,
            title=f"{n_ranks}-rank halo exchange on {title}, "
            f"{ITERATIONS} iterations",
        )
    )
    print(f"  optimized placement: {optimized.placement}\n")


def main() -> None:
    from repro import Cluster, dunnington

    # Dunnington's three intra-node layers (shared-L2 < shared-L3 <
    # inter-processor) give the optimizer real choices: the OS core
    # numbering hides the fast pairs at (c, c+12).
    run_scenario(
        "the Dunnington node", Cluster("dunnington", dunnington()), 12, seed=11
    )
    # On Finis Terrae the intra-node layer is uniform, so the win is
    # simply keeping the ring off the InfiniBand as much as possible.
    run_scenario("the 2-node Finis Terrae cluster", finis_terrae(2), 16, seed=11)
    print(
        "The optimizer only saw Servet's measurements, yet its placements "
        "win (or tie compact) on the executed runtime too."
    )


if __name__ == "__main__":
    main()
