"""Section IV-A — cache size validation on all four machines.

Paper: "The benchmark ... was tested in these four machines (10 cache
sizes in total) and all the estimates agreed with the specifications."
This bench regenerates that claim as a table and requires a perfect
score.
"""

import pytest

from repro.backends import SimulatedBackend
from repro.core.cache_size import detect_caches
from repro.topology import athlon_3200, dempsey, dunnington, finis_terrae_node
from repro.units import format_size
from repro.viz import ascii_table

MACHINES = (dunnington, finis_terrae_node, dempsey, athlon_3200)


def test_section4a_validation_table(figure, benchmark):
    backend = SimulatedBackend(dempsey(), seed=3)
    benchmark.pedantic(lambda: detect_caches(backend), rounds=3, iterations=1)

    rows = []
    correct = 0
    total = 0
    for build in MACHINES:
        machine = build()
        result = detect_caches(SimulatedBackend(machine, seed=3))
        for level, (got, want) in enumerate(
            zip(result.sizes, machine.cache_sizes), start=1
        ):
            total += 1
            ok = got == want
            correct += ok
            rows.append(
                (
                    machine.name,
                    f"L{level}",
                    format_size(want),
                    format_size(got),
                    result.levels[level - 1].method,
                    "OK" if ok else "WRONG",
                )
            )
    table = ascii_table(
        ["machine", "level", "specification", "estimate", "method", "verdict"],
        rows,
        title=f"Section IV-A: cache size estimates ({correct}/{total} correct; "
        "paper: 10/10)",
    )
    figure("Section IV-A cache size validation", table)
    assert correct == total == 10
