"""Ablation — OS page placement and the probabilistic algorithm.

The paper's central claim against prior work (X-Ray, P-Ray, Yotov et
al.): physically indexed caches are only detectable positionally when
the OS colors pages (or hands out superpages); under Linux-style random
placement the cliff smears and the binomial model is required.  This
ablation runs the same detector under the three page policies and shows
(a) the detector adapts its method automatically (Fig. 4's dispatch)
and (b) naive positional reading fails exactly when the paper says it
does.
"""

import numpy as np
import pytest

from repro.backends import SimulatedBackend
from repro.core.cache_size import detect_caches
from repro.core.mcalibrator import run_mcalibrator
from repro.memsim.paging import ColoredPaging, ContiguousPaging, RandomPaging
from repro.topology import dempsey
from repro.units import MiB, format_size
from repro.viz import ascii_table


def policies():
    machine = dempsey()
    l2 = machine.levels[1].spec
    colors = l2.page_colors(machine.page_size)
    return {
        "random (Linux)": RandomPaging(),
        "page coloring": ColoredPaging(n_colors=colors),
        "contiguous (superpage)": ContiguousPaging(),
    }


def naive_positional_l2(backend) -> int:
    """What X-Ray-style positional reading would report for the L2:
    the size at the largest gradient beyond the first (L1) cliff."""
    mres = run_mcalibrator(backend, samples=3)
    grads = np.array(mres.gradients)
    l1_idx = int(np.argmax(grads > 1.5))  # first cliff = L1
    rest = grads.copy()
    rest[: l1_idx + 2] = 0.0
    return int(mres.sizes[int(np.argmax(rest))])


def test_paging_ablation(figure, benchmark):
    machine = dempsey()
    backend = SimulatedBackend(machine, paging=ContiguousPaging(), seed=5)
    benchmark.pedantic(lambda: detect_caches(backend), rounds=3, iterations=1)

    rows = []
    outcomes = {}
    for name, policy in policies().items():
        be = SimulatedBackend(machine, paging=policy, seed=5)
        result = detect_caches(be)
        naive = naive_positional_l2(SimulatedBackend(machine, paging=policy, seed=5))
        outcomes[name] = (result, naive)
        rows.append(
            (
                name,
                " / ".join(format_size(s) for s in result.sizes),
                result.levels[1].method if len(result.levels) > 1 else "-",
                format_size(naive),
                "OK" if naive == 2 * MiB else "WRONG",
            )
        )
    table = ascii_table(
        [
            "page policy",
            "servet estimate",
            "L2 method",
            "naive positional L2",
            "naive verdict",
        ],
        rows,
        title="Ablation: page placement policy (Dempsey, true L2 = 2MB)",
    )
    figure("Ablation page placement", table)

    # Servet is right under every policy...
    for name, (result, _) in outcomes.items():
        assert result.sizes == [16 * 1024, 2 * MiB], name
    # ...and adapts its method: positional under coloring/superpages,
    # probabilistic under random placement.
    assert outcomes["page coloring"][0].levels[1].method == "positional"
    assert outcomes["contiguous (superpage)"][0].levels[1].method == "positional"
    assert outcomes["random (Linux)"][0].levels[1].method.startswith("probabilistic")
    # The naive reader only survives when pages behave nicely.
    assert outcomes["page coloring"][1] == 2 * MiB
    assert outcomes["contiguous (superpage)"][1] == 2 * MiB
    assert outcomes["random (Linux)"][1] != 2 * MiB
