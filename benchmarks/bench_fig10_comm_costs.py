"""Fig. 10 — communication cost determination.

Paper panels:
(a) message latency core 0 -> k at the L1 message size — 3 layers on
    Dunnington (L2 partner fastest), intra-node ~2x faster than
    inter-node on Finis Terrae (2 nodes, 32 cores);
(b) latency of concurrent messages — moderate scalability, an
    InfiniBand message with 31 others ~7x slower than alone;
(c, d) point-to-point bandwidth vs message size per layer.
"""

import pytest

from repro.backends import SimulatedBackend
from repro.core.comm_costs import detect_comm_layers, run_comm_costs
from repro.topology import Cluster, dunnington, finis_terrae
from repro.units import KiB, format_size, format_time
from repro.viz import ascii_chart, ascii_table


@pytest.fixture(scope="module")
def dn_costs():
    backend = SimulatedBackend(dunnington(), seed=42)
    return run_comm_costs(backend, 32 * KiB)


@pytest.fixture(scope="module")
def ft_costs():
    backend = SimulatedBackend(finis_terrae(2), seed=42)
    return run_comm_costs(backend, 16 * KiB)


def test_fig10a_latency_from_core0(dn_costs, ft_costs, figure, benchmark):
    backend = SimulatedBackend(dunnington(), seed=1)
    benchmark.pedantic(
        lambda: detect_comm_layers(backend, 32 * KiB, cores=list(range(6))),
        rounds=3,
        iterations=1,
    )
    rows = []
    for other in range(1, 32):
        dn = dn_costs.pair_latencies.get((0, other))
        ft = ft_costs.pair_latencies.get((0, other))
        rows.append(
            (
                f"0 -> {other}",
                format_time(dn) if dn else "-",
                format_time(ft) if ft else "-",
            )
        )
    table = ascii_table(
        ["pair", "dunnington (32KB msg)", "finis_terrae (16KB msg)"],
        rows,
        title="Fig. 10(a): message-passing latency (L1 message size)",
    )
    figure("Fig 10a message latency", table)

    # Dunnington: 3 layers with the documented pair counts; core 12 is
    # the fastest partner of core 0.
    assert [len(l.pairs) for l in dn_costs.layers] == [12, 48, 216]
    fastest_partner = min(
        ((other, dn_costs.pair_latencies[(0, other)]) for other in range(1, 24)),
        key=lambda kv: kv[1],
    )[0]
    assert fastest_partner == 12
    # Finis Terrae: two layers; inter-node ~2x intra-node.
    assert ft_costs.n_layers == 2
    ratio = ft_costs.layers[1].latency / ft_costs.layers[0].latency
    assert 1.6 < ratio < 2.4


def test_fig10b_latency_scalability(dn_costs, ft_costs, figure, benchmark):
    ft = SimulatedBackend(finis_terrae(2), seed=1)
    benchmark.pedantic(
        lambda: ft.concurrent_message_latency([(i, 16 + i) for i in range(8)], 16 * KiB),
        rounds=3, iterations=1,
    )
    series = {}
    rows = []
    # Dunnington inter-processor layer and FT InfiniBand layer.
    dn_curve = dn_costs.scalability[2]
    ft_curve = ft_costs.scalability[1]
    for n, latency, factor in ft_curve:
        rows.append(("finis_terrae IB", n, format_time(latency), f"{factor:.2f}x"))
    for n, latency, factor in dn_curve:
        rows.append(("dunnington inter-proc", n, format_time(latency), f"{factor:.2f}x"))
    table = ascii_table(
        ["interconnect", "concurrent msgs", "worst latency", "slowdown"],
        rows,
        title="Fig. 10(b): latency scalability (L1 message size)",
    )
    figure("Fig 10b latency scalability", table)

    n, _, factor = ft_curve[-1]
    assert n == 32
    assert 5.5 < factor < 8.5  # paper: "7 times slower"
    # Dunnington: moderate scalability — grows, but stays far below
    # InfiniBand's collapse at the same message count.
    assert dn_curve[-1][2] > 1.3


def test_fig10c_bandwidth_dunnington(dn_costs, figure, benchmark):
    dn = SimulatedBackend(dunnington(), seed=1)
    benchmark.pedantic(lambda: dn.message_latency(0, 12, 1 * KiB * 1024), rounds=5, iterations=1)
    labels = {0: "shared-L2", 1: "shared-L3", 2: "inter-processor"}
    xs = [s for s, _, _ in dn_costs.characterization[0]]
    chart = ascii_chart(
        [float(x) for x in xs],
        {
            labels[i]: [bw for _, _, bw in curve]
            for i, curve in enumerate(dn_costs.characterization)
        },
        logx=True,
        x_label="message size",
        y_label="bandwidth (B/s)",
        title="Fig. 10(c): point-to-point bandwidth (Dunnington)",
    )
    rows = [
        (
            format_size(xs[k]),
            *(f"{curve[k][2] / 1e9:.2f} GB/s" for curve in dn_costs.characterization),
        )
        for k in range(len(xs))
    ]
    table = ascii_table(
        ["msg size", "shared-L2", "shared-L3", "inter-processor"], rows
    )
    figure("Fig 10c p2p bandwidth dunnington", chart + "\n\n" + table)

    # Mid-size messages: cache-sharing layers beat the memory path.
    mid = xs.index(64 * KiB)
    bws = [curve[mid][2] for curve in dn_costs.characterization]
    assert bws[0] > bws[1] > bws[2]
    # Large messages spill out of the shared caches: the shared-L2
    # layer's advantage collapses toward the memory-bandwidth regime.
    last = -1
    ratio_mid = bws[0] / dn_costs.characterization[2][mid][2]
    ratio_large = (
        dn_costs.characterization[0][last][2]
        / dn_costs.characterization[2][last][2]
    )
    assert ratio_large < ratio_mid


def test_fig10d_bandwidth_finis_terrae(ft_costs, figure, benchmark):
    ft = SimulatedBackend(finis_terrae(2), seed=1)
    benchmark.pedantic(lambda: ft.message_latency(0, 16, 1 * KiB * 1024), rounds=5, iterations=1)
    labels = {0: "intra-node (SHM)", 1: "inter-node (IB)"}
    xs = [s for s, _, _ in ft_costs.characterization[0]]
    chart = ascii_chart(
        [float(x) for x in xs],
        {
            labels[i]: [bw for _, _, bw in curve]
            for i, curve in enumerate(ft_costs.characterization)
        },
        logx=True,
        x_label="message size",
        y_label="bandwidth (B/s)",
        title="Fig. 10(d): point-to-point bandwidth (Finis Terrae)",
    )
    rows = [
        (
            format_size(xs[k]),
            *(f"{curve[k][2] / 1e9:.2f} GB/s" for curve in ft_costs.characterization),
        )
        for k in range(len(xs))
    ]
    table = ascii_table(["msg size", "intra-node (SHM)", "inter-node (IB)"], rows)
    figure("Fig 10d p2p bandwidth finis terrae", chart + "\n\n" + table)

    # SHM beats InfiniBand at every size; both rise with message size
    # (latency amortization), the headline fact aggregation relies on.
    for k in range(len(xs)):
        assert ft_costs.characterization[0][k][2] > ft_costs.characterization[1][k][2]
    ib = [bw for _, _, bw in ft_costs.characterization[1]]
    assert ib[-1] > 3 * ib[0]
