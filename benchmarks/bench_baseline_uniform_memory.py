"""Baseline — P-Ray's uniform intra-node memory assumption.

Section II: "Another shortcoming of P-Ray is that it assumes a uniform
cost in the intra-node memory access.  Our experimental results show
... that in practice it is not true."  This bench quantifies what the
assumption costs: placing bandwidth-bound ranks compactly (any
placement is as good as any other if memory is uniform) versus with
Servet's measured overhead groups, evaluated by the achieved aggregate
copy bandwidth on the substrate.
"""

import pytest

from repro.autotune import Advisor, bandwidth_aware_placement
from repro.backends import SimulatedBackend
from repro.core import ServetSuite
from repro.topology import finis_terrae_node
from repro.units import format_bandwidth
from repro.viz import ascii_table


@pytest.fixture(scope="module")
def setup():
    machine = finis_terrae_node()
    backend = SimulatedBackend(machine, seed=42, noise=0.0)
    report = ServetSuite(SimulatedBackend(machine, seed=42)).run()
    return backend, report


def aggregate_bw(backend, cores) -> float:
    return sum(backend.copy_bandwidth(list(cores)).values())


def test_streaming_placement_vs_uniform_assumption(setup, figure, benchmark):
    backend, report = setup
    advisor = Advisor(report)
    benchmark.pedantic(
        lambda: bandwidth_aware_placement(report, 4), rounds=5, iterations=1
    )

    rows = []
    gains = {}
    for n in (2, 3, 4, 8):
        uniform = list(range(n))  # P-Ray-style: any cores will do
        servet = advisor.streaming_placement(n)
        bw_uniform = aggregate_bw(backend, uniform)
        bw_servet = aggregate_bw(backend, servet)
        gains[n] = bw_servet / bw_uniform
        rows.append(
            (
                n,
                f"{uniform}",
                format_bandwidth(bw_uniform),
                f"{servet}",
                format_bandwidth(bw_servet),
                f"{gains[n]:.2f}x",
            )
        )
    table = ascii_table(
        [
            "streaming ranks",
            "uniform-assumption cores",
            "aggregate bw",
            "servet cores",
            "aggregate bw",
            "gain",
        ],
        rows,
        title="Baseline: memory-blind (P-Ray-style) vs measured-overhead "
        "placement of bandwidth-bound ranks (Finis Terrae node)",
    )
    figure("Baseline uniform memory assumption", table)

    # Two ranks: Servet picks cross-cell cores and keeps full bandwidth;
    # the uniform assumption lands both on one bus and loses ~35%.
    assert gains[2] > 1.3
    # The gain persists (but shrinks) as the node fills up.
    assert gains[4] > 1.2
    assert gains[8] > 1.05
    # With all 16 cores there is nothing left to dodge: both equal.
    all_bw_a = aggregate_bw(backend, list(range(16)))
    all_bw_b = aggregate_bw(backend, advisor.streaming_placement(16))
    assert all_bw_a == pytest.approx(all_bw_b, rel=1e-6)