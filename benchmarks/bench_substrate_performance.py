"""Substrate performance — how fast is the simulator itself?

Not a paper figure: these benches track the wall-clock cost of the
substrate's hot paths (the analytic traversal engine, the bandwidth
allocator, the event runtime), so a regression that would make the
figure benches crawl is caught here with real pytest-benchmark numbers.
"""

import pytest

from repro.backends import SimulatedBackend
from repro.memsim import Traversal, TraversalEngine, allocate_bandwidth
from repro.netsim import default_comm_config
from repro.simmpi import World, pingpong_latency
from repro.topology import Cluster, dunnington, finis_terrae, finis_terrae_node
from repro.units import KiB, MiB


def test_perf_traversal_engine_large_array(benchmark):
    engine = TraversalEngine(dunnington())
    benchmark(lambda: engine.single(24 * MiB, 1024, rng=1))


def test_perf_traversal_engine_concurrent_pair(benchmark):
    engine = TraversalEngine(dunnington())
    benchmark(
        lambda: engine.run(
            [Traversal(0, 8 * MiB, 1024), Traversal(12, 8 * MiB, 1024)], rng=1
        )
    )


def test_perf_bandwidth_allocator_full_node(benchmark):
    machine = finis_terrae_node()
    demands = {c: machine.core_stream_bw for c in range(16)}
    benchmark(lambda: allocate_bandwidth(machine.bandwidth_root, demands))


def test_perf_pingpong(benchmark):
    cluster = Cluster("dunnington", dunnington())
    config = default_comm_config(cluster)
    benchmark(lambda: pingpong_latency(cluster, config, 0, 3, 32 * KiB))


def test_perf_des_allgather_32_ranks(benchmark):
    cluster = finis_terrae(2)
    config = default_comm_config(cluster)

    def run():
        world = World(cluster, config, list(range(32)))

        def prog(rank):
            yield from rank.allgather(4 * KiB)

        world.spawn_all(prog)
        return world.run().messages

    assert run() == 32 * 31
    benchmark(run)


def test_perf_backend_measurement(benchmark):
    backend = SimulatedBackend(dunnington(), seed=1)
    benchmark(lambda: backend.traversal_cycles([(0, 4 * MiB)], 1024))
