"""Co-scheduling advisor vs interleaved cache simulation.

The advisor ranks placements from composed reuse-CDFs alone — it never
simulates an interleaved run.  This bench is the acceptance check for
that shortcut: every pairing of the fixed four-workload mix onto two
shared-L2 instances of dunnington is also ground-truthed by pushing
the actual access streams through ``SetAssociativeCache`` under the
round-robin interleaving the model assumes, and the predicted ordering
must match the simulated ordering.  The payoff being bought is also
recorded: the advisor answers in milliseconds where the simulation
takes seconds, and the engine's reuse-recorder hook costs nothing when
disabled.

Results land in ``BENCH_coschedule.json`` at the repository root.
Quick mode (``REPRO_BENCH_QUICK=1``, used by CI) shrinks every stream
8x and scales the modeled capacity to match; the ordering bar is the
same.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import ServetSuite, SimulatedBackend, dunnington
from repro.memsim import Traversal, TraversalEngine
from repro.memsim.cache import SetAssociativeCache
from repro.units import KiB
from repro.viz import ascii_table
from repro.workload import (
    CachePressureModel,
    TraversalReuseRecorder,
    co_schedule,
    parse_workload,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_coschedule.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Four archetypes with equal stream lengths: a hog bigger than the
#: shared cache, a tiny cache-friendly kernel, and two mid-size
#: victims.  The full mix is the golden-test mix (163840 accesses per
#: stream on the real dunnington L2); quick mode shrinks streams 8x
#: and models a 1/8 capacity so the contention structure is preserved.
if QUICK:
    MIX = (
        "streaming:lines=10240,rounds=2",
        "blocked:lines=256,block=64,repeats=16,rounds=5",
        "zipf:accesses=20480,lines=4096,s=1.1",
        "stencil:lines=2048,halo=2,sweeps=2",
    )
    CAPACITY_LINES = 6144  # dunnington L2 (3 MB / 64 B) / 8
else:
    MIX = (
        "streaming:lines=81920,rounds=2",
        "blocked:lines=2048,block=256,repeats=16,rounds=5",
        "zipf:accesses=163840,lines=32768,s=1.1",
        "stencil:lines=16384,halo=2,sweeps=2",
    )
    CAPACITY_LINES = None  # use the detected L2 capacity

SEED = 0
WAYS = 8


@pytest.fixture(scope="module")
def report():
    backend = SimulatedBackend(dunnington(), seed=42, noise=0.0)
    return ServetSuite(backend).run()


def simulated_miss_ratios(streams: dict, capacity: int) -> dict:
    """Ground truth: round-robin interleave through one shared cache."""
    cache = SetAssociativeCache(num_sets=capacity // WAYS, ways=WAYS)
    length = len(next(iter(streams.values())))
    assert all(len(a) == length for a in streams.values())
    hits = {name: 0 for name in streams}
    for i in range(length):
        for name, stream in streams.items():
            line = int(stream[i])
            if cache.access(line % cache.num_sets, (name, line)):
                hits[name] += 1
    return {name: 1.0 - hits[name] / length for name in streams}


def test_prediction_ordering_matches_simulation(report, figure):
    model = (
        CachePressureModel(capacity_lines=CAPACITY_LINES) if QUICK else None
    )
    t0 = time.perf_counter()
    advice = co_schedule(
        report, MIX, seed=SEED, level=2, instances=2, top=3, model=model
    )
    advise_wall = time.perf_counter() - t0
    # A second call hits the profile memo: this is the steady-state
    # cost of re-ranking (new mixes over known workloads, more
    # instances, ...), which is what the simulation alternative pays
    # per pairing, every time.
    t0 = time.perf_counter()
    co_schedule(
        report, MIX, seed=SEED, level=2, instances=2, top=3, model=model
    )
    advise_warm_wall = time.perf_counter() - t0
    capacity = advice.provenance["model"]["capacity_lines"]
    cost = CachePressureModel(capacity_lines=capacity)

    streams = {
        spec: parse_workload(spec).lines(SEED) for spec in advice.names
    }
    t0 = time.perf_counter()
    solo = {
        spec: simulated_miss_ratios({spec: stream}, capacity)[spec]
        for spec, stream in streams.items()
    }
    sim_worst = []
    for option in advice.options:
        worst = 1.0
        for block in option.blocks:
            specs = [advice.names[i] for i in block]
            corun = simulated_miss_ratios(
                {s: streams[s] for s in specs}, capacity
            )
            for s in specs:
                worst = max(
                    worst,
                    cost.cycles_per_access(corun[s])
                    / cost.cycles_per_access(solo[s]),
                )
        sim_worst.append(worst)
    sim_wall = time.perf_counter() - t0

    rows = []
    for rank, (option, sim) in enumerate(zip(advice.options, sim_worst), 1):
        blocks = " | ".join(
            "+".join(advice.names[i].split(":")[0] for i in block)
            for block in option.blocks
        )
        rows.append(
            (str(rank), blocks, f"{option.worst_slowdown:.3f}", f"{sim:.3f}")
        )
    table = ascii_table(
        ["rank", "pairing", "predicted worst", "simulated worst"],
        rows,
        title=f"Co-schedule ranking vs simulation (L2, {capacity} lines)",
    )
    figure("Co-scheduling advisor vs interleaved simulation", table)

    payload = {
        "benchmark": "coschedule",
        "quick": QUICK,
        "mix": list(advice.names),
        "capacity_lines": capacity,
        "predicted_worst": [o.worst_slowdown for o in advice.options],
        "simulated_worst": sim_worst,
        "ordering_matches": True,
        "advise_wall_seconds": advise_wall,
        "advise_warm_wall_seconds": advise_warm_wall,
        "simulate_wall_seconds": sim_wall,
        "advisor_warm_speedup": sim_wall / max(advise_warm_wall, 1e-9),
    }

    # The acceptance bar: the cheap prediction ranks pairings the same
    # way the expensive ground-truth simulation does.
    order = sorted(range(len(sim_worst)), key=lambda i: sim_worst[i])
    assert order == list(range(len(sim_worst))), (
        f"advisor ordering diverges from simulation: "
        f"predicted {[o.worst_slowdown for o in advice.options]}, "
        f"simulated {sim_worst}"
    )
    assert len(advice.options) == 3  # all pairings of 4 onto 2x2

    merged = {}
    if BENCH_PATH.exists():
        merged = json.loads(BENCH_PATH.read_text())
    merged.update(payload)
    BENCH_PATH.write_text(json.dumps(merged, indent=2) + "\n")


def test_recorder_hook_overhead(figure):
    """The engine's recorder hook must cost ~nothing when disabled."""
    machine = dunnington()
    traversals = [Traversal(0, 256 * KiB, 64), Traversal(1, 512 * KiB, 64)]
    repeats = 5 if QUICK else 20

    def timed(recorder):
        engine = TraversalEngine(
            machine, outcome_cache=None, reuse_recorder=recorder
        )
        t0 = time.perf_counter()
        for _ in range(repeats):
            result = engine.run(traversals, rng=0)
        return time.perf_counter() - t0, result

    disabled_wall, disabled = timed(None)
    enabled_wall, enabled = timed(TraversalReuseRecorder())
    # Recording must not perturb the measurement itself.
    assert enabled.cycles_per_access == disabled.cycles_per_access

    ratio = enabled_wall / max(disabled_wall, 1e-9)
    figure(
        "Reuse-recorder overhead",
        ascii_table(
            ["mode", "wall (s)", "ratio"],
            [
                ("recorder off", f"{disabled_wall:.4f}", "1.00"),
                ("recorder on", f"{enabled_wall:.4f}", f"{ratio:.2f}"),
            ],
            title=f"TraversalEngine.run x{repeats}, dunnington, 2 cores",
        ),
    )

    merged = {}
    if BENCH_PATH.exists():
        merged = json.loads(BENCH_PATH.read_text())
    merged["recorder_disabled_wall_seconds"] = disabled_wall
    merged["recorder_enabled_wall_seconds"] = enabled_wall
    merged["recorder_enabled_ratio"] = ratio
    BENCH_PATH.write_text(json.dumps(merged, indent=2) + "\n")
