"""Fig. 9 — memory access overhead characterization.

Paper: (a) bandwidth of core 0 when paired with each other core.
Dunnington: a uniform drop for every pair.  Finis Terrae: pairing with
cores 1-3 (shared bus) is worst, 4-7 (same cell) loses ~25 %, 8-15
(other cell) shows no overhead.  (b) effective bandwidth as more cores
of a group stream concurrently (bus and cell curves for FT).
"""

import pytest

from repro.backends import SimulatedBackend
from repro.core.memory_overhead import characterize_memory_overhead
from repro.topology import dunnington, finis_terrae_node
from repro.units import format_bandwidth
from repro.viz import ascii_chart, ascii_table


@pytest.fixture(scope="module")
def dn_result():
    return characterize_memory_overhead(SimulatedBackend(dunnington(), seed=42))


@pytest.fixture(scope="module")
def ft_result():
    return characterize_memory_overhead(
        SimulatedBackend(finis_terrae_node(), seed=42)
    )


def test_fig9a_pair_bandwidths(dn_result, ft_result, figure, benchmark):
    backend = SimulatedBackend(finis_terrae_node(), seed=1)
    benchmark.pedantic(
        lambda: characterize_memory_overhead(backend, cores=list(range(8))),
        rounds=3,
        iterations=1,
    )
    rows = [("ref (isolated)",
             format_bandwidth(dn_result.reference),
             format_bandwidth(ft_result.reference))]
    for other in range(1, 16):
        dn_bw = dn_result.pair_bandwidths.get((0, other))
        ft_bw = ft_result.pair_bandwidths.get((0, other))
        rows.append(
            (
                f"(0,{other})",
                format_bandwidth(dn_bw) if dn_bw else "-",
                format_bandwidth(ft_bw) if ft_bw else "-",
            )
        )
    table = ascii_table(
        ["pair", "dunnington bw(core 0)", "finis_terrae bw(core 0)"],
        rows,
        title="Fig. 9(a): memory bandwidth with two simultaneous accesses",
    )
    figure("Fig 9a pairwise memory bandwidth", table)

    # Dunnington: uniform overhead (single level, all pairs).
    assert dn_result.n_levels == 1
    assert len(dn_result.levels[0].pairs) == 24 * 23 // 2
    # Finis Terrae: bus < cell < cross-cell == ref.
    bus = ft_result.pair_bandwidths[(0, 1)]
    cell = ft_result.pair_bandwidths[(0, 4)]
    cross = ft_result.pair_bandwidths[(0, 8)]
    assert bus < cell < cross
    assert cross == pytest.approx(ft_result.reference, rel=0.05)
    assert cell == pytest.approx(0.75 * ft_result.reference, rel=0.08)


def test_fig9b_scalability_curves(dn_result, ft_result, figure, benchmark):
    from repro.core.memory_overhead import memory_scalability
    be = SimulatedBackend(finis_terrae_node(), seed=1)
    benchmark.pedantic(lambda: memory_scalability(be, [0, 1, 2, 3]), rounds=3, iterations=1)
    curves = {}
    n = max(
        len(dn_result.scalability[0]),
        max((len(c) for c in ft_result.scalability), default=0),
    )
    xs = list(range(1, n + 1))

    def padded(curve):
        return [curve[i] if i < len(curve) else None for i in range(n)]

    curves["dunnington"] = padded(dn_result.scalability[0])
    curves["ft-bus"] = padded(ft_result.scalability[0])
    curves["ft-cell"] = padded(ft_result.scalability[1])
    chart = ascii_chart(
        xs,
        curves,
        x_label="concurrent cores",
        y_label="bandwidth of core 0 (B/s)",
        title="Fig. 9(b): memory performance with multiple simultaneous accesses",
    )
    rows = [
        (
            k + 1,
            *(
                format_bandwidth(c[k]) if k < len(c) and c[k] else "-"
                for c in (
                    dn_result.scalability[0],
                    ft_result.scalability[0],
                    ft_result.scalability[1],
                )
            ),
        )
        for k in range(n)
    ]
    table = ascii_table(["cores", "dunnington", "ft bus group", "ft cell group"], rows)
    figure("Fig 9b memory scalability", chart + "\n\n" + table)

    # Shapes: every curve is non-increasing; the Dunnington FSB
    # saturates hard (24 cores share ~1.4x one core's bandwidth).
    for curve in (dn_result.scalability[0], *ft_result.scalability):
        assert all(a >= b - 0.05 * a for a, b in zip(curve, curve[1:]))
    dn_curve = dn_result.scalability[0]
    assert dn_curve[0] / dn_curve[-1] > 5  # severe per-core collapse


def test_fig9a_group_structure(ft_result, benchmark):
    benchmark.pedantic(lambda: ft_result.overhead_level_of((0, 1)), rounds=5, iterations=1)
    assert ft_result.levels[0].groups == [
        [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]
    ]
    assert ft_result.levels[1].groups == [
        list(range(8)), list(range(8, 16))
    ]
