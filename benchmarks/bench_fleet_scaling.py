"""Fleet survey scaling — dedup leverage and fault overhead.

The fleet coordinator's pitch is that characterizing an installation
costs O(#hardware classes), not O(#machines): identical machines are
deduped by fingerprint and measured once.  This bench surveys
synthetic heterogeneous fleets of growing size — with and without
injected faults (worker crashes + stragglers) — and records machines
per wall-second, dedup ratio, and protocol overhead (reassignments,
lease expiries, speculative dispatches) in ``BENCH_fleet.json`` at the
repository root.

Acceptance (ISSUE, robustness): the 200-machine fleet dedups at least
5x (at most 40 distinct classes) and the faulty run finishes with
every non-quarantined machine ``ok`` or ``degraded`` — asserted here,
not just recorded.

Quick mode (``REPRO_BENCH_QUICK=1``, used by CI) runs only the
smallest fleet plus the 200-machine acceptance point.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.fleet import (
    FleetConfig,
    FleetCoordinator,
    FleetFaultPlan,
    generate_fleet,
)
from repro.viz import ascii_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: (n_machines, n_classes) scaling points; 200/40 is the acceptance
#: configuration from the ISSUE.
FLEETS = (
    [(50, 10), (200, 40)] if QUICK else [(50, 10), (100, 20), (200, 40), (400, 40)]
)

FAULT_PLAN = FleetFaultPlan(
    seed=2,
    crash_rate=0.15,
    respawn_seconds=150.0,
    straggler_rate=0.1,
    straggle_factor=10.0,
)


def run_survey(n_machines: int, n_classes: int, faults: bool) -> dict:
    spec = generate_fleet(n_machines, n_classes, seed=7, name=f"bench-{n_machines}")
    coordinator = FleetCoordinator(
        spec,
        config=FleetConfig(workers=8),
        fault_plan=FAULT_PLAN if faults else None,
    )
    wall_start = time.perf_counter()
    report = coordinator.survey()
    wall = time.perf_counter() - wall_start
    assert report.complete
    return {
        "machines": n_machines,
        "classes": report.dedup["classes"],
        "faults": faults,
        "dedup_ratio": report.dedup["ratio"],
        "counts": dict(report.counts),
        "wall_seconds": wall,
        "machines_per_second": n_machines / wall,
        "crashes": sum(w.crashes for w in coordinator.workers.values()),
        "dispatches": report.protocol["dispatches"],
        "reassignments": report.protocol["reassignments"],
        "lease_expiries": report.protocol["lease_expiries"],
        "speculative_dispatches": report.protocol["speculative_dispatches"],
        "quarantines": report.protocol["quarantines"],
    }


@pytest.fixture(scope="module")
def results() -> list[dict]:
    out = []
    for n_machines, n_classes in FLEETS:
        out.append(run_survey(n_machines, n_classes, faults=False))
        out.append(run_survey(n_machines, n_classes, faults=True))
    return out


def test_fleet_scaling(results, figure):
    rows = [
        (
            str(data["machines"]),
            str(data["classes"]),
            "yes" if data["faults"] else "no",
            f"{data['dedup_ratio']:.1f}x",
            f"{data['machines_per_second']:.0f}",
            str(data["dispatches"]),
            str(data["reassignments"]),
            str(data["crashes"]),
        )
        for data in results
    ]
    table = ascii_table(
        [
            "machines",
            "classes",
            "faults",
            "dedup",
            "machines/s",
            "dispatches",
            "reassigned",
            "crashes",
        ],
        rows,
        title="Fleet survey scaling: dedup leverage and fault overhead",
    )
    figure("Fleet survey scaling (clean vs faulty)", table)

    payload = {
        "benchmark": "fleet_scaling",
        "seed": 7,
        "fault_plan": FAULT_PLAN.to_dict(),
        "quick": QUICK,
        "fleets": results,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance bar: the 200-machine fleet dedups >=5x across <=40
    # classes, faults or not.
    for data in results:
        if data["machines"] == 200:
            assert data["classes"] <= 40
            assert data["dedup_ratio"] >= 5.0, (
                f"dedup only {data['dedup_ratio']:.1f}x"
            )
        # Every non-quarantined machine was characterized.
        statuses = set(data["counts"])
        assert statuses <= {"ok", "degraded", "quarantined"}, data["counts"]
        # Faults must actually have been exercised in faulty runs.
        if data["faults"] and data["machines"] >= 200:
            assert data["crashes"] >= 1
            assert data["reassignments"] >= 1
