"""Fig. 8 — shared-cache detection ratios.

Paper: for pairs containing core 0, the cache-access-overhead ratio
(Fig. 5 metric).  (a) Dunnington: the L2 ratio spikes only for core 12;
the L3 ratio spikes for cores {1, 2, 12, 13, 14} — exposing the
non-obvious OS numbering.  (b) Finis Terrae: every ratio stays below 2
(all caches private).
"""

import pytest

from repro.backends import SimulatedBackend
from repro.core.shared_cache import detect_shared_caches
from repro.topology import dunnington, finis_terrae_node
from repro.units import KiB, MiB
from repro.viz import ascii_table


@pytest.fixture(scope="module")
def dn_result():
    backend = SimulatedBackend(dunnington(), seed=42)
    return detect_shared_caches(backend, [32 * KiB, 3 * MiB, 12 * MiB])


@pytest.fixture(scope="module")
def ft_result():
    backend = SimulatedBackend(finis_terrae_node(), seed=42)
    return detect_shared_caches(backend, [16 * KiB, 256 * KiB, 9 * MiB])


def _core0_rows(result, n_cores):
    rows = []
    for other in range(1, n_cores):
        ratios = [
            f"{result.ratios[lvl][(0, other)]:.2f}"
            for lvl in range(len(result.cache_sizes))
        ]
        rows.append((f"(0,{other})", *ratios))
    return rows


def test_fig8a_dunnington(dn_result, figure, benchmark):
    backend = SimulatedBackend(dunnington(), seed=1)
    benchmark.pedantic(
        lambda: detect_shared_caches(
            backend, [32 * KiB, 3 * MiB], cores=[0, 1, 12]
        ),
        rounds=3,
        iterations=1,
    )
    table = ascii_table(
        ["pair", "L1 ratio", "L2 ratio", "L3 ratio"],
        _core0_rows(dn_result, 24),
        title="Fig. 8(a): shared-cache ratios on Dunnington (pairs with core 0; "
        "ratio > 2 => shared)",
    )
    figure("Fig 8a shared caches dunnington", table)
    # Core 12 is the L2 partner; {1,2,12,13,14} the L3 group.
    assert dn_result.sharing_group(0, 2) == [0, 12]
    assert dn_result.sharing_group(0, 3) == [0, 1, 2, 12, 13, 14]
    # L1 never looks shared.
    assert dn_result.shared_pairs[0] == []


def test_fig8b_finis_terrae(ft_result, figure, benchmark):
    be = SimulatedBackend(finis_terrae_node(), seed=1)
    benchmark.pedantic(
        lambda: detect_shared_caches(be, [16 * KiB], cores=[0, 1]),
        rounds=3, iterations=1,
    )
    table = ascii_table(
        ["pair", "L1 ratio", "L2 ratio", "L3 ratio"],
        _core0_rows(ft_result, 16),
        title="Fig. 8(b): shared-cache ratios on Finis Terrae (all below 2 => "
        "all caches private)",
    )
    figure("Fig 8b shared caches finis terrae", table)
    assert all(not pairs for pairs in ft_result.shared_pairs)
    worst = max(
        ratio for level in ft_result.ratios for ratio in level.values()
    )
    assert worst < 2.0


def test_fig8a_ratio_magnitudes(dn_result, benchmark):
    """Shared pairs don't just cross the threshold — they sit far above
    it (the paper's plots show ratios of ~3-5)."""
    benchmark.pedantic(lambda: dn_result.sharing_group(0, 3), rounds=5, iterations=1)
    l2 = dn_result.ratios[1][(0, 12)]
    l3 = dn_result.ratios[2][(0, 1)]
    assert l2 > 2.5
    assert l3 > 2.5
