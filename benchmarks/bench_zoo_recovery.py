"""Machine-zoo recovery — blind detection accuracy off the paper's map.

The four paper machines only show the suite can re-measure the
hardware its model was built from.  This bench generates seeded
machines from families the paper never touched (exclusive and victim
caches, sectored lines, non-power-of-two associativity, sub-NUMA
cells, big.LITTLE cores, multi-NIC and oversubscribed fat-tree
interconnects), runs the full suite blind against each, and scores
every ground-truth parameter ``match`` / ``tolerated`` /
``undetectable`` / ``WRONG``.  Per-family accuracy and wall time land
in ``BENCH_zoo.json`` at the repository root.

Acceptance (ISSUE): the full sweep covers >= 200 machines across
>= 6 families with **zero WRONG verdicts** — asserted here, not just
recorded.

Quick mode (``REPRO_BENCH_QUICK=1``, used by CI) runs 3 seeds per
family (24 machines); the zero-WRONG bar still applies.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.viz import ascii_table
from repro.zoo import family_names, generate_zoo, recover_all

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_zoo.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Machines per family.  8 families x 25 seeds = 200 machines in the
#: full run — the ISSUE's acceptance floor.
SEEDS_PER_FAMILY = 3 if QUICK else 25


@pytest.fixture(scope="module")
def sweep():
    machines = generate_zoo(seeds=SEEDS_PER_FAMILY)
    start = time.perf_counter()
    report = recover_all(machines)
    wall = time.perf_counter() - start
    return report, wall


def test_zoo_recovery(sweep, figure):
    report, wall = sweep
    per_family = report.per_family()
    rows = []
    for family in sorted(per_family):
        agg = per_family[family]
        scored = agg["match"] + agg["tolerated"] + agg["undetectable"] + agg["WRONG"]
        rows.append(
            (
                family,
                str(int(agg["machines"])),
                str(int(agg["match"])),
                str(int(agg["tolerated"])),
                str(int(agg["undetectable"])),
                str(int(agg["WRONG"])),
                f"{100.0 * (scored - agg['WRONG']) / scored:.1f}%",
                f"{agg['wall_seconds']:.2f}s",
            )
        )
    table = ascii_table(
        [
            "family",
            "machines",
            "match",
            "tolerated",
            "undetectable",
            "WRONG",
            "accuracy",
            "wall",
        ],
        rows,
        title="Machine-zoo blind recovery vs frozen ground truth",
    )
    figure("Machine zoo recovery accuracy", table)

    payload = {
        "benchmark": "zoo_recovery",
        "quick": QUICK,
        "seeds_per_family": SEEDS_PER_FAMILY,
        "machines": report.machines,
        "families": report.families,
        "wrong_total": report.wrong_total,
        "wall_seconds": wall,
        "per_family": per_family,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance bar.
    assert len(report.families) >= 6
    assert report.families == family_names()
    if not QUICK:
        assert report.machines >= 200
    assert report.wrong_total == 0, report.summary()
