"""Ablation — is the advisor's tile actually near the optimum?

Sweeps blocked-matmul tile sides on the ground-truth machine model and
checks that the tile the advisor derives from the *measured* cache
sizes (with its fill_fraction = 0.5 safety rule) lands within a small
factor of the sweep's oracle optimum — i.e. the measured sizes plus the
half-capacity rule are sufficient, no search needed (the paper's ref.
[4] argument).
"""

import pytest

from repro.autotune import Advisor
from repro.backends import SimulatedBackend
from repro.core import ServetSuite
from repro.memsim.matmul import blocked_matmul_cost, tile_sweep
from repro.topology import dempsey, dunnington
from repro.viz import ascii_table

N = 4096
TILES = [16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 448, 512]


@pytest.fixture(scope="module")
def reports():
    out = {}
    for build in (dempsey, dunnington):
        machine = build()
        out[machine.name] = (
            machine,
            ServetSuite(SimulatedBackend(machine, seed=42)).run(),
        )
    return out


def test_tile_sweep_vs_advice(reports, figure, benchmark):
    machine, report = reports["dempsey"]
    benchmark.pedantic(
        lambda: tile_sweep(machine, N, TILES), rounds=3, iterations=1
    )

    rows = []
    verdicts = {}
    for name, (machine, report) in reports.items():
        advisor = Advisor(report)
        advised = advisor.matmul_tile(level=2)
        sweep = tile_sweep(machine, N, sorted(set(TILES + [advised])))
        best = min(sweep, key=lambda e: e.lines_fetched)
        advised_cost = blocked_matmul_cost(machine, N, advised).lines_fetched
        ratio = advised_cost / best.lines_fetched
        verdicts[name] = (advised, best.tile, ratio)
        for estimate in sweep:
            rows.append(
                (
                    name,
                    estimate.tile,
                    f"{estimate.lines_fetched / 1e6:.1f}M",
                    f"{estimate.working_set_miss_rate:.3f}",
                    "<- advised" if estimate.tile == advised else
                    ("<- oracle" if estimate.tile == best.tile else ""),
                )
            )
    table = ascii_table(
        ["machine", "tile", "lines fetched", "ws miss rate", ""],
        rows,
        title=f"Ablation: blocked {N}x{N} matmul tile sweep (L2 target)",
    )
    figure("Ablation tiling sweep", table)

    for name, (advised, oracle, ratio) in verdicts.items():
        # The conflict-aware advice must be within 25% of the oracle...
        assert ratio < 1.25, (name, advised, oracle, ratio)
        # ...and the cost curve must actually be U-shaped (both the
        # tiny tile and the over-full tile are measurably worse).
        machine, _ = reports[name]
        tiny = blocked_matmul_cost(machine, N, 16).lines_fetched
        best_cost = blocked_matmul_cost(machine, N, oracle).lines_fetched
        over = blocked_matmul_cost(machine, N, 512).lines_fetched
        assert tiny > 2 * best_cost
        assert over > 1.5 * best_cost


def test_conflict_aware_beats_fill_fraction_rules(reports, benchmark):
    machine, report = reports["dempsey"]
    from repro.autotune.tiling import conflict_aware_tile

    benchmark.pedantic(lambda: conflict_aware_tile(report, 2), rounds=5, iterations=1)
    _run_conflict_aware_assertions(reports)


def _run_conflict_aware_assertions(reports):
    """Filling the cache (or even half of it) is a trap under random
    paging: the binomial conflicts bite well before full occupancy —
    the very effect Servet's probabilistic model quantifies, which the
    conflict-aware rule turns back into a tiling decision."""
    from repro.autotune.tiling import matmul_tile_side

    for name in ("dempsey", "dunnington"):
        machine, report = reports[name]
        aware = matmul_tile_side(report, 2)  # conflict-aware default
        half = matmul_tile_side(report, 2, fill_fraction=0.5)
        full = matmul_tile_side(report, 2, fill_fraction=1.0)
        costs = {
            b: blocked_matmul_cost(machine, N, b).lines_fetched
            for b in {aware, half, full}
        }
        assert costs[aware] <= costs[half] * 1.001, (name, aware, half)
        assert costs[aware] < costs[full], (name, aware, full)