"""Serving-daemon load: wire-level throughput, SLO, and hot-reload p99.

Three claims the daemon makes, measured over real loopback sockets:

1. **Batching amortizes the socket tax.**  A zipf-skewed load (s = 1.1
   over the default query pool — the skew every real tuning client
   shows: a few hot tile/latency questions, a long tail) driven by
   pipelined clients must clear the acceptance floor queries/second
   *warm*, with every single answer byte-identical to the uncached
   Advisor reference.  The load generator pre-encodes one request frame
   per pool entry (ids are opaque to the daemon), so the measured cost
   is the daemon's, not the client's JSON encoder.

2. **Instrumentation is near-free.**  The same load against an
   ``instrument=False`` daemon gives the no-measurement ceiling; the
   instrumented daemon must stay within a few percent of it (LIKWID
   discipline: you can leave the counters on).

3. **Hot reloads do not stall the tail.**  While a publisher stores new
   report versions mid-load, answers must keep flowing — every response
   consistent with exactly the version it names, p99 latency bounded,
   and the daemon ends on the newest version.

Results extend ``BENCH_service.json`` (key ``serviced``) next to the
in-process service numbers; quick mode (``REPRO_BENCH_QUICK=1``)
shrinks the traffic and relaxes the floors for CI smoke.
"""

from __future__ import annotations

import bisect
import copy
import itertools
import json
import os
import random
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.autotune import Advisor
from repro.backends import SimulatedBackend
from repro.core import ServetSuite
from repro.core.report import ServetReport
from repro.service import ReportRegistry, fingerprint_of
from repro.service.server import answer, default_query_pool
from repro.serviced import TuningDaemon
from repro.serviced.protocol import encode_frame, query_request, read_frame
from repro.topology import dunnington
from repro.viz import ascii_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Zipf skew of the query mix.
ZIPF_S = 1.1

CLIENTS = 4 if QUICK else 8
PER_CLIENT = 2_500 if QUICK else 125_000  # full mode: 1M total
WINDOW = 256 if QUICK else 512
WORKERS = 4
BATCH_MAX = 256

#: Warm-throughput floor (q/s).  The full floor is the acceptance bar
#: from the issue; quick mode keeps a smoke-level floor so CI catches
#: order-of-magnitude regressions without timing sensitivity.
QPS_FLOOR = 5_000 if QUICK else 50_000

#: Instrumentation overhead ceiling vs. the metrics-off daemon.  Short
#: quick-mode segments are noise-dominated, so the bound loosens there.
OVERHEAD_CEILING = 0.25 if QUICK else 0.05
OVERHEAD_SEGMENT = 5_000 if QUICK else 100_000
OVERHEAD_ROUNDS = 3

#: p99 arrival-to-answer latency bound while hot-reloads land (seconds).
RELOAD_P99_CEILING = 2.0 if QUICK else 0.5
RELOAD_CLIENTS = 4
RELOAD_PER_CLIENT = 2_500 if QUICK else 50_000
RELOAD_PUBLISH_GAP = 0.05 if QUICK else 0.3
VERSION_FACTORS = (1.0, 1.25, 1.5, 2.0)


@pytest.fixture(scope="module")
def baseline_report():
    backend = SimulatedBackend(dunnington(), seed=42, noise=0.0)
    return ServetSuite(backend).run()


def scaled_report(base: ServetReport, factor: float) -> ServetReport:
    """Scale every communication latency: distinguishable versions."""
    d = copy.deepcopy(base.to_dict())
    for layer in d["comm_layers"]:
        layer["latency"] *= factor
        layer["characterization"] = [
            [size, lat * factor, bw / factor]
            for size, lat, bw in layer["characterization"]
        ]
        layer["scalability"] = [
            [n, lat * factor, ratio] for n, lat, ratio in layer["scalability"]
        ]
    return ServetReport.from_dict(d)


def reference_answers(report: ServetReport, pool) -> list[dict]:
    advisor = Advisor(report)
    return [answer(advisor, q) for q in pool]


def zipf_cumulative(n: int) -> tuple[list[float], float]:
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(n)]
    cumulative = list(itertools.accumulate(weights))
    return cumulative, cumulative[-1]


def drive_load(
    daemon: TuningDaemon,
    pool,
    refs_by_version: dict[int, list[dict]],
    clients: int,
    per_client: int,
    window: int,
    seed: int,
    stop_check=None,
) -> dict:
    """Hammer the daemon with zipf-skewed pipelined clients.

    The request frame for pool entry *i* is encoded once with id ``i``;
    responses are verified against ``refs_by_version[version][id]``, so
    verification is a dict lookup, not a JSON re-encode.  Returns wall
    time, throughput, and the mismatch count (which must be 0).
    """
    frames = [encode_frame(query_request(q, i)) for i, q in enumerate(pool)]
    cumulative, total_weight = zipf_cumulative(len(pool))
    mismatches = [0] * clients
    served = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        rng = random.Random(seed + index)
        picks = [
            bisect.bisect_left(cumulative, rng.random() * total_weight)
            for _ in range(per_client)
        ]
        sock = socket.create_connection((daemon.host, daemon.port))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        rfile = sock.makefile("rb")
        bad = done = 0
        barrier.wait()
        for offset in range(0, per_client, window):
            chunk = picks[offset : offset + window]
            sock.sendall(b"".join(frames[i] for i in chunk))
            for _ in chunk:
                response = read_frame(rfile.read)
                refs = refs_by_version.get(response.get("version"))
                if refs is None or response.get("answer") != refs[response["id"]]:
                    bad += 1
                done += 1
            if stop_check is not None and stop_check():
                break
        mismatches[index] = bad
        served[index] = done
        sock.close()

    threads = [
        threading.Thread(target=client, args=(i,), name=f"load-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    queries = sum(served)
    return {
        "clients": clients,
        "queries": queries,
        "wall_seconds": wall,
        "queries_per_second": queries / wall if wall else 0.0,
        "mismatches": sum(mismatches),
    }


def warm_up(daemon: TuningDaemon, pool, refs) -> None:
    """One full pool pass so the timed run measures the warm cache."""
    result = drive_load(
        daemon, pool, {daemon.version: refs}, clients=1,
        per_client=len(pool), window=len(pool), seed=97,
    )
    assert result["mismatches"] == 0


def daemon_latency(daemon: TuningDaemon) -> dict:
    histogram = daemon.metrics.histogram("serviced.request_latency_seconds")
    return {
        "p50": histogram.percentile(0.50),
        "p99": histogram.percentile(0.99),
    }


def test_serviced_load(baseline_report, figure, tmp_path):
    pool = default_query_pool(baseline_report)
    refs = reference_answers(baseline_report, pool)

    # -- 1. warm wire throughput, instrumented --------------------------
    daemon = TuningDaemon(
        report=baseline_report, workers=WORKERS, batch_max=BATCH_MAX
    ).start()
    warm_up(daemon, pool, refs)
    steady = drive_load(
        daemon, pool, {0: refs}, CLIENTS, PER_CLIENT, WINDOW, seed=1234
    )
    steady.update(daemon_latency(daemon))
    stats = daemon.stats()
    steady["batch_size_mean"] = stats["daemon"]["histograms"][
        "serviced.batch_size"
    ]["mean"]
    steady["coalesced"] = stats["daemon"]["counters"].get(
        "serviced.coalesced_requests", 0
    )
    daemon.drain()

    # -- 2. instrumentation overhead ------------------------------------
    # Best-of-N short segments per mode: on a shared box a single
    # segment's q/s swings more than the effect being measured.
    rates: dict[bool, float] = {}
    for instrument in (True, False):
        best = 0.0
        dm = TuningDaemon(
            report=baseline_report,
            workers=WORKERS,
            batch_max=BATCH_MAX,
            instrument=instrument,
        ).start()
        warm_up(dm, pool, refs)
        for round_index in range(OVERHEAD_ROUNDS):
            segment = drive_load(
                dm, pool, {0: refs}, CLIENTS,
                OVERHEAD_SEGMENT // CLIENTS, WINDOW, seed=50 + round_index,
            )
            assert segment["mismatches"] == 0
            best = max(best, segment["queries_per_second"])
        rates[instrument] = best
        dm.drain()
    overhead = 1.0 - rates[True] / rates[False] if rates[False] else 0.0

    # -- 3. hot-reload under load ---------------------------------------
    backend = SimulatedBackend(dunnington(), seed=42, noise=0.0)
    fingerprint = fingerprint_of(backend)
    reports = [scaled_report(baseline_report, f) for f in VERSION_FACTORS]
    refs_by_version = {
        index: reference_answers(report, pool)
        for index, report in enumerate(reports, start=1)
    }
    registry = ReportRegistry(tmp_path / "registry")
    registry.put(fingerprint, reports[0])
    reload_daemon = TuningDaemon(
        registry=registry, workers=WORKERS, batch_max=BATCH_MAX,
        poll_interval=0.02,
    ).start()
    warm_up(reload_daemon, pool, refs_by_version[1])
    published = threading.Event()

    def publisher():
        for report in reports[1:]:
            time.sleep(RELOAD_PUBLISH_GAP)
            registry.put(fingerprint, report)
        published.set()

    publisher_thread = threading.Thread(target=publisher)
    publisher_thread.start()
    reload_run = drive_load(
        reload_daemon, pool, refs_by_version, RELOAD_CLIENTS,
        RELOAD_PER_CLIENT, WINDOW, seed=777,
        stop_check=published.is_set,
    )
    publisher_thread.join()
    reload_daemon.check_reload()  # deterministic final swap
    reload_run.update(daemon_latency(reload_daemon))
    reload_run["reloads"] = reload_daemon.metrics.value(
        "counter", "serviced.reloads"
    )
    final_version = reload_daemon.version
    reload_daemon.drain()

    # -- report -----------------------------------------------------------
    table = ascii_table(
        ["phase", "queries", "q/s", "p99", "mismatches"],
        [
            ("steady state (instrumented)", f"{steady['queries']:,}",
             f"{steady['queries_per_second']:,.0f}",
             f"{steady['p99'] * 1e3:.1f} ms", str(steady["mismatches"])),
            ("metrics off (ceiling)", f"{OVERHEAD_ROUNDS * OVERHEAD_SEGMENT:,}",
             f"{rates[False]:,.0f}", "-", "0"),
            ("hot-reload storm", f"{reload_run['queries']:,}",
             f"{reload_run['queries_per_second']:,.0f}",
             f"{reload_run['p99'] * 1e3:.1f} ms",
             str(reload_run["mismatches"])),
        ],
        title=f"Serving daemon over loopback ({CLIENTS} clients, "
        f"window {WINDOW}, batch_max {BATCH_MAX}, zipf s={ZIPF_S})",
    )
    figure("Serving daemon load", table)

    payload = {}
    if BENCH_PATH.exists():
        try:
            payload = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload["serviced"] = {
        "benchmark": "serviced_load",
        "quick": QUICK,
        "zipf_s": ZIPF_S,
        "workers": WORKERS,
        "batch_max": BATCH_MAX,
        "window": WINDOW,
        "steady": steady,
        "instrumentation": {
            "queries_per_second_on": rates[True],
            "queries_per_second_off": rates[False],
            "overhead": overhead,
            "segment_queries": OVERHEAD_SEGMENT,
            "rounds": OVERHEAD_ROUNDS,
        },
        "hot_reload": {
            **reload_run,
            "versions_published": len(VERSION_FACTORS),
            "final_version": final_version,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance bars (ISSUE, perf_opt): warm floor, exactness,
    # near-free instrumentation, bounded tail through reloads.
    assert steady["mismatches"] == 0
    assert steady["queries"] == CLIENTS * PER_CLIENT
    if not QUICK:
        assert steady["queries"] >= 1_000_000
    assert steady["queries_per_second"] >= QPS_FLOOR, (
        f"{steady['queries_per_second']:,.0f} q/s below the "
        f"{QPS_FLOOR:,} floor"
    )
    assert overhead <= OVERHEAD_CEILING, (
        f"instrumentation costs {overhead:.1%} "
        f"({rates[True]:,.0f} vs {rates[False]:,.0f} q/s)"
    )
    assert reload_run["mismatches"] == 0, "torn or stale answers under reload"
    assert reload_run["reloads"] >= len(VERSION_FACTORS) - 1
    assert final_version == len(VERSION_FACTORS)
    assert reload_run["p99"] <= RELOAD_P99_CEILING, (
        f"p99 {reload_run['p99']:.3f}s during hot-reload"
    )
