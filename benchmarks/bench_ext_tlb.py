"""Extension — TLB entry-count detection.

Not in the paper's evaluation, but squarely in its lineage: the
Saavedra & Smith methodology Servet builds on (ref. [15]) measures the
TLB with the same cliff-hunting approach.  The bench sweeps machines
with different TLB designs (fully- and set-associative, 64-2048
entries) and shows the detector recovering the entry count — or
honestly reporting None when the cliff coincides with a cache's line
capacity.
"""

import pytest

from repro.backends import SimulatedBackend
from repro.core.tlb import detect_tlb_entries
from repro.memsim import TLBSpec
from repro.topology import generic_smp
from repro.units import KiB, MiB
from repro.viz import ascii_table

CONFIGS = (
    (64, None),
    (128, None),
    (256, 4),
    (512, None),   # == L1 line capacity: ambiguous by design
    (1024, 8),
    (2048, None),
)


def build(entries, ways):
    return generic_smp(
        n_cores=2,
        levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 18.0)],
        tlb=TLBSpec(entries=entries, ways=ways, walk_cycles=40.0),
    )


def test_tlb_detection_sweep(figure, benchmark):
    backend = SimulatedBackend(build(64, None), seed=2)
    benchmark.pedantic(
        lambda: detect_tlb_entries(backend, [32 * KiB, 2 * MiB]),
        rounds=3,
        iterations=1,
    )
    rows = []
    results = {}
    for entries, ways in CONFIGS:
        be = SimulatedBackend(build(entries, ways), seed=2)
        detection = detect_tlb_entries(be, [32 * KiB, 2 * MiB])
        results[(entries, ways)] = detection.entries
        rows.append(
            (
                entries,
                "full" if ways is None else f"{ways}-way",
                detection.entries if detection.entries is not None else "(none)",
                "OK"
                if detection.entries == entries
                else ("ambiguous" if detection.entries is None else "WRONG"),
            )
        )
    # And a machine with no TLB modelled at all.
    no_tlb = generic_smp(n_cores=2, levels=[("32KB", 8, 1, 3.0), ("2MB", 8, 1, 18.0)])
    detection = detect_tlb_entries(SimulatedBackend(no_tlb, seed=2), [32 * KiB, 2 * MiB])
    rows.append(("(no TLB)", "-", detection.entries or "(none)", "OK"))
    table = ascii_table(
        ["true entries", "associativity", "detected", "verdict"],
        rows,
        title="Extension: TLB entry-count detection (page+line stride probe)",
    )
    figure("Extension TLB detection", table)

    for (entries, ways), got in results.items():
        if entries == 512:
            assert got is None  # collides with the L1 line capacity
        else:
            assert got == entries, (entries, ways, got)
