"""Fig. 2 — mcalibrator cycles and gradients (Dempsey & Dunnington).

Paper: Fig. 2(a) shows cycles/access vs array size for the two Intel
Xeon machines; Fig. 2(b) the gradient C[k+1]/C[k].  Expected shape:
plateaus separated by rises at 16 KB / 2 MB (Dempsey) and 32 KB / 3 MB /
12 MB (Dunnington), with the physically indexed levels smeared over a
wide size range (the motivation for the probabilistic algorithm).
"""

import numpy as np
import pytest

from repro.backends import SimulatedBackend
from repro.core.mcalibrator import run_mcalibrator
from repro.topology import dempsey, dunnington
from repro.units import format_size
from repro.viz import ascii_chart, ascii_table


@pytest.fixture(scope="module")
def curves():
    out = {}
    for build in (dempsey, dunnington):
        machine = build()
        backend = SimulatedBackend(machine, seed=42)
        out[machine.name] = run_mcalibrator(backend)
    return out


def test_fig2a_cycles(curves, figure, benchmark):
    backend = SimulatedBackend(dempsey(), seed=1)
    benchmark.pedantic(
        lambda: run_mcalibrator(backend, samples=1), rounds=3, iterations=1
    )
    xs = [float(s) for s in curves["dempsey"].sizes]
    chart = ascii_chart(
        xs,
        {name: list(res.cycles) for name, res in curves.items()},
        logx=True,
        logy=True,
        x_label="array size",
        y_label="cycles/access",
        title="Fig. 2(a): cycles needed to traverse an array (1KB stride)",
    )
    rows = [
        (
            format_size(int(s)),
            f"{curves['dempsey'].cycles[i]:.1f}",
            f"{curves['dunnington'].cycles[i]:.1f}",
        )
        for i, s in enumerate(curves["dempsey"].sizes)
        if i % 3 == 0 or i >= 10
    ]
    table = ascii_table(["size", "dempsey cycles", "dunnington cycles"], rows)
    figure("Fig 2a mcalibrator cycles", chart + "\n\n" + table)
    # Shape assertions: low plateau, then clear rises.
    for res in curves.values():
        assert res.cycles[-1] > 20 * res.cycles[0]


def test_fig2b_gradients(curves, figure, benchmark):
    benchmark.pedantic(lambda: [r.gradients for r in curves.values()], rounds=5, iterations=1)
    xs = [float(s) for s in curves["dempsey"].sizes[:-1]]
    chart = ascii_chart(
        xs,
        {name: list(res.gradients) for name, res in curves.items()},
        logx=True,
        x_label="array size",
        y_label="gradient C[k+1]/C[k]",
        title="Fig. 2(b): gradient of the rise of cycles",
    )
    figure("Fig 2b mcalibrator gradients", chart)
    dn = curves["dunnington"]
    sizes = list(dn.sizes)
    # The L1 peak sits exactly at 32KB; the physically indexed levels
    # produce gradients > 1 over wide ranges around 3MB and 12MB.
    l1_idx = sizes.index(32 * 1024)
    assert dn.gradients[l1_idx] > 3.0
    wide_l2 = [g for s, g in zip(sizes, dn.gradients) if 2**21 <= s <= 5 * 2**20]
    assert sum(g > 1.05 for g in wide_l2) >= 2
    wide_l3 = [
        g for s, g in zip(sizes, dn.gradients) if 9 * 2**20 <= s <= 18 * 2**20
    ]
    assert sum(g > 1.05 for g in wide_l3) >= 3


def test_fig2_dempsey_l2_smear_range(curves, benchmark):
    """Paper: Dempsey shows high gradient values over [512KB, 2MB+] —
    no single peak marks the 2MB L2."""
    benchmark.pedantic(lambda: curves["dempsey"].table(), rounds=5, iterations=1)
    dm = curves["dempsey"]
    above = [
        int(s)
        for s, g in zip(dm.sizes, dm.gradients)
        if g > 1.05 and 2**19 <= s <= 2**22
    ]
    assert len(above) >= 2  # smeared, not a one-point cliff
