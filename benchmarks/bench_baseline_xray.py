"""Baseline comparison — Servet vs X-Ray-style positional detection.

Regenerates the paper's Section II argument quantitatively: the
positional baseline matches Servet only when the OS hands out
physically well-behaved pages (coloring / superpages); under Linux-like
random placement it misestimates every physically indexed level, while
Servet's probabilistic algorithm stays exact.
"""

import pytest

from repro.backends import SimulatedBackend
from repro.baselines import xray_cache_sizes
from repro.core.cache_size import detect_caches
from repro.memsim.paging import ColoredPaging, ContiguousPaging, RandomPaging
from repro.topology import dempsey, dunnington
from repro.units import format_size
from repro.viz import ascii_table


def policies(machine):
    l2 = machine.levels[1].spec
    return {
        "random (Linux)": lambda: RandomPaging(),
        "page coloring": lambda: ColoredPaging(
            n_colors=l2.page_colors(machine.page_size)
        ),
        "superpages": lambda: ContiguousPaging(),
    }


def test_servet_vs_xray(figure, benchmark):
    be = SimulatedBackend(dempsey(), seed=6)
    benchmark.pedantic(lambda: xray_cache_sizes(be), rounds=3, iterations=1)

    rows = []
    outcomes = {}
    for build in (dempsey, dunnington):
        machine = build()
        truth = list(machine.cache_sizes)
        for policy_name, make_policy in policies(machine).items():
            servet = detect_caches(
                SimulatedBackend(machine, paging=make_policy(), seed=6)
            ).sizes
            xray = xray_cache_sizes(
                SimulatedBackend(machine, paging=make_policy(), seed=6)
            ).sizes
            outcomes[(machine.name, policy_name)] = (servet, xray)
            rows.append(
                (
                    machine.name,
                    policy_name,
                    " / ".join(format_size(s) for s in servet),
                    "OK" if servet == truth else "WRONG",
                    " / ".join(format_size(s) for s in xray),
                    "OK" if xray == truth else "WRONG",
                )
            )
    table = ascii_table(
        ["machine", "page policy", "servet", "", "x-ray positional", ""],
        rows,
        title="Baseline: Servet vs X-Ray-style positional detection",
    )
    figure("Baseline servet vs xray", table)

    for build in (dempsey, dunnington):
        machine = build()
        truth = list(machine.cache_sizes)
        # Servet is exact under every policy.
        for policy_name in policies(machine):
            servet, _ = outcomes[(machine.name, policy_name)]
            assert servet == truth, (machine.name, policy_name)
        # The baseline needs well-behaved pages...
        _, xray_super = outcomes[(machine.name, "superpages")]
        assert xray_super == truth, machine.name
        # ...and fails under random placement (the paper's portability
        # argument): some physically indexed level is off.
        _, xray_random = outcomes[(machine.name, "random (Linux)")]
        assert xray_random != truth, machine.name
