"""Ablation — variants of the probabilistic size model (Fig. 3).

Two refinements over the paper's exact formulation are evaluated here
(both documented in DESIGN.md §5):

1. **Size-biased miss-rate prediction**: the paper uses ``P(X > K)``
   (probability a color overflows); the measured quantity is the
   fraction of *pages* in overflowing colors, ``P(B(NP-1, p) >= K)``,
   which is strictly larger (a page preferentially lands in crowded
   colors).
2. **Affine normalization**: fitting hit time and miss overhead by
   least squares per candidate instead of taking the window's min/max
   cycles, which compresses clipped windows.

The sweep measures detection accuracy of the L2/L3 estimates across
seeds for each variant combination.
"""

import numpy as np
import pytest

from repro.backends import SimulatedBackend
from repro.core.cache_size import _extend_region, _gradient_regions
from repro.core.mcalibrator import run_mcalibrator
from repro.core.probabilistic import probabilistic_cache_size
from repro.topology import dempsey, dunnington
from repro.units import format_size
from repro.viz import ascii_table

SEEDS = range(8)


def l2_window(backend):
    """The mcalibrator window the Fig. 4 driver would hand to the
    probabilistic algorithm for the first physically indexed level."""
    mres = run_mcalibrator(backend, samples=5)
    grads = mres.gradients
    regions = _gradient_regions(grads)
    lo, hi = regions[1]  # region 0 is the L1 cliff
    hi_bound = regions[2][0] - 1 if len(regions) > 2 else len(grads) - 1
    xlo, xhi = _extend_region(grads, lo, hi, lo_bound=regions[0][1] + 1,
                              hi_bound=hi_bound)
    return mres.sizes[xlo : xhi + 2], mres.cycles[xlo : xhi + 2]


def accuracy(machine, truth, size_biased, affine_fit):
    hits = 0
    for seed in SEEDS:
        backend = SimulatedBackend(machine, seed=seed)
        sizes, cycles = l2_window(backend)
        est = probabilistic_cache_size(
            sizes, cycles, backend.page_size,
            size_biased=size_biased, affine_fit=affine_fit,
        )
        hits += est.size == truth
    return hits


def test_model_variant_ablation(figure, benchmark):
    backend = SimulatedBackend(dempsey(), seed=0)
    sizes, cycles = l2_window(backend)
    benchmark.pedantic(
        lambda: probabilistic_cache_size(sizes, cycles, backend.page_size),
        rounds=5,
        iterations=1,
    )

    rows = []
    scores = {}
    for machine, truth in ((dempsey(), 2 * 1024**2), (dunnington(), 3 * 1024**2)):
        for size_biased in (False, True):
            for affine in (False, True):
                hits = accuracy(machine, truth, size_biased, affine)
                label = (
                    ("size-biased" if size_biased else "paper P(X>K)")
                    + " + "
                    + ("affine fit" if affine else "min/max norm")
                )
                scores[(machine.name, size_biased, affine)] = hits
                rows.append(
                    (
                        machine.name,
                        format_size(truth),
                        label,
                        f"{hits}/{len(SEEDS)}",
                    )
                )
    table = ascii_table(
        ["machine", "true L2", "model variant", "correct"],
        rows,
        title="Ablation: probabilistic model variants (accuracy across "
        f"{len(SEEDS)} measurement seeds)",
    )
    figure("Ablation probabilistic model", table)

    n = len(SEEDS)
    # The full refinement is perfect on both machines...
    assert scores[("dempsey", True, True)] == n
    assert scores[("dunnington", True, True)] == n
    # ...and no variant beats it.
    best = max(scores.values())
    assert scores[("dempsey", True, True)] == best
    # The paper's plain formulation is noticeably less reliable on at
    # least one machine (it worked on the authors' testbeds; on random
    # page placements it is biased — see DESIGN.md).
    plain = min(
        scores[("dempsey", False, False)], scores[("dunnington", False, False)]
    )
    assert plain <= n - 1
