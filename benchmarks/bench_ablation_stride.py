"""Ablation — the 1 KB mcalibrator stride (Section III-A).

The paper chooses 1 KB because hardware prefetchers track strides up to
256-512 B.  This ablation sweeps the stride: strides within prefetcher
reach get their miss latencies hidden and detection degrades; strides
at or above 1 KB detect every level.
"""

import pytest

from repro.backends import SimulatedBackend
from repro.core.cache_size import detect_caches
from repro.errors import DetectionError
from repro.topology import dempsey, dunnington
from repro.units import format_size
from repro.viz import ascii_table

STRIDES = (64, 128, 256, 512, 1024, 2048)


def run_detection(machine, stride, seed=5):
    backend = SimulatedBackend(machine, seed=seed)
    try:
        result = detect_caches(backend, stride=stride)
        return result.sizes
    except DetectionError:
        return None


def test_stride_ablation(figure, benchmark):
    backend = SimulatedBackend(dempsey(), seed=5)
    benchmark.pedantic(
        lambda: detect_caches(backend, stride=1024), rounds=3, iterations=1
    )
    rows = []
    verdicts = {}
    for build in (dempsey, dunnington):
        machine = build()
        truth = list(machine.cache_sizes)
        for stride in STRIDES:
            sizes = run_detection(machine, stride)
            ok = sizes == truth
            verdicts[(machine.name, stride)] = ok
            rows.append(
                (
                    machine.name,
                    format_size(stride),
                    "(detection failed)"
                    if sizes is None
                    else " / ".join(format_size(s) for s in sizes),
                    "OK" if ok else "WRONG",
                )
            )
    table = ascii_table(
        ["machine", "stride", "detected hierarchy", "verdict"],
        rows,
        title="Ablation: mcalibrator stride vs prefetcher reach "
        "(prefetcher tracks strides <= 512B)",
    )
    figure("Ablation stride", table)

    for machine_name in ("dempsey", "dunnington"):
        # Above prefetcher reach: detection perfect.
        assert verdicts[(machine_name, 1024)]
        assert verdicts[(machine_name, 2048)]
        # Within prefetcher reach: detection breaks somewhere.
        assert not all(
            verdicts[(machine_name, s)] for s in (64, 128, 256, 512)
        )
