"""Planner scaling — pairwise measurements and virtual time, pruned
versus unpruned.

The measurement planner's pitch is O(n²) → O(#classes) on the pairwise
phases (Figs. 5–7 all probe every pair of cores).  This bench runs the
full suite with ``prune="off"`` and ``prune="topology"`` (plus
``"verify"`` outside quick mode) on the single-node Dunnington model
and the 2-node Finis Terrae cluster, and records measurement counts,
virtual seconds, and wall seconds per configuration in
``BENCH_planner.json`` at the repository root.

Acceptance (ISSUE, perf_opt): on the 32-core cluster, topology pruning
issues at most 20% of the pairwise measurements and cuts total virtual
time at least 3x — asserted here, not just recorded.

Quick mode (``REPRO_BENCH_QUICK=1``, used by CI) skips the ``verify``
configuration; the off/topology comparison the acceptance bar is
defined on always runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.backends import SimulatedBackend
from repro.core import ServetSuite
from repro.topology import dunnington, finis_terrae
from repro.viz import ascii_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

MACHINES = {
    "dunnington": dunnington,
    "finis_terrae_2node": lambda: finis_terrae(2),
}

PRUNE_MODES = ("off", "topology") if QUICK else ("off", "topology", "verify")


def run_config(build, prune: str) -> dict:
    backend = SimulatedBackend(build(), seed=42, noise=0.0)
    suite = ServetSuite(backend, prune=prune)
    wall_start = time.perf_counter()
    report = suite.run()
    wall = time.perf_counter() - wall_start
    virtual = sum(v for v, _ in report.timings.values())
    stats = dict(report.planner)
    return {
        "prune": prune,
        "issued": stats["issued"],
        "saved": stats["saved"],
        "pruned": stats["pruned"],
        "cache_hits": stats["cache_hits"],
        "pairwise_requested": stats["pairwise_requested"],
        "pairwise_measured": stats["pairwise_measured"],
        "virtual_seconds": virtual,
        "wall_seconds": wall,
        "phase_virtual_seconds": {
            name: v for name, (v, _) in report.timings.items()
        },
    }


@pytest.fixture(scope="module")
def results() -> dict:
    out: dict = {}
    for name, build in MACHINES.items():
        out[name] = {prune: run_config(build, prune) for prune in PRUNE_MODES}
    return out


def test_planner_scaling(results, figure):
    rows = []
    for machine, configs in results.items():
        baseline = configs["off"]
        for prune, data in configs.items():
            fraction = data["pairwise_measured"] / data["pairwise_requested"]
            speedup = baseline["virtual_seconds"] / data["virtual_seconds"]
            rows.append(
                (
                    machine,
                    prune,
                    str(data["pairwise_measured"]),
                    str(data["pairwise_requested"]),
                    f"{100 * fraction:.1f}%",
                    f"{data['virtual_seconds'] / 60:.1f}'",
                    f"{speedup:.1f}x",
                )
            )
    table = ascii_table(
        [
            "machine",
            "prune",
            "pairwise measured",
            "requested",
            "fraction",
            "virtual time",
            "speedup",
        ],
        rows,
        title="Planner scaling: pairwise probes and virtual time by prune mode",
    )
    figure("Planner scaling (pruned vs unpruned)", table)

    payload = {
        "benchmark": "planner_scaling",
        "seed": 42,
        "noise": 0.0,
        "quick": QUICK,
        "machines": results,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance bar: ≤20% of pairwise measurements and ≥3x virtual-time
    # cut on the 32-core cluster with topology pruning.
    ft = results["finis_terrae_2node"]
    fraction = (
        ft["topology"]["pairwise_measured"]
        / ft["topology"]["pairwise_requested"]
    )
    assert fraction <= 0.20, f"pruned run measured {100 * fraction:.1f}% of pairs"
    cut = ft["off"]["virtual_seconds"] / ft["topology"]["virtual_seconds"]
    assert cut >= 3.0, f"virtual-time cut only {cut:.2f}x"

    # Pruning must never change what the phases asked for.
    for machine, configs in results.items():
        requested = {c["pairwise_requested"] for c in configs.values()}
        assert len(requested) == 1, f"{machine}: phases diverged across modes"
