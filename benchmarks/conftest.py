"""Benchmark-harness plumbing.

Each bench regenerates one table/figure of the paper and registers its
rendered form through the ``figure`` fixture; everything is printed in
the terminal summary (so ``pytest benchmarks/ --benchmark-only`` shows
the paper-comparable output) and archived under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_collected: list[tuple[str, str, str]] = []


@pytest.fixture
def figure(request):
    """Call ``figure(title, text)`` to register a rendered figure."""

    def emit(title: str, text: str) -> None:
        _collected.append((request.node.nodeid, title, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^a-zA-Z0-9._-]+", "_", title.lower()).strip("_")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")

    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line("REPRODUCED TABLES AND FIGURES")
    terminalreporter.write_line("=" * 78)
    for nodeid, title, text in _collected:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title}  [{nodeid}] ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
