"""Tuning-service throughput — cached query serving and incremental
refresh versus full re-measurement.

Two claims the service layer makes, measured:

1. **Query serving is cheap.**  The concurrent-client harness drives the
   cached service and an uncached baseline over the same deterministic
   schedule; the bench records queries/second and hit rate for a cold
   cache (capacity 1 — every distinct key misses the LRU, so the rate is
   the advisor's raw answer cost) versus the warm default cache, and
   asserts the acceptance bar: warm hit rate >= 90% with zero wrong
   answers.

2. **Refreshing beats re-measuring.**  After a single-parameter topology
   change (the Dunnington FSB loses half its bandwidth), an incremental
   refresh must issue strictly fewer probes and spend less virtual
   benchmark time measuring than the from-scratch run, while producing
   a byte-identical ``measurement_dict()``.

Results land in ``BENCH_service.json`` at the repository root (uploaded
as a CI artifact).  Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the
harness traffic; the refresh comparison always runs in full.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

import pytest

from repro.backends import SimulatedBackend
from repro.core import ServetSuite
from repro.service import (
    ReportRegistry,
    TuningService,
    fingerprint_of,
    incremental_refresh,
    run_harness,
)
from repro.topology import dunnington
from repro.viz import ascii_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

CLIENTS = 4 if QUICK else 8
QUERIES_PER_CLIENT = 250 if QUICK else 1000


def degraded_dunnington():
    machine = dunnington()
    root = machine.bandwidth_root
    return dataclasses.replace(
        machine, bandwidth_root=dataclasses.replace(root, capacity=root.capacity / 2)
    )


@pytest.fixture(scope="module")
def baseline_report():
    backend = SimulatedBackend(dunnington(), seed=42, noise=0.0)
    return ServetSuite(backend).run()


def drive(service) -> dict:
    result = run_harness(
        service, clients=CLIENTS, queries_per_client=QUERIES_PER_CLIENT, seed=1234
    )
    return {
        "clients": result.clients,
        "queries": result.queries,
        "wall_seconds": result.wall_seconds,
        "queries_per_second": result.queries_per_second,
        "hit_rate": result.hit_rate,
        "mismatches": result.mismatches,
        "latency_p50": result.metrics["latency_p50"],
        "latency_p99": result.metrics["latency_p99"],
    }


def test_service_throughput(baseline_report, figure, tmp_path):
    # capacity=1 keeps the LRU thrashing: every pool rotation evicts, so
    # this measures the uncached answer path under the same traffic.
    cold = drive(TuningService(baseline_report, capacity=1))
    warm = drive(TuningService(baseline_report))

    # -- refresh vs re-measure ------------------------------------------
    registry = ReportRegistry(tmp_path / "registry")
    backend = SimulatedBackend(dunnington(), seed=42, noise=0.0)
    registry.put(fingerprint_of(backend), baseline_report)

    changed = SimulatedBackend(degraded_dunnington(), seed=42, noise=0.0)
    refresh_start = time.perf_counter()
    refreshed = incremental_refresh(registry, changed)
    refresh_wall = time.perf_counter() - refresh_start

    scratch_backend = SimulatedBackend(degraded_dunnington(), seed=42, noise=0.0)
    scratch_start = time.perf_counter()
    scratch = ServetSuite(scratch_backend).run()
    scratch_wall = time.perf_counter() - scratch_start

    refresh_stats = refreshed.report.to_dict()["planner"]
    scratch_stats = scratch.to_dict()["planner"]
    # A merged report keeps the stored timings of the phases it did not
    # re-run, so count only the re-measured phases as refresh cost.
    refresh_virtual = sum(
        refreshed.report.timings[p][0]
        for p in refreshed.staleness.affected
        if p in refreshed.report.timings
    )
    scratch_virtual = sum(v for v, _ in scratch.timings.values())
    identical = json.dumps(
        refreshed.report.measurement_dict(), sort_keys=True
    ) == json.dumps(scratch.measurement_dict(), sort_keys=True)

    table = ascii_table(
        ["configuration", "queries/s", "hit rate", "mismatches"],
        [
            ("cold cache (capacity 1)", f"{cold['queries_per_second']:,.0f}",
             f"{100 * cold['hit_rate']:.1f}%", str(cold["mismatches"])),
            ("warm cache (default)", f"{warm['queries_per_second']:,.0f}",
             f"{100 * warm['hit_rate']:.1f}%", str(warm["mismatches"])),
        ],
        title=f"Tuning-service throughput ({CLIENTS} clients x "
        f"{QUERIES_PER_CLIENT} queries)",
    )
    refresh_table = ascii_table(
        ["strategy", "probes issued", "virtual time measured", "wall time"],
        [
            ("full re-measurement", str(scratch_stats["issued"]),
             f"{scratch_virtual / 60:.1f}'", f"{scratch_wall:.2f}s"),
            ("incremental refresh", str(refresh_stats["issued"]),
             f"{refresh_virtual / 60:.1f}'", f"{refresh_wall:.2f}s"),
        ],
        title="Refresh after one topology change (Dunnington, FSB halved)",
    )
    figure("Tuning service throughput", table + "\n\n" + refresh_table)

    payload = {
        "benchmark": "service_throughput",
        "seed": 42,
        "noise": 0.0,
        "quick": QUICK,
        "harness": {"cold": cold, "warm": warm},
        "refresh": {
            "changed_inputs": list(refreshed.staleness.changed),
            "stale_phases": list(refreshed.staleness.affected),
            "mode": refreshed.mode,
            "probes_issued": refresh_stats["issued"],
            "probes_issued_scratch": scratch_stats["issued"],
            "virtual_seconds_remeasured": refresh_virtual,
            "virtual_seconds_scratch": scratch_virtual,
            "wall_seconds": refresh_wall,
            "wall_seconds_scratch": scratch_wall,
            "measurements_identical": identical,
        },
    }
    # bench_serviced_load.py shares this file: keep its section intact
    # so the two benches can run in either order.
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
        if "serviced" in existing:
            payload["serviced"] = existing["serviced"]
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance bars (ISSUE, new_subsystem): warm hit rate >= 90% with
    # zero wrong answers; refresh strictly cheaper and byte-identical.
    assert warm["mismatches"] == 0 and cold["mismatches"] == 0
    assert warm["hit_rate"] >= 0.90, f"warm hit rate {warm['hit_rate']:.1%}"
    assert refreshed.mode == "incremental"
    assert 0 < refresh_stats["issued"] < scratch_stats["issued"]
    assert refresh_virtual < scratch_virtual
    assert identical, "refresh diverged from the from-scratch run"
