"""Extension — report-driven collective algorithm selection.

The optimizations the paper motivates with refs. [5]-[7]: on an SMP
cluster a broadcast should cross the interconnect once per node.  The
autotuner (a) derives the node groups blindly from the measured layers,
(b) fits a cost model to the measured curves, (c) simulates flat vs
hierarchical schedules on it, and the bench validates the choice by
executing both on the true substrate across message sizes.
"""

import pytest

from repro.autotune import choose_bcast
from repro.backends import SimulatedBackend
from repro.core import ServetSuite
from repro.netsim import default_comm_config
from repro.simmpi import World
from repro.simmpi.collectives import hierarchical_bcast
from repro.topology import finis_terrae
from repro.units import KiB, format_size, format_time
from repro.viz import ascii_table

SIZES = (1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB)


@pytest.fixture(scope="module")
def setup():
    cluster = finis_terrae(2)
    report = ServetSuite(SimulatedBackend(cluster, seed=42)).run()
    return cluster, report


def execute(cluster, placement, program) -> float:
    world = World(cluster, default_comm_config(cluster), placement)
    world.spawn_all(program)
    return world.run().makespan


def test_bcast_algorithm_selection(setup, figure, benchmark):
    cluster, report = setup
    placement = list(range(32))
    benchmark.pedantic(
        lambda: choose_bcast(report, placement, 16 * KiB), rounds=3, iterations=1
    )

    rows = []
    correct = 0
    for nbytes in SIZES:
        choice = choose_bcast(report, placement, nbytes)
        groups = choice.groups

        def flat_prog(rank, nbytes=nbytes):
            yield from rank.bcast(0, nbytes)

        def hier_prog(rank, nbytes=nbytes, groups=groups):
            yield from hierarchical_bcast(rank, 0, nbytes, groups)

        flat_t = execute(cluster, placement, flat_prog)
        hier_t = execute(cluster, placement, hier_prog)
        executed_winner = "flat" if flat_t <= hier_t else "hierarchical"
        ok = choice.algorithm == executed_winner
        correct += ok
        rows.append(
            (
                format_size(nbytes),
                choice.algorithm,
                format_time(choice.flat_time),
                format_time(choice.hierarchical_time),
                format_time(flat_t),
                format_time(hier_t),
                "OK" if ok else "WRONG",
            )
        )
    table = ascii_table(
        [
            "msg size",
            "chosen",
            "pred flat",
            "pred hier",
            "exec flat",
            "exec hier",
            "verdict",
        ],
        rows,
        title="Extension: bcast algorithm selection on 2-node Finis Terrae "
        "(32 ranks; groups derived from measured layers)",
    )
    figure("Extension collective selection", table)

    # The chooser must be right for every probed size, and hierarchical
    # must win at the small/medium sizes (one InfiniBand crossing per
    # node instead of O(node size)).
    assert correct == len(SIZES)
    small_choice = choose_bcast(report, placement, 4 * KiB)
    assert small_choice.algorithm == "hierarchical"


def test_groups_recovered_without_topology(setup, benchmark):
    _, report = setup
    from repro.autotune import locality_groups

    benchmark.pedantic(
        lambda: locality_groups(report, list(range(32))), rounds=3, iterations=1
    )
    choice = choose_bcast(report, list(range(32)), 16 * KiB)
    assert choice.groups == [list(range(16)), list(range(16, 32))]
