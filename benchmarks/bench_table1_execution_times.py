"""Table I — execution times of all the benchmarks (in minutes).

Paper values:                Dunnington   Finis Terrae
  Cache Size Estimate              2'          2'
  Determination of Shared Caches  11'          3'
  Memory Access Overhead          20'          5'
  Communication Costs             22'         33'
  Total                           55'         43'

Our substrate accounts a *virtual* cost per measurement (setup overhead
+ sampling time at the simulated machine's clock), so the comparison is
shape-level: which machine is more expensive per phase and the rough
magnitudes.
"""

import pytest

from repro.backends import SimulatedBackend
from repro.core import ServetSuite
from repro.topology import dempsey, dunnington, finis_terrae
from repro.viz import ascii_table

PAPER_MINUTES = {
    "dunnington": {
        "cache_size": 2,
        "shared_caches": 11,
        "memory_overhead": 20,
        "communication_costs": 22,
    },
    "finis_terrae": {
        "cache_size": 2,
        "shared_caches": 3,
        "memory_overhead": 5,
        "communication_costs": 33,
    },
}

ROW_TITLES = {
    "cache_size": "Cache Size Estimate",
    "shared_caches": "Determination of Shared Caches",
    "memory_overhead": "Memory Access Overhead",
    "communication_costs": "Communication Costs",
}


@pytest.fixture(scope="module")
def reports():
    out = {}
    out["dunnington"] = ServetSuite(SimulatedBackend(dunnington(), seed=42)).run()
    out["finis_terrae"] = ServetSuite(
        SimulatedBackend(finis_terrae(2), seed=42)
    ).run()
    return out


def test_table1(reports, figure, benchmark):
    benchmark.pedantic(
        lambda: ServetSuite(SimulatedBackend(dempsey(), seed=1)).run(),
        rounds=3,
        iterations=1,
    )
    rows = []
    for phase, title in ROW_TITLES.items():
        row = [title]
        for system in ("dunnington", "finis_terrae"):
            virtual, _ = reports[system].timings[phase]
            row.append(f"{virtual / 60:.1f}' (paper {PAPER_MINUTES[system][phase]}')")
        rows.append(tuple(row))
    totals = ["Total"]
    for system in ("dunnington", "finis_terrae"):
        total = sum(
            v for k, (v, _) in reports[system].timings.items() if k in ROW_TITLES
        )
        paper_total = sum(PAPER_MINUTES[system].values())
        totals.append(f"{total / 60:.1f}' (paper {paper_total}')")
    rows.append(tuple(totals))
    table = ascii_table(
        ["benchmark", "Dunnington", "Finis Terrae"],
        rows,
        title="Table I: execution times of all the benchmarks (virtual minutes)",
    )
    figure("Table I execution times", table)

    # Only the paper's four phases enter Table I (the TLB probe is an
    # extension phase, reported separately).
    dn = {
        k: v / 60
        for k, (v, _) in reports["dunnington"].timings.items()
        if k in ROW_TITLES
    }
    ft = {
        k: v / 60
        for k, (v, _) in reports["finis_terrae"].timings.items()
        if k in ROW_TITLES
    }
    # Shape facts from the paper's table:
    # - shared caches and memory overhead cost far more on Dunnington
    #   (24 cores -> 276 pairs) than on Finis Terrae (16 cores -> 120);
    assert dn["shared_caches"] > 1.5 * ft["shared_caches"]
    assert dn["memory_overhead"] > 1.5 * ft["memory_overhead"]
    # - communication costs dominate on Finis Terrae (2 nodes, 496
    #   pairs, slow inter-node pings);
    assert ft["communication_costs"] == max(ft.values())
    assert ft["communication_costs"] > dn["communication_costs"]
    # - every phase lands within ~3x of the paper's minutes.
    for system, got in (("dunnington", dn), ("finis_terrae", ft)):
        for phase, minutes in got.items():
            paper = PAPER_MINUTES[system][phase]
            assert paper / 3 <= minutes <= paper * 3, (system, phase, minutes)


def test_suite_runs_once_and_persists(reports, tmp_path, benchmark):
    """Section IV-E: results are stored in a file consulted later —
    persistence must preserve the timings."""
    benchmark.pedantic(lambda: reports["dunnington"].to_dict(), rounds=5, iterations=1)
    from repro.core.report import ServetReport

    path = tmp_path / "r.json"
    reports["dunnington"].save(path)
    clone = ServetReport.load(path)
    assert clone.timings == reports["dunnington"].timings
