"""Ablation — what the measured parameters buy an autotuned code.

Section V's promise, closed end-to-end: placements derived from the
Servet report are executed on the simulated MPI runtime and compared
against the standard compact and scatter policies, for a
nearest-neighbour halo application and a gather-heavy master/worker
application.
"""

import numpy as np
import pytest

from repro.autotune import Advisor, compact_placement, scatter_placement
from repro.backends import SimulatedBackend
from repro.core import ServetSuite
from repro.netsim import default_comm_config
from repro.simmpi import World
from repro.topology import Cluster, dunnington
from repro.units import KiB, format_time
from repro.viz import ascii_table

N_RANKS = 12
MSG = 32 * KiB
ITERS = 30


@pytest.fixture(scope="module")
def setup():
    cluster = Cluster("dunnington", dunnington())
    report = ServetSuite(SimulatedBackend(cluster, seed=42)).run()
    return cluster, Advisor(report)


def halo_matrix(n):
    m = np.zeros((n, n))
    for i in range(n - 1):
        m[i, i + 1] = m[i + 1, i] = 1.0
    return m


def gather_matrix(n):
    m = np.zeros((n, n))
    m[1:, 0] = 1.0  # workers report to rank 0
    m[0, 1:] = 0.25  # occasional broadcasts back
    return m


def halo_program(rank):
    """Parallel nearest-neighbour exchange (even ranks send first)."""
    for it in range(ITERS):
        for nb in (rank.id + 1, rank.id - 1):
            if not (0 <= nb < rank.size):
                continue
            if rank.id % 2 == 0:
                yield rank.send(nb, MSG, tag=it)
                yield rank.recv(nb, tag=it)
            else:
                yield rank.recv(nb, tag=it)
                yield rank.send(nb, MSG, tag=it)


def master_worker_program(rank):
    """Workers report to rank 0 every iteration; rank 0 broadcasts a
    work descriptor back every fourth iteration."""
    for it in range(ITERS):
        if rank.id == 0:
            for _ in range(rank.size - 1):
                yield rank.recv(tag=it)
        else:
            yield rank.send(0, MSG, tag=it)
        if it % 4 == 0:
            yield from rank.bcast(0, MSG, tag=900_000 + it)


def execute(cluster, placement, program):
    config = default_comm_config(cluster)
    world = World(cluster, config, placement)
    world.spawn_all(program)
    return world.run().makespan


def test_placement_ablation(setup, figure, benchmark):
    cluster, advisor = setup
    rows = []
    wins = {}
    apps = (
        ("halo-ring", halo_matrix(N_RANKS), halo_program),
        ("master-worker", gather_matrix(N_RANKS), master_worker_program),
    )
    for app_name, matrix, program in apps:
        optimized = advisor.place(matrix, message_size=MSG)
        placements = {
            "compact": compact_placement(N_RANKS),
            "scatter": scatter_placement(N_RANKS, cluster.n_cores),
            "servet-optimized": optimized.placement,
        }
        times = {
            name: execute(cluster, placement, program)
            for name, placement in placements.items()
        }
        wins[app_name] = times
        for name, t in times.items():
            rows.append(
                (
                    app_name,
                    name,
                    format_time(t),
                    f"{times['compact'] / t:.2f}x vs compact",
                )
            )
    benchmark.pedantic(
        lambda: advisor.place(halo_matrix(6), message_size=MSG),
        rounds=3,
        iterations=1,
    )
    table = ascii_table(
        ["application", "placement", "executed time", "speedup"],
        rows,
        title="Ablation: placement policies executed on the simulated runtime "
        "(Dunnington, 12 ranks)",
    )
    figure("Ablation placement policies", table)

    for app_name, times in wins.items():
        assert times["servet-optimized"] <= times["compact"] * 1.001, app_name
        assert times["servet-optimized"] < times["scatter"], app_name
    # The halo ring benefits measurably (it can ride the L2 pairs).
    assert wins["halo-ring"]["compact"] / wins["halo-ring"]["servet-optimized"] > 1.05
