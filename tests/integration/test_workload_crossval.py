"""Cross-validation: the contention model vs the explicit cache simulator.

The co-scheduling advisor predicts miss ratios from composed reuse-CDFs
without ever simulating an interleaved run.  Here the prediction is
checked against ground truth: the same access streams pushed through
:class:`repro.memsim.cache.SetAssociativeCache` under the same
round-robin interleaving the model assumes, on a seeded grid of
workload pairs and capacities.

The model is an approximation twice over (bucketed histograms, a
fully-associative capacity rule against a set-associative cache), so
agreement is within a declared tolerance, not exact — the tolerances
below are asserted, and tightening the model should tighten them.
"""

from __future__ import annotations

import itertools

import pytest

from repro.memsim.cache import SetAssociativeCache
from repro.workload import CachePressureModel, parse_workload, predict_corun
from repro.workload.generators import _PROFILE_CACHE, profile_workload

#: Max per-workload |predicted - simulated| co-run miss ratio.
MISS_TOLERANCE = 0.08
#: Max mean |predicted - simulated| over the whole grid.
MEAN_TOLERANCE = 0.03

#: Every spec streams exactly 3072 accesses, so round-robin
#: interleaving runs each workload exactly once (no replay skew).
SPECS = [
    "streaming:lines=768,rounds=4",
    "blocked:lines=768,block=128,repeats=4,rounds=1",
    "zipf:accesses=3072,lines=1024,s=1.2",
    "stencil:lines=512,halo=1,sweeps=2",
]

SEEDS = [0, 1, 2]
#: Capacities chosen off the knife edge: the step-function composition
#: is unreliable only when a combined working set lands within a few
#: percent of capacity (see test_knife_edge_is_the_known_weakness).
CAPACITIES = [256, 512, 2048]
WAYS = 8


def simulated_miss_ratios(streams: dict, capacity: int) -> dict:
    """Ground truth: round-robin interleave through one shared cache."""
    cache = SetAssociativeCache(num_sets=capacity // WAYS, ways=WAYS)
    arrays = list(streams.values())
    length = len(arrays[0])
    assert all(len(a) == length for a in arrays)
    hits = {name: 0 for name in streams}
    for i in range(length):
        for name, stream in streams.items():
            line = int(stream[i])
            if cache.access(line % cache.num_sets, (name, line)):
                hits[name] += 1
    return {name: 1.0 - hits[name] / length for name in streams}


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_solo_miss_ratio_matches_simulator(capacity):
    errors = []
    for spec in SPECS:
        for seed in SEEDS:
            workload = parse_workload(spec)
            profile = profile_workload(workload, seed=seed)
            sim = simulated_miss_ratios(
                {spec: workload.lines(seed)}, capacity
            )[spec]
            predicted = profile.miss_ratio(capacity)
            errors.append(abs(predicted - sim))
            assert abs(predicted - sim) <= MISS_TOLERANCE, (
                f"{spec} seed {seed} @ {capacity}: "
                f"predicted {predicted:.4f}, simulated {sim:.4f}"
            )
    assert sum(errors) / len(errors) <= MEAN_TOLERANCE


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_corun_miss_ratio_matches_simulator(capacity):
    model = CachePressureModel(capacity_lines=capacity)
    errors = []
    for left, right in itertools.combinations(SPECS, 2):
        for seed in SEEDS:
            workloads = {s: parse_workload(s) for s in (left, right)}
            profiles = [
                profile_workload(w, seed=seed) for w in workloads.values()
            ]
            prediction = {
                w.name: w for w in predict_corun(model, profiles).workloads
            }
            sim = simulated_miss_ratios(
                {s: w.lines(seed) for s, w in workloads.items()}, capacity
            )
            for spec, profile in zip(workloads, profiles):
                predicted = prediction[profile.name].corun_miss_ratio
                error = abs(predicted - sim[spec])
                errors.append(error)
                assert error <= MISS_TOLERANCE, (
                    f"{left}+{right} seed {seed} @ {capacity}: {spec} "
                    f"predicted {predicted:.4f}, simulated {sim[spec]:.4f}"
                )
    assert sum(errors) / len(errors) <= MEAN_TOLERANCE


def test_knife_edge_is_the_known_weakness():
    """Document the model's failure mode instead of hiding it.

    When the composed working set lands within a few percent of
    capacity the step-function rule predicts all-or-nothing while real
    LRU thrashes partially; the error is conservative (predicted miss
    ratio >= simulated) and bounded.  If this test starts failing
    because the error *shrank*, the model got better — move the
    capacity into CAPACITIES and tighten the tolerances.
    """
    capacity = 1024  # streaming(768) + blocked footprint ~= capacity
    model = CachePressureModel(capacity_lines=capacity)
    workloads = {s: parse_workload(s) for s in SPECS[:2]}
    profiles = [profile_workload(w, seed=0) for w in workloads.values()]
    prediction = {
        w.name: w for w in predict_corun(model, profiles).workloads
    }
    sim = simulated_miss_ratios(
        {s: w.lines(0) for s, w in workloads.items()}, capacity
    )
    for spec, profile in zip(workloads, profiles):
        predicted = prediction[profile.name].corun_miss_ratio
        assert predicted >= sim[spec] - MISS_TOLERANCE  # conservative
        assert abs(predicted - sim[spec]) <= 0.65  # coarse, but bounded


def test_profile_cache_serves_repeats():
    """The memo returns the identical object for a repeated profile."""
    _PROFILE_CACHE.clear()
    first = profile_workload("zipf:lines=256,accesses=1024", seed=7)
    again = profile_workload("zipf:accesses=1024,lines=256,s=1.2", seed=7)
    assert again is first  # canonical spec: same key either spelling
