"""Integration: the full suite reproduces the paper's Section IV results.

Uses the session-scoped reports from conftest (seed 42); the figures'
qualitative content is asserted exactly:

- Fig. 8a: Dunnington core 0 shares L2 with core 12, L3 with
  {1, 2, 12, 13, 14}; Fig. 8b: Finis Terrae all private.
- Fig. 9a: Dunnington uniform pair overhead; Finis Terrae bus < cell <
  reference with the right groups.
- Fig. 10a: Dunnington 3 layers; Finis Terrae intra ~2x faster than
  inter-node.
- Fig. 10b: ~7x slowdown for 32 concurrent InfiniBand messages.
- Table I: per-phase virtual execution times in the paper's regime.
"""

import pytest

from repro.core.report import ServetReport
from repro.units import KiB, MiB


class TestDunningtonReport:
    def test_cache_sizes(self, dunnington_report):
        assert dunnington_report.cache_sizes == [32 * KiB, 3 * MiB, 12 * MiB]

    def test_fig8a_l2_partner_is_core_12(self, dunnington_report):
        assert dunnington_report.cache_sharing_group(0, 2) == [0, 12]

    def test_fig8a_l3_group(self, dunnington_report):
        assert dunnington_report.cache_sharing_group(0, 3) == [0, 1, 2, 12, 13, 14]

    def test_fig9a_uniform_memory_overhead(self, dunnington_report):
        assert len(dunnington_report.memory_levels) == 1
        level = dunnington_report.memory_levels[0]
        assert level.groups == [list(range(24))]
        assert level.bandwidth < dunnington_report.memory_reference

    def test_fig10a_three_layers(self, dunnington_report):
        assert [len(l.pairs) for l in dunnington_report.comm_layers] == [
            12,
            48,
            216,
        ]

    def test_fig10c_bandwidth_orders_match_layer_speed(self, dunnington_report):
        # At a mid-size message the faster layer achieves more bandwidth.
        layers = dunnington_report.comm_layers
        bw = []
        for layer in layers:
            point = [b for s, _, b in layer.characterization if s == 64 * KiB]
            bw.append(point[0])
        assert bw[0] > bw[1] > bw[2]

    def test_table1_times_in_paper_regime(self, dunnington_report):
        minutes = {
            name: v / 60.0 for name, (v, _) in dunnington_report.timings.items()
        }
        # Paper Table I (Dunnington): 2' / 11' / 20' / 22'.
        assert 1 <= minutes["cache_size"] <= 6
        assert 5 <= minutes["shared_caches"] <= 20
        assert 10 <= minutes["memory_overhead"] <= 30
        assert 10 <= minutes["communication_costs"] <= 35

    def test_json_roundtrip_of_real_report(self, dunnington_report, tmp_path):
        path = tmp_path / "dn.json"
        dunnington_report.save(path)
        assert ServetReport.load(path) == dunnington_report


class TestFinisTerraeReport:
    def test_cache_sizes(self, ft_report):
        assert ft_report.cache_sizes == [16 * KiB, 256 * KiB, 9 * MiB]

    def test_fig8b_all_private(self, ft_report):
        assert all(c.private for c in ft_report.caches)

    def test_fig9a_bus_and_cell_levels(self, ft_report):
        assert len(ft_report.memory_levels) == 2
        bus, cell = ft_report.memory_levels
        assert bus.bandwidth < cell.bandwidth < ft_report.memory_reference
        assert bus.groups[0] == [0, 1, 2, 3]
        assert cell.groups == [list(range(8)), list(range(8, 16))]

    def test_fig9a_cell_is_about_25pct_below_ref(self, ft_report):
        cell = ft_report.memory_levels[1]
        loss = 1 - cell.bandwidth / ft_report.memory_reference
        assert loss == pytest.approx(0.25, abs=0.06)

    def test_fig9b_scalability_curves_decrease(self, ft_report):
        for level in ft_report.memory_levels:
            curve = level.scalability
            assert curve[0] > curve[-1]

    def test_fig10a_two_layers_intra_2x_faster(self, ft_report):
        assert len(ft_report.comm_layers) == 2
        intra, inter = ft_report.comm_layers
        assert len(intra.pairs) == 240 and len(inter.pairs) == 256
        ratio = inter.latency / intra.latency
        assert 1.6 < ratio < 2.4

    def test_fig10b_infiniband_7x_at_32_messages(self, ft_report):
        inter = ft_report.comm_layers[1]
        n, _, factor = inter.scalability[-1]
        assert n == 32
        assert 5.5 < factor < 8.5

    def test_table1_times_in_paper_regime(self, ft_report):
        minutes = {name: v / 60.0 for name, (v, _) in ft_report.timings.items()}
        # Paper Table I (Finis Terrae): 2' / 3' / 5' / 33'.
        assert 1 <= minutes["cache_size"] <= 6
        assert 2 <= minutes["shared_caches"] <= 10
        assert 3 <= minutes["memory_overhead"] <= 15
        assert 20 <= minutes["communication_costs"] <= 45

    def test_probe_size_is_detected_l1(self, ft_report):
        assert ft_report.comm_probe_size == 16 * KiB


class TestReportConsistency:
    def test_every_comm_pair_appears_once(self, ft_report):
        seen = [p for layer in ft_report.comm_layers for p in layer.pairs]
        assert len(seen) == len(set(seen)) == 32 * 31 // 2

    def test_memory_pairs_do_not_overlap(self, ft_report):
        seen = [p for level in ft_report.memory_levels for p in level.pairs]
        assert len(seen) == len(set(seen))

    def test_summary_renders(self, dunnington_report, ft_report):
        assert "dunnington" in dunnington_report.summary()
        assert "finis_terrae" in ft_report.summary()
