"""Integration: reproducibility guarantees.

Every benchmark result in this repository is seed-deterministic: same
seed, same report — bit for bit through JSON.  This is what makes the
EXPERIMENTS.md numbers reproducible on any machine.
"""

import json

from repro import ServetSuite, SimulatedBackend, dempsey, finis_terrae_node


def run_report(build, seed):
    backend = SimulatedBackend(build(), seed=seed)
    report = ServetSuite(backend).run()
    data = report.to_dict()
    # Wall-clock timings legitimately differ between runs.
    data["timings"] = {k: [v[0]] for k, v in data["timings"].items()}
    return data


def test_same_seed_same_report():
    a = run_report(dempsey, seed=7)
    b = run_report(dempsey, seed=7)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_different_seeds_differ_in_measurements_not_structure():
    a = run_report(finis_terrae_node, seed=1)
    b = run_report(finis_terrae_node, seed=2)
    # Structure identical...
    assert [c["size"] for c in a["caches"]] == [c["size"] for c in b["caches"]]
    assert len(a["memory_levels"]) == len(b["memory_levels"])
    assert len(a["comm_layers"]) == len(b["comm_layers"])
    # ...raw measurements not (noise and placements differ).
    assert a["memory_reference"] != b["memory_reference"]


def test_report_json_stable_through_load_save(tmp_path):
    from repro.core.report import ServetReport

    backend = SimulatedBackend(dempsey(), seed=3)
    report = ServetSuite(backend).run()
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    report.save(p1)
    ServetReport.load(p1).save(p2)
    assert p1.read_text() == p2.read_text()
