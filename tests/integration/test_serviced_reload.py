"""Integration: daemon hot-reload correctness and the CLI lifecycle.

The hot-reload drill is the snapshot-swap model's acceptance test: N
client threads hammer a registry-backed daemon while a publisher
concurrently stores K new report versions whose communication answers
*differ* per version.  Every response carries the version that produced
it, so the drill can assert the strong invariant — each answer matches
the published report of exactly the version it claims, never a blend of
two (a torn snapshot) — across many seeds' worth of interleavings, and
that the daemon ends up serving the newest version.

The subprocess test is the deployment smoke: ``servet serve --listen``
comes up, prints its bound port, answers ``servet query --remote``, and
drains to a clean exit 0 on the drain control request.
"""

import copy
import json
import os
import random
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import ServetSuite, SimulatedBackend, dempsey
from repro.autotune import Advisor
from repro.core.report import ServetReport
from repro.ioutils import canonical_json
from repro.service import ReportRegistry, fingerprint_of
from repro.service.server import answer, default_query_pool
from repro.serviced import ServicedClient, TuningDaemon
from repro.serviced.protocol import encode_query

SRC = Path(__file__).resolve().parents[2] / "src"

#: Latency scale factor per published version (v1 is the measured base).
VERSION_FACTORS = (1.0, 1.25, 1.5, 2.0)

SEEDS = range(24)


def scaled_report(base: ServetReport, factor: float) -> ServetReport:
    """The base report with every communication latency scaled.

    Scaling the characterization tables moves the CommLatencyQuery and
    AggregationQuery answers, which is exactly what the drill needs:
    distinguishable versions, so a torn answer cannot masquerade as a
    valid one.
    """
    d = copy.deepcopy(base.to_dict())
    for layer in d["comm_layers"]:
        layer["latency"] *= factor
        layer["characterization"] = [
            [size, lat * factor, bw / factor]
            for size, lat, bw in layer["characterization"]
        ]
        layer["scalability"] = [
            [n, lat * factor, ratio] for n, lat, ratio in layer["scalability"]
        ]
    return ServetReport.from_dict(d)


@pytest.fixture(scope="module")
def versions():
    """Base report, its fingerprint, the K variants, and per-version
    reference answers keyed by canonical query encoding."""
    backend = SimulatedBackend(dempsey(), seed=7, noise=0.0)
    base = ServetSuite(backend).run()
    fingerprint = fingerprint_of(backend)
    reports = [scaled_report(base, f) for f in VERSION_FACTORS]
    pool = default_query_pool(base)
    refs = {}
    for index, report in enumerate(reports, start=1):
        advisor = Advisor(report)
        refs[index] = {
            canonical_json(encode_query(q)): answer(advisor, q) for q in pool
        }
    # The drill only detects torn snapshots if versions disagree.
    assert refs[1] != refs[len(reports)]
    return fingerprint, reports, pool, refs


@pytest.mark.parametrize("seed", SEEDS)
def test_hot_reload_never_tears_answers(versions, tmp_path, seed):
    fingerprint, reports, pool, refs = versions
    registry = ReportRegistry(tmp_path / "registry")
    registry.put(fingerprint, reports[0])

    rng = random.Random(seed)
    records = []
    record_lock = threading.Lock()
    publishing = threading.Event()
    mistakes = []

    with TuningDaemon(
        registry=registry,
        workers=1 + seed % 3,
        batch_max=4 + seed % 13,
        poll_interval=0.005,
    ) as daemon:

        def publisher():
            for report in reports[1:]:
                # Seed-derived jitter shifts where each swap lands
                # relative to the clients' windows.
                threading.Event().wait(rng.uniform(0.002, 0.02))
                registry.put(fingerprint, report)
            publishing.set()

        def client(client_seed):
            crng = random.Random(client_seed)
            with ServicedClient(daemon.host, daemon.port) as c:
                while True:
                    finish = publishing.is_set()
                    picks = [crng.choice(pool) for _ in range(12)]
                    try:
                        results = c.query_many(picks)
                    except Exception as exc:  # noqa: BLE001
                        mistakes.append(f"client error: {exc}")
                        return
                    with record_lock:
                        records.extend(zip(picks, results))
                    if finish:
                        return

        pub = threading.Thread(target=publisher)
        clients = [
            threading.Thread(target=client, args=(1000 * seed + i,))
            for i in range(3)
        ]
        pub.start()
        for t in clients:
            t.start()
        pub.join()
        for t in clients:
            t.join()

        assert not mistakes, mistakes[:3]

        # After the dust settles the daemon must serve the newest
        # published version (a forced check is deterministic, unlike
        # waiting out the poll interval).
        with ServicedClient(daemon.host, daemon.port) as c:
            c.reload()
            _, final_version = c.query_versioned(pool[0])
        assert final_version == len(reports)

    # The strong invariant: every answer is exactly the published
    # answer of the version it claims — no response ever mixes two
    # snapshots, no version outside the published set ever appears.
    assert records
    seen_versions = set()
    for query, (got, version) in records:
        assert version in refs, f"unpublished version {version}"
        expected = refs[version][canonical_json(encode_query(query))]
        assert got == expected, (
            f"seed {seed}: torn answer at v{version} for {query}: "
            f"{got} != {expected}"
        )
        seen_versions.add(version)
    # The drill must actually have crossed a swap: clients keep
    # querying until after the last publish, so at least the first and
    # last versions show up.
    assert len(seen_versions) >= 2, f"only saw versions {seen_versions}"


def test_cli_daemon_smoke_serve_query_drain(tmp_path):
    """Start ``servet serve --listen``, query it remotely, drain, exit 0."""
    backend = SimulatedBackend(dempsey(), seed=7, noise=0.0)
    report_path = tmp_path / "report.json"
    ServetSuite(backend).run().save(report_path)

    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC) if not existing else str(SRC) + os.pathsep + existing
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--report",
            str(report_path),
            "--workers",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        # The parseable contract: second line names the bound address.
        banner = proc.stdout.readline()
        assert "tuning daemon for dempsey" in banner
        listening = proc.stdout.readline()
        assert listening.startswith("listening on ")
        host, _, port = listening.split()[-1].rpartition(":")

        query = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "query",
                "-",
                "matmul-tile",
                "--level",
                "1",
                "--remote",
                f"{host}:{port}",
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert query.returncode == 0, query.stderr
        assert json.loads(query.stdout)["side"] > 0

        with ServicedClient(host, int(port)) as client:
            client.drain()
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "drained: served" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
