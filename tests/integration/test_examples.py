"""Integration: every shipped example must run to completion."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
SRC = Path(__file__).resolve().parents[2] / "src"


def run_example(name: str) -> str:
    # The examples import repro from a source checkout: prepend src/ to
    # whatever PYTHONPATH the child would otherwise inherit.
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC) if not existing else str(SRC) + os.pathsep + existing
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=EXAMPLES,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Cache hierarchy" in out
    assert "cores sharing L2 with core 0: [0, 12]" in out


def test_autotune_tiling():
    out = run_example("autotune_tiling.py")
    assert "traffic reduction" in out
    assert "dempsey" in out and "athlon_3200" in out


def test_cluster_survey():
    out = run_example("cluster_survey.py")
    for name in ("athlon_3200", "dempsey", "dunnington", "finis_terrae"):
        assert name in out
    assert "OK" in out


def test_process_placement():
    out = run_example("process_placement.py")
    assert "servet-optimized" in out
    assert "halo exchange" in out


def test_collective_tuning():
    out = run_example("collective_tuning.py")
    assert "autotuner chose" in out
    assert "hierarchical" in out


def test_custom_machine():
    out = run_example("custom_machine.py")
    assert "MATCH the description" in out
    assert "TLB entries detected: 256" in out


def test_tuning_service():
    out = run_example("tuning_service.py")
    assert "registered as" in out
    assert "0 mismatches" in out
    assert "stale phases: ['memory_overhead']" in out
    assert "refresh mode: incremental" in out
    assert "cache hierarchy reused from the stored report" in out


@pytest.mark.slow
def test_native_probe_smoke():
    # Real timings on the host: only assert it completes and prints a
    # curve; the calibration note says accuracy is not expected.
    out = run_example("native_probe.py")
    assert "native mcalibrator curve" in out
