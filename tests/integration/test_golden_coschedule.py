"""Golden regression for the co-scheduling advisor.

At ``noise=0`` the detected dunnington topology is byte-stable (see
``test_golden_reports``) and workload profiles are pure functions of
``(spec, seed)``, so the full ``co_schedule`` answer — ranking, per-
workload predictions, provenance — can be pinned byte-for-byte.  The
golden lives in ``tests/golden/dunnington_coschedule.json`` and is
regenerated with::

    pytest tests/integration/test_golden_coschedule.py --update-golden

The fixed mix is chosen so the three pairings onto two L2 instances
get strictly distinct scores, and the predicted ordering agrees with
the explicit interleaved simulation (asserted in the co-schedule
bench, not here).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import ServetSuite, SimulatedBackend, dunnington
from repro.autotune import Advisor
from repro.service.server import CoScheduleQuery, TuningService

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "dunnington_coschedule.json"

#: Four archetypes with equal stream lengths (163840 accesses each):
#: a hog bigger than L2, a tiny cache-friendly kernel, and two
#: mid-size victims — pairings differ strictly in predicted contention.
WORKLOAD_MIX = (
    "streaming:lines=81920,rounds=2",
    "blocked:lines=2048,block=256,repeats=16,rounds=5",
    "zipf:accesses=163840,lines=32768,s=1.1",
    "stencil:lines=16384,halo=2,sweeps=2",
)


@pytest.fixture(scope="module")
def noiseless_report():
    backend = SimulatedBackend(dunnington(), seed=42, noise=0.0)
    return ServetSuite(backend).run()


def advice_bytes(report) -> bytes:
    advice = Advisor(report).co_schedule(
        WORKLOAD_MIX, seed=0, level=2, instances=2, top=3
    )
    return (
        json.dumps(advice.to_dict(), sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")


def test_golden_coschedule(noiseless_report, update_golden):
    got = advice_bytes(noiseless_report)
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_bytes(got)
        return
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden fixture {GOLDEN_PATH}; generate it with "
            "`pytest tests/integration/test_golden_coschedule.py "
            "--update-golden`"
        )
    want = GOLDEN_PATH.read_bytes()
    if got != want:
        got_d, want_d = json.loads(got), json.loads(want)
        changed = sorted(
            k
            for k in set(got_d) | set(want_d)
            if got_d.get(k) != want_d.get(k)
        )
        pytest.fail(
            "co-schedule advice diverged from the golden in section(s) "
            f"{changed}; if intended, regenerate with --update-golden "
            "and review the diff"
        )


def test_golden_ranking_shape(noiseless_report):
    """Sanity independent of exact bytes: structure and ordering laws."""
    advice = Advisor(noiseless_report).co_schedule(
        WORKLOAD_MIX, seed=0, level=2, instances=2, top=3
    )
    assert advice.system == "dunnington"
    assert advice.level == 2
    assert len(advice.options) == 3  # three pairings of 4 onto 2x2
    scores = [
        (o.worst_slowdown, o.mean_slowdown) for o in advice.options
    ]
    assert scores == sorted(scores)
    assert len(set(scores)) == len(scores), "pairings must rank strictly"
    assert advice.best.worst_slowdown >= 1.0


def test_service_answer_matches_advisor(noiseless_report):
    """The typed service query returns exactly the advisor's dict."""
    service = TuningService(noiseless_report)
    query = CoScheduleQuery(
        workloads=WORKLOAD_MIX, seed=0, level=2, instances=2, top=3
    )
    first = service.query(query)
    assert first == json.loads(advice_bytes(noiseless_report))
    assert service.query(query) == first  # cached answer identical
