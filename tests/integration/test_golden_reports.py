"""Golden-report regression tests.

At ``noise=0`` with a fixed seed the whole pipeline is deterministic,
so the measurement payload of a suite run can be pinned byte-for-byte.
Any change to detection logic, the simulator, or serialization that
moves a number shows up here as a readable JSON diff — silently
shifting a detected cache size can no longer slip through.

Only ``measurement_dict()`` is pinned (timings, planner accounting and
provenance vary legitimately with scheduling and internals); the
goldens live in ``tests/golden/`` and are regenerated with::

    pytest tests/integration/test_golden_reports.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import ServetSuite, SimulatedBackend, dunnington, finis_terrae

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

PRESETS = {
    "dunnington": dunnington,
    "finis_terrae_2node": lambda: finis_terrae(2),
}


def canonical_bytes(report) -> bytes:
    return (
        json.dumps(report.measurement_dict(), sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_golden_report(preset, update_golden):
    backend = SimulatedBackend(PRESETS[preset](), seed=42, noise=0.0)
    report = ServetSuite(backend).run()
    got = canonical_bytes(report)

    path = GOLDEN_DIR / f"{preset}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_bytes(got)
        return
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; generate it with "
            "`pytest tests/integration/test_golden_reports.py --update-golden`"
        )
    want = path.read_bytes()
    if got != want:
        got_d = json.loads(got)
        want_d = json.loads(want)
        changed = sorted(
            k
            for k in set(got_d) | set(want_d)
            if got_d.get(k) != want_d.get(k)
        )
        pytest.fail(
            f"{preset}: measurement payload diverged from {path} in "
            f"top-level section(s) {changed}; if the change is intended, "
            "regenerate with --update-golden and review the diff"
        )
