"""Checkpoint/resume: recover a long run without re-measuring phases.

The key guarantee: a run that is interrupted mid-suite and resumed
from its checkpoint produces a **byte-identical** final report to an
uninterrupted run (same seed, deterministic wall clock), because the
checkpoint restores the backend's RNG state exactly.
"""

import json

import pytest

import repro.core.suite as suite_mod
from repro import ServetSuite, SimulatedBackend, SuiteCheckpoint, dempsey
from repro.errors import CheckpointError, MeasurementError


def zero_clock() -> float:
    """Deterministic wall clock (wall timings become 0.0)."""
    return 0.0


def make_suite(**kwargs) -> ServetSuite:
    return ServetSuite(SimulatedBackend(dempsey(), seed=5), clock=zero_clock, **kwargs)


class TestCheckpointWriting:
    def test_checkpoint_written_after_each_phase(self, tmp_path):
        path = tmp_path / "ckpt.json"
        report = make_suite().run(checkpoint=path)
        state = SuiteCheckpoint.load(path)
        assert state.completed == list(report.phase_status)
        assert state.status == report.phase_status
        assert state.rng_state is not None
        # The stored report round-trips to the returned one.
        from repro import ServetReport

        assert ServetReport.from_dict(state.report) == report

    def test_mismatched_fingerprint_refused(self, tmp_path):
        path = tmp_path / "ckpt.json"
        make_suite().run(checkpoint=path)
        other = ServetSuite(
            SimulatedBackend(dempsey(), seed=5),
            node_cores=[0],
            comm_cores=[0, 1],
            clock=zero_clock,
        )
        with pytest.raises(CheckpointError, match="different machine"):
            other.run(checkpoint=path, resume=True)

    def test_resume_without_file_runs_fresh(self, tmp_path):
        path = tmp_path / "missing.json"
        report = make_suite().run(checkpoint=path, resume=True)
        assert report.cache_sizes
        assert path.exists()


class TestByteIdenticalResume:
    def test_interrupted_then_resumed_matches_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        reference = make_suite().run()
        ref_bytes = json.dumps(reference.to_dict(), sort_keys=True)

        # Interrupt the run: the memory phase crashes on first entry.
        orig = suite_mod.characterize_memory_overhead
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            if calls["n"] == 0:
                calls["n"] += 1
                raise MeasurementError("simulated mid-run crash")
            return orig(*args, **kwargs)

        monkeypatch.setattr(suite_mod, "characterize_memory_overhead", flaky)
        path = tmp_path / "ckpt.json"
        with pytest.raises(MeasurementError, match="simulated mid-run crash"):
            make_suite().run(checkpoint=path)  # strict: raises, state saved

        state = SuiteCheckpoint.load(path)
        assert "memory_overhead" not in state.completed
        assert "cache_size" in state.completed

        # Resume with a *fresh* backend: the checkpoint restores the RNG.
        resumed = make_suite().run(checkpoint=path, resume=True)
        assert json.dumps(resumed.to_dict(), sort_keys=True) == ref_bytes

    def test_saved_report_files_are_byte_identical(self, tmp_path, monkeypatch):
        ref_path = tmp_path / "ref.json"
        make_suite().run().save(ref_path)

        orig = suite_mod.run_comm_costs
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            if calls["n"] == 0:
                calls["n"] += 1
                raise MeasurementError("crash in comm phase")
            return orig(*args, **kwargs)

        monkeypatch.setattr(suite_mod, "run_comm_costs", flaky)
        ckpt = tmp_path / "ckpt.json"
        with pytest.raises(MeasurementError):
            make_suite().run(checkpoint=ckpt)
        resumed_path = tmp_path / "resumed.json"
        make_suite().run(checkpoint=ckpt, resume=True).save(resumed_path)
        assert resumed_path.read_bytes() == ref_path.read_bytes()

    def test_fully_completed_checkpoint_resumes_to_same_report(self, tmp_path):
        path = tmp_path / "ckpt.json"
        first = make_suite().run(checkpoint=path)
        # Resume re-measures nothing: every phase is already terminal.
        resumed = make_suite().run(checkpoint=path, resume=True)
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            first.to_dict(), sort_keys=True
        )
