"""Integration: the tuning service acceptance criteria.

Two pinned guarantees from the issue:

1. With ``noise=0``, an incremental refresh after a single-parameter
   topology change produces a report whose ``measurement_dict()`` is
   byte-identical to a from-scratch run on the changed machine — while
   issuing strictly fewer probes (planner accounting).
2. The concurrent-client harness sustains a warm cache hit rate >= 90%
   with zero wrong answers versus uncached queries.
"""

import dataclasses
import json

import pytest

from repro import ServetSuite, SimulatedBackend, dunnington
from repro.service import (
    ReportRegistry,
    TuningService,
    fingerprint_of,
    incremental_refresh,
    run_harness,
)


def degraded_dunnington():
    machine = dunnington()
    root = machine.bandwidth_root
    return dataclasses.replace(
        machine, bandwidth_root=dataclasses.replace(root, capacity=root.capacity / 2)
    )


@pytest.fixture(scope="module")
def refresh_setup(tmp_path_factory):
    registry = ReportRegistry(tmp_path_factory.mktemp("svc") / "registry")
    backend = SimulatedBackend(dunnington(), seed=42, noise=0.0)
    baseline = ServetSuite(backend).run()
    registry.put(fingerprint_of(backend), baseline)

    changed_backend = SimulatedBackend(degraded_dunnington(), seed=42, noise=0.0)
    result = incremental_refresh(registry, changed_backend)

    scratch_backend = SimulatedBackend(degraded_dunnington(), seed=42, noise=0.0)
    scratch = ServetSuite(scratch_backend).run()
    return baseline, result, scratch


def test_single_parameter_change_refreshes_incrementally(refresh_setup):
    _, result, _ = refresh_setup
    assert result.staleness.changed == ("topology.node.bandwidth.capacity",)
    assert result.staleness.affected == ("memory_overhead",)
    assert result.mode == "incremental"
    assert result.entry is not None and result.entry.version == 1


def test_refresh_is_byte_identical_to_scratch_run(refresh_setup):
    _, result, scratch = refresh_setup
    refreshed = json.dumps(result.report.measurement_dict(), sort_keys=True)
    rerun = json.dumps(scratch.measurement_dict(), sort_keys=True)
    assert refreshed == rerun


def test_refresh_issues_strictly_fewer_probes(refresh_setup):
    _, result, scratch = refresh_setup
    issued_refresh = result.report.to_dict()["planner"]["issued"]
    issued_scratch = scratch.to_dict()["planner"]["issued"]
    assert 0 < issued_refresh < issued_scratch


def test_unaffected_sections_are_reused_not_remeasured(refresh_setup):
    baseline, result, _ = refresh_setup
    base, merged = baseline.to_dict(), result.report.to_dict()
    assert merged["caches"] == base["caches"]
    assert merged["tlb_entries"] == base["tlb_entries"]
    assert merged["comm_layers"] == base["comm_layers"]
    # ... while the stale section really did change.
    assert merged["memory_levels"] != base["memory_levels"]


def test_registry_serves_the_refreshed_report(refresh_setup):
    _, result, scratch = refresh_setup
    # The refresh stored its merged report under the live fingerprint;
    # a service built from the entry answers from the updated machine.
    assert result.fingerprint.digest == result.entry.digest
    assert result.report.measurement_dict() == scratch.measurement_dict()


def test_concurrent_harness_hit_rate_and_correctness(refresh_setup):
    baseline, _, _ = refresh_setup
    service = TuningService(baseline)
    result = run_harness(service, clients=8, queries_per_client=250, seed=1234)
    assert result.queries == 2000
    assert result.mismatches == 0
    assert result.hit_rate >= 0.90
    assert result.metrics["evictions"] == 0
